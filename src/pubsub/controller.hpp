// The Camus controller (paper Figure 6): collects subscription filters,
// runs the two-step compiler, and programs the switch. This is the
// top-level API an application deploying in-network pub/sub uses:
//
//   pubsub::Controller ctl(spec::make_itch_schema());
//   ctl.subscribe(1, "stock == GOOGL : fwd(1)");
//   ctl.subscribe(2, "stock == MSFT and price > 500000 : fwd(2)");
//   auto sw = ctl.build_switch();          // compiled + programmed switch
//   auto p4 = ctl.p4_program();            // static step output
//   auto rules = ctl.control_plane_rules();// dynamic step output
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "compiler/p4gen.hpp"
#include "lang/dnf.hpp"
#include "spec/schema.hpp"
#include "switchsim/switch.hpp"
#include "util/result.hpp"
#include "verify/verify.hpp"

namespace camus::pubsub {

// How much static verification compile() runs before accepting a new
// pipeline (paper Figure 6: the controller gates what reaches the switch).
enum class LintPolicy : std::uint8_t {
  kOff,     // no verification (default; matches previous behaviour)
  kWarn,    // verify, keep diagnostics in last_lint(), never reject
  kReject,  // verify; error-severity findings fail compile() and the
            // previous compiled pipeline stays installed
};

// A hardware/software split of the subscription set (graceful
// degradation): the highest-priority rules that fit the switch's resource
// budget are compiled into the hardware pipeline; the remainder spill to
// end-host software filtering (baseline::NaiveMatcher over spilled_flat).
// The two halves partition the rule set, and ActionSets merge by union,
// so switch-delivered ∪ host-filtered equals the unsplit semantics —
// differential-tested against the full BDD in tests/test_spill.cpp.
struct Split {
  compiler::Compiled hardware;            // compiled top-priority prefix
  std::vector<lang::BoundRule> hw_rules;  // rules in the hardware pipeline
  std::vector<lang::BoundRule> spilled;   // rules left to the host
  std::vector<lang::FlatRule> spilled_flat;  // DNF of spilled (host matcher)
  table::ResourceUsage usage;             // of the hardware pipeline
  std::size_t compile_probes = 0;         // binary-search compilations

  bool degraded() const noexcept { return !spilled.empty(); }
};

class Controller {
 public:
  // The per-commit delta the incremental path hands to the installer.
  using Delta = compiler::IncrementalCompiler::Delta;

  explicit Controller(spec::Schema schema,
                      compiler::CompileOptions opts = {});

  const spec::Schema& schema() const noexcept { return schema_; }

  // Registers a subscription. The rule text may omit the forwarding
  // action, in which case "fwd(port)" is appended — subscribers typically
  // express interest ("stock == GOOGL") and the controller knows their
  // port. Higher priority = more important = last to spill under resource
  // pressure. Returns an error for unparsable/unbindable rules.
  util::Result<bool> subscribe(std::uint16_t port, std::string_view rule_text,
                               int priority = 0);

  // Registers an already-bound rule.
  void subscribe(lang::BoundRule rule, int priority = 0);

  // Removes every subscription whose actions forward (only) to this port —
  // the subscriber disconnected. Rules that also forward elsewhere (shared
  // multicast subscriptions registered as one rule) are kept. Returns the
  // number of rules removed.
  std::size_t unsubscribe(std::uint16_t port);

  std::size_t subscription_count() const noexcept { return rules_.size(); }
  void clear();

  // Static-verification gate for compile(). With kReject, a compilation
  // whose verifier report contains error-severity diagnostics (shadowed
  // entries, budget violations, non-equivalence, ...) is rejected: the
  // error lists the findings and compiled() keeps serving the previous
  // good pipeline.
  void set_lint_policy(LintPolicy policy,
                       verify::VerifyOptions opts = {}) {
    lint_policy_ = policy;
    lint_opts_ = std::move(opts);
  }
  LintPolicy lint_policy() const noexcept { return lint_policy_; }

  // Diagnostics from the most recent verified compile() (empty when the
  // policy is kOff or nothing was compiled since it was set).
  const verify::Report& last_lint() const noexcept { return lint_report_; }

  // Dynamic compilation step, incremental form (the primary path for live
  // churn): recompiles on the persistent IncrementalCompiler and returns
  // the exact entry delta against the previously committed pipeline —
  // what the installer ships via TwoPhaseInstaller::apply_delta. The
  // first commit reports every entry as an add (cold start). Under
  // LintPolicy::kReject a rejected artifact leaves the previous pipeline
  // as both the served artifact and the diff base, so the next successful
  // commit's delta still lands on what the switch actually runs.
  util::Result<Delta> commit();

  // Dynamic compilation step, batch form: full from-scratch compile_rules.
  // Kept for cold starts, compile_with_budget probes, and as the oracle in
  // differential churn tests. Re-seeds the incremental diff base, so a
  // commit() after a batch compile() applies cleanly but reuses little
  // (batch state numbering differs from the persistent allocator's).
  util::Result<bool> compile();

  // Graceful degradation: compiles the largest highest-priority subset of
  // the subscriptions whose pipeline fits `budget`, spilling the rest to
  // software. Rules are ranked by (priority desc, insertion order asc) and
  // the cut is found by binary search over prefix compilations, so an
  // over-budget set costs O(log n) compiles. When everything fits the
  // Split has no spilled rules. Fails only when even the empty prefix
  // cannot be compiled or a spilled rule fails DNF flattening. Does not
  // disturb the compile()/compiled() state.
  util::Result<Split> compile_with_budget(
      const table::ResourceBudget& budget) const;

  // Access to the compiled artifacts. E120 before a successful
  // compile()/commit() — an expected caller-ordering error, reported as a
  // diagnostic rather than a throw (E1xx convention). The pointer is
  // never null on the ok() path and stays valid until the next
  // compile()/commit()/clear().
  util::Result<const compiler::Compiled*> compiled() const;
  bool has_compiled() const noexcept { return compiled_.has_value(); }

  // Builds a switch simulator programmed with the compiled pipeline.
  util::Result<switchsim::Switch> build_switch();

  // Static step: the P4 program for this application.
  std::string p4_program(const compiler::P4Options& opts = {}) const;
  // Dynamic step: the control-plane entry dump. E121 before a successful
  // compile()/commit().
  util::Result<std::string> control_plane_rules() const;

 private:
  util::Result<bool> lint_gate(const compiler::Compiled& candidate);

  spec::Schema schema_;
  compiler::CompileOptions opts_;
  std::vector<lang::BoundRule> rules_;
  std::vector<int> priorities_;  // parallel to rules_
  // Parallel to rules_: ids inside the persistent incremental compiler.
  std::vector<compiler::IncrementalCompiler::SubscriptionId> sub_ids_;
  // Persistent across commits: hash-consed BDD memo + stable state ids
  // are what make per-commit deltas small (see incremental.hpp).
  compiler::IncrementalCompiler inc_;
  std::optional<compiler::Compiled> compiled_;
  bool dirty_ = false;

  LintPolicy lint_policy_ = LintPolicy::kOff;
  verify::VerifyOptions lint_opts_;
  verify::Report lint_report_;
};

}  // namespace camus::pubsub
