#include "pubsub/install.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

namespace camus::pubsub {

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

}  // namespace

TwoPhaseInstaller::TwoPhaseInstaller(switchsim::Switch& sw) : sw_(sw) {
  auto current = std::make_shared<table::Pipeline>(sw.pipeline());
  current->finalize();
  active_ = std::move(current);
}

void TwoPhaseInstaller::publish(
    std::shared_ptr<const table::Pipeline> next) {
  const std::lock_guard<std::mutex> lock(mu_);
  previous_ = std::move(active_);
  active_ = std::move(next);
  ++commits_;
}

std::shared_ptr<const table::Pipeline> TwoPhaseInstaller::active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

bool TwoPhaseInstaller::rollback() {
  std::shared_ptr<const table::Pipeline> prev;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!previous_) return false;
    prev = std::move(previous_);
  }
  sw_.reprogram(table::Pipeline(*prev));
  const std::lock_guard<std::mutex> lock(mu_);
  active_ = std::move(prev);
  return true;
}

bool TwoPhaseInstaller::stage_attempt(std::span<const std::uint8_t> bytes,
                                      std::size_t chunk_bytes,
                                      const fault::Plan* faults,
                                      int chunk_retries,
                                      std::uint64_t& send_index,
                                      InstallReport& report,
                                      std::vector<std::uint8_t>& staged) {
  staged.clear();
  staged.reserve(bytes.size());
  for (std::size_t c = 0; c < report.chunks; ++c) {
    const std::size_t off = c * chunk_bytes;
    const std::size_t len = std::min(chunk_bytes, bytes.size() - off);
    const auto chunk = bytes.subspan(off, len);
    const std::uint64_t chunk_digest = fnv1a(chunk);

    bool delivered = false;
    for (int t = 0; t <= chunk_retries; ++t) {
      ++report.chunk_sends;
      if (t > 0) ++report.chunk_retransmits;
      std::vector<std::uint8_t> wire(chunk.begin(), chunk.end());
      if (faults && faults->enabled()) {
        const fault::Decision d = faults->decision(send_index);
        if (d.corrupt_bits > 0) faults->corrupt(send_index, wire);
        ++send_index;
        if (d.drop) continue;  // lost on the wire
      } else {
        ++send_index;
      }
      if (fnv1a(wire) != chunk_digest) continue;  // corrupted: NAK
      staged.insert(staged.end(), wire.begin(), wire.end());
      delivered = true;
      break;
    }
    if (!delivered) return false;
  }
  return true;
}

InstallReport TwoPhaseInstaller::install(const table::Pipeline& pipeline,
                                         const fault::Plan* faults,
                                         std::size_t chunk_bytes,
                                         int max_attempts, int chunk_retries) {
  InstallReport report;
  const std::string image = table::serialize_pipeline(pipeline);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(image.data()), image.size());
  const std::uint64_t image_digest = fnv1a(bytes);

  chunk_bytes = std::max<std::size_t>(chunk_bytes, 1);
  report.chunks = (image.size() + chunk_bytes - 1) / chunk_bytes;

  // Every chunk send consumes one decision index from the fault plan, so
  // the whole install (retransmits included) replays from the seed.
  std::uint64_t send_index = 0;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++report.attempts;

    // --- Stage: ship digest-protected chunks; retry damaged ones.
    std::vector<std::uint8_t> staged;
    if (!stage_attempt(bytes, chunk_bytes, faults, chunk_retries, send_index,
                       report, staged)) {
      report.error = "staging failed: chunk retries exhausted";
      continue;  // next full attempt; switch untouched
    }

    // --- Verify: whole-image digest, then parse + structural validation.
    if (fnv1a(staged) != image_digest) {
      report.error = "staged image digest mismatch";
      continue;
    }
    auto parsed = table::deserialize_pipeline(
        std::string_view(reinterpret_cast<const char*>(staged.data()),
                         staged.size()));
    if (!parsed.ok()) {
      report.error = "staged image rejected: " + parsed.error().to_string();
      continue;
    }

    // --- Commit: one reprogram with the verified image, then swap the
    // reader-visible snapshot. deserialize_pipeline finalized the
    // pipeline, so readers of the new snapshot never race a lazy index
    // build.
    auto committed =
        std::make_shared<table::Pipeline>(std::move(parsed).take());
    sw_.reprogram(table::Pipeline(*committed));
    publish(std::move(committed));
    report.committed = true;
    report.error.clear();
    return report;
  }

  if (report.error.empty())
    report.error = "install attempts exhausted";
  return report;
}

InstallReport TwoPhaseInstaller::apply_delta(
    std::span<const table::EntryOp> ops, const fault::Plan* faults,
    std::size_t chunk_bytes, int max_attempts, int chunk_retries) {
  InstallReport report;
  report.ops = ops.size();
  if (ops.empty()) {
    // A no-op commit ships nothing and commits trivially: the active
    // pipeline already is the target.
    report.committed = true;
    return report;
  }

  const std::string image = table::serialize_ops(ops);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(image.data()), image.size());
  const std::uint64_t image_digest = fnv1a(bytes);

  chunk_bytes = std::max<std::size_t>(chunk_bytes, 1);
  report.chunks = (image.size() + chunk_bytes - 1) / chunk_bytes;
  std::uint64_t send_index = 0;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++report.attempts;

    // --- Stage: same channel model as install(), smaller image.
    std::vector<std::uint8_t> staged;
    if (!stage_attempt(bytes, chunk_bytes, faults, chunk_retries, send_index,
                       report, staged)) {
      report.error = "staging failed: chunk retries exhausted";
      continue;  // next full attempt; switch untouched
    }

    // --- Verify: digest, parse, then a dry-run application on a scratch
    // copy of the active pipeline. A delta that does not land exactly
    // (U0xx) means the controller and switch disagree about the installed
    // state — aborting here is what keeps them from silently diverging.
    if (fnv1a(staged) != image_digest) {
      report.error = "staged delta digest mismatch";
      continue;
    }
    auto parsed = table::deserialize_ops(
        std::string_view(reinterpret_cast<const char*>(staged.data()),
                         staged.size()));
    if (!parsed.ok()) {
      report.error = "staged delta rejected: " + parsed.error().to_string();
      continue;
    }
    auto scratch = std::make_shared<table::Pipeline>(*active());
    auto applied = table::apply_ops(*scratch, parsed.value());
    if (!applied.ok()) {
      // Deterministic failure — retrying the channel cannot fix a delta
      // that does not match the installed state.
      report.error = "delta does not apply: " + applied.error().to_string();
      return report;
    }

    // --- Commit: patch the running switch program in place (RCU swap
    // inside Switch::apply_delta), then advance the reader snapshot to
    // the scratch result (already finalized+validated by apply_ops).
    auto committed = sw_.apply_delta(parsed.value());
    if (!committed.ok()) {
      report.error =
          "switch rejected the delta: " + committed.error().to_string();
      return report;
    }
    publish(std::move(scratch));
    report.applied = committed.value();
    report.committed = true;
    report.error.clear();
    return report;
  }

  if (report.error.empty())
    report.error = "install attempts exhausted";
  return report;
}

}  // namespace camus::pubsub
