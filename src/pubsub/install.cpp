#include "pubsub/install.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace camus::pubsub {

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                    std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (const std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_chunk(const ChunkHeader& h,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kChunkHeaderBytes + payload.size());
  put_u16(wire, kChunkMagic);
  put_u64(wire, h.epoch);
  put_u64(wire, h.xfer_id);
  put_u32(wire, h.chunk_idx);
  put_u32(wire, h.total_chunks);
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  // CRC over everything framed so far plus the payload: a flipped bit in
  // header or body both fail the check.
  std::uint32_t crc = util::crc32(std::span<const std::uint8_t>(wire));
  crc = util::crc32(payload, crc);
  put_u32(wire, crc);
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

ChunkReceiver::ChunkReceiver(std::uint64_t epoch, std::uint64_t xfer_id,
                             std::uint32_t total_chunks,
                             std::size_t chunk_bytes, std::size_t image_bytes)
    : epoch_(epoch),
      xfer_id_(xfer_id),
      total_(total_chunks),
      chunk_bytes_(chunk_bytes),
      image_bytes_(image_bytes),
      slots_(total_chunks),
      have_(total_chunks, false) {}

util::Result<std::uint32_t> ChunkReceiver::receive(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < kChunkHeaderBytes)
    return util::Error{"chunk frame shorter than header", 0, 0, "C001"};
  const std::uint8_t* p = wire.data();
  if (get_u16(p) != kChunkMagic)
    return util::Error{"chunk frame has bad magic", 0, 0, "C001"};
  ChunkHeader h;
  h.epoch = get_u64(p + 2);
  h.xfer_id = get_u64(p + 10);
  h.chunk_idx = get_u32(p + 18);
  h.total_chunks = get_u32(p + 22);
  h.payload_len = get_u32(p + 26);
  const std::uint32_t crc = get_u32(p + 30);
  if (wire.size() != kChunkHeaderBytes + h.payload_len)
    return util::Error{"chunk frame length disagrees with header", 0, 0,
                       "C001"};
  // CRC covers the header (minus the CRC field itself) and the payload.
  std::uint32_t want = util::crc32(wire.subspan(0, kChunkHeaderBytes - 4));
  want = util::crc32(wire.subspan(kChunkHeaderBytes), want);
  if (crc != want)
    return util::Error{"chunk CRC mismatch", 0, 0, "C002"};
  if (h.epoch != epoch_ || h.xfer_id != xfer_id_)
    return util::Error{"chunk from another transfer (epoch " +
                           std::to_string(h.epoch) + ", xfer " +
                           std::to_string(h.xfer_id) + ")",
                       0, 0, "C003"};
  if (h.total_chunks != total_ || h.chunk_idx >= total_)
    return util::Error{"chunk index " + std::to_string(h.chunk_idx) +
                           " out of range of " + std::to_string(total_),
                       0, 0, "C005"};
  // Every chunk but the last must be exactly chunk_bytes_; the last holds
  // the remainder. A wrong-sized payload for its slot is malformed.
  const std::size_t want_len =
      h.chunk_idx + 1 == total_
          ? image_bytes_ - static_cast<std::size_t>(h.chunk_idx) * chunk_bytes_
          : chunk_bytes_;
  if (h.payload_len != want_len)
    return util::Error{"chunk payload length wrong for its slot", 0, 0,
                       "C001"};
  if (have_[h.chunk_idx])
    return util::Error{"duplicate of accepted chunk " +
                           std::to_string(h.chunk_idx),
                       0, 0, "C004"};
  const auto payload = wire.subspan(kChunkHeaderBytes);
  slots_[h.chunk_idx].assign(payload.begin(), payload.end());
  have_[h.chunk_idx] = true;
  ++filled_;
  return h.chunk_idx;
}

std::vector<std::uint8_t> ChunkReceiver::assemble() const {
  std::vector<std::uint8_t> out;
  out.reserve(image_bytes_);
  for (const auto& s : slots_) out.insert(out.end(), s.begin(), s.end());
  return out;
}

TwoPhaseInstaller::TwoPhaseInstaller(switchsim::Switch& sw) : sw_(sw) {
  auto current = std::make_shared<table::Pipeline>(sw.pipeline_snapshot());
  current->finalize();
  active_ = std::move(current);
}

void TwoPhaseInstaller::publish(
    std::shared_ptr<const table::Pipeline> next) {
  const std::lock_guard<std::mutex> lock(mu_);
  previous_ = std::move(active_);
  active_ = std::move(next);
  ++commits_;
}

std::shared_ptr<const table::Pipeline> TwoPhaseInstaller::active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

bool TwoPhaseInstaller::rollback() {
  std::shared_ptr<const table::Pipeline> prev;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!previous_) return false;
    prev = std::move(previous_);
  }
  if (epoch_ > 0) {
    if (!sw_.reprogram_fenced(epoch_, table::Pipeline(*prev)).ok())
      return false;  // fenced out by a newer controller
  } else {
    sw_.reprogram(table::Pipeline(*prev));
  }
  const std::lock_guard<std::mutex> lock(mu_);
  active_ = std::move(prev);
  return true;
}

void TwoPhaseInstaller::resync_from_switch() {
  auto current = std::make_shared<table::Pipeline>(sw_.pipeline_snapshot());
  current->finalize();
  const std::lock_guard<std::mutex> lock(mu_);
  active_ = std::move(current);
  previous_.reset();
}

bool TwoPhaseInstaller::stage_attempt(std::span<const std::uint8_t> bytes,
                                      std::size_t chunk_bytes,
                                      const fault::Plan* faults,
                                      int chunk_retries,
                                      std::uint64_t& send_index,
                                      InstallReport& report,
                                      std::vector<std::uint8_t>& staged) {
  staged.clear();
  ChunkReceiver rx(epoch_, next_xfer_id_,
                   static_cast<std::uint32_t>(report.chunks), chunk_bytes,
                   bytes.size());
  ++next_xfer_id_;

  // Frames the channel is holding back (reorder decisions): they arrive
  // after the sender's next transmission, exercising out-of-order and
  // late-duplicate handling at the receiver.
  std::vector<std::vector<std::uint8_t>> delayed;
  auto classify = [&](const util::Result<std::uint32_t>& r) {
    if (r.ok()) return;
    const std::string& code = r.error().code;
    if (code == "C001") ++report.chunk_malformed;
    else if (code == "C002") ++report.chunk_crc_rejects;
    else if (code == "C004") ++report.chunk_dup_rejects;
    else ++report.chunk_stray_rejects;  // C003/C005
  };
  auto flush_delayed = [&] {
    for (auto& w : delayed) {
      ++report.chunk_reordered;
      classify(rx.receive(w));
    }
    delayed.clear();
  };

  for (std::size_t c = 0; c < report.chunks; ++c) {
    const std::size_t off = c * chunk_bytes;
    const std::size_t len = std::min(chunk_bytes, bytes.size() - off);
    ChunkHeader h;
    h.epoch = epoch_;
    h.xfer_id = next_xfer_id_ - 1;
    h.chunk_idx = static_cast<std::uint32_t>(c);
    h.total_chunks = static_cast<std::uint32_t>(report.chunks);

    bool delivered = false;
    for (int t = 0; t <= chunk_retries; ++t) {
      // Held-back frames from earlier sends arrive now — after at least
      // one later transmission, i.e. reordered.
      flush_delayed();
      ++report.chunk_sends;
      if (t > 0) ++report.chunk_retransmits;
      std::vector<std::uint8_t> wire =
          encode_chunk(h, bytes.subspan(off, len));
      bool dropped = false, dup = false, held = false;
      if (faults && faults->enabled()) {
        const fault::Decision d = faults->decision(send_index);
        if (d.corrupt_bits > 0) faults->corrupt(send_index, wire);
        ++send_index;
        dropped = d.drop;
        dup = d.duplicate;
        held = d.delay_us > 0;
      } else {
        ++send_index;
      }
      if (dropped) continue;  // lost on the wire; no ACK, retransmit
      if (held) {
        // In flight but displaced: the sender times out (no ACK) and
        // retransmits; the frame still lands later.
        delayed.push_back(std::move(wire));
        continue;
      }
      auto r = rx.receive(wire);
      classify(r);
      if (dup) classify(rx.receive(wire));  // duplicated on the wire
      // A duplicate of an accepted chunk means this slot is already
      // staged (possibly by a late reordered frame) — that IS an ACK.
      if (r.ok() || r.error().code == "C004") {
        delivered = true;
        break;
      }
    }
    if (!delivered) {
      // One last chance: a held-back frame still in flight may fill the
      // slot on arrival.
      flush_delayed();
      if (!rx.has(static_cast<std::uint32_t>(c))) return false;
    }
  }
  flush_delayed();
  if (!rx.complete()) return false;
  staged = rx.assemble();
  return true;
}

StagedInstall TwoPhaseInstaller::stage(const table::Pipeline& pipeline,
                                       const fault::Plan* faults,
                                       std::size_t chunk_bytes,
                                       int max_attempts, int chunk_retries) {
  StagedInstall out;
  out.report.epoch = epoch_;
  const std::string image = table::serialize_pipeline(pipeline);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(image.data()), image.size());
  const std::uint64_t image_digest = fnv1a(bytes);

  chunk_bytes = std::max<std::size_t>(chunk_bytes, 1);
  out.report.chunks = (image.size() + chunk_bytes - 1) / chunk_bytes;

  // Every chunk send consumes one decision index from the fault plan, so
  // the whole install (retransmits included) replays from the seed.
  std::uint64_t send_index = 0;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++out.report.attempts;

    // --- Stage: ship framed, CRC-checked chunks; retry damaged ones.
    std::vector<std::uint8_t> staged;
    if (!stage_attempt(bytes, chunk_bytes, faults, chunk_retries, send_index,
                       out.report, staged)) {
      out.report.error = "staging failed: chunk retries exhausted";
      continue;  // next full attempt; switch untouched
    }

    // --- Verify: whole-image digest, then parse + structural validation.
    if (fnv1a(staged) != image_digest) {
      out.report.error = "staged image digest mismatch";
      continue;
    }
    auto parsed = table::deserialize_pipeline(
        std::string_view(reinterpret_cast<const char*>(staged.data()),
                         staged.size()));
    if (!parsed.ok()) {
      out.report.error =
          "staged image rejected: " + parsed.error().to_string();
      continue;
    }

    // deserialize_pipeline finalized the pipeline, so readers of a
    // snapshot published from this image never race a lazy index build.
    out.pipeline = std::make_shared<table::Pipeline>(std::move(parsed).take());
    out.staged = true;
    out.report.error.clear();
    return out;
  }

  if (out.report.error.empty())
    out.report.error = "install attempts exhausted";
  return out;
}

bool TwoPhaseInstaller::commit_staged(StagedInstall& s) {
  if (!s.staged || !s.pipeline) {
    if (s.report.error.empty())
      s.report.error = "commit of an image that was never staged";
    return false;
  }
  // --- Commit: one (epoch-fenced) reprogram with the verified image, then
  // swap the reader-visible snapshot.
  if (epoch_ > 0) {
    auto fenced = sw_.reprogram_fenced(epoch_, table::Pipeline(*s.pipeline));
    if (!fenced.ok()) {
      // A newer controller owns the switch; retrying cannot help.
      s.report.fenced_out = true;
      s.report.error =
          "switch fenced the install out: " + fenced.error().to_string();
      return false;
    }
  } else {
    sw_.reprogram(table::Pipeline(*s.pipeline));
  }
  publish(s.pipeline);
  s.report.committed = true;
  s.report.error.clear();
  return true;
}

InstallReport TwoPhaseInstaller::install(const table::Pipeline& pipeline,
                                         const fault::Plan* faults,
                                         std::size_t chunk_bytes,
                                         int max_attempts, int chunk_retries) {
  StagedInstall s = stage(pipeline, faults, chunk_bytes, max_attempts,
                          chunk_retries);
  if (s.staged) commit_staged(s);
  return s.report;
}

InstallReport TwoPhaseInstaller::apply_delta(
    std::span<const table::EntryOp> ops, const fault::Plan* faults,
    std::size_t chunk_bytes, int max_attempts, int chunk_retries) {
  InstallReport report;
  report.epoch = epoch_;
  report.ops = ops.size();
  if (ops.empty()) {
    // A no-op commit ships nothing and commits trivially: the active
    // pipeline already is the target.
    report.committed = true;
    return report;
  }

  const std::string image = table::serialize_ops(ops);
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(image.data()), image.size());
  const std::uint64_t image_digest = fnv1a(bytes);

  chunk_bytes = std::max<std::size_t>(chunk_bytes, 1);
  report.chunks = (image.size() + chunk_bytes - 1) / chunk_bytes;
  std::uint64_t send_index = 0;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++report.attempts;

    // --- Stage: same channel model as install(), smaller image.
    std::vector<std::uint8_t> staged;
    if (!stage_attempt(bytes, chunk_bytes, faults, chunk_retries, send_index,
                       report, staged)) {
      report.error = "staging failed: chunk retries exhausted";
      continue;  // next full attempt; switch untouched
    }

    // --- Verify: digest, parse, then a dry-run application on a scratch
    // copy of the active pipeline. A delta that does not land exactly
    // (U0xx) means the controller and switch disagree about the installed
    // state — aborting here is what keeps them from silently diverging.
    if (fnv1a(staged) != image_digest) {
      report.error = "staged delta digest mismatch";
      continue;
    }
    auto parsed = table::deserialize_ops(
        std::string_view(reinterpret_cast<const char*>(staged.data()),
                         staged.size()));
    if (!parsed.ok()) {
      report.error = "staged delta rejected: " + parsed.error().to_string();
      continue;
    }
    auto scratch = std::make_shared<table::Pipeline>(*active());
    auto applied = table::apply_ops(*scratch, parsed.value());
    if (!applied.ok()) {
      // Deterministic failure — retrying the channel cannot fix a delta
      // that does not match the installed state.
      report.error = "delta does not apply: " + applied.error().to_string();
      return report;
    }

    // --- Commit: patch the running switch program in place (RCU swap
    // inside Switch::apply_delta, epoch-fenced when an epoch is set),
    // then advance the reader snapshot to the scratch result (already
    // finalized+validated by apply_ops).
    auto committed = epoch_ > 0 ? sw_.apply_delta_fenced(epoch_, parsed.value())
                                : sw_.apply_delta(parsed.value());
    if (!committed.ok()) {
      report.fenced_out = committed.error().code == "E140";
      report.error =
          "switch rejected the delta: " + committed.error().to_string();
      return report;
    }
    publish(std::move(scratch));
    report.applied = committed.value();
    report.committed = true;
    report.error.clear();
    return report;
  }

  if (report.error.empty())
    report.error = "install attempts exhausted";
  return report;
}

}  // namespace camus::pubsub
