// Two-phase pipeline install with rollback: the controller -> switch
// programming path hardened against control-channel faults.
//
//   stage   — the serialized pipeline is shipped in digest-protected
//             chunks over a channel that may drop or corrupt (modelled by
//             a fault::Plan); damaged chunks are retransmitted.
//   verify  — the staged image must match the full-image digest, parse
//             (table::deserialize_pipeline validates structure), and
//             finalize before it can touch the switch.
//   commit  — one reprogram() with the verified pipeline, then an atomic
//             swap of the reader-visible snapshot.
//
// Any fault before commit leaves the switch and the snapshot on the
// last-good pipeline — a mid-update link failure degrades to "the update
// didn't happen", never to a half-programmed switch. Readers only ever
// observe complete pipelines through active() (exercised under TSAN in
// tests/test_concurrent_lookup.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "table/pipeline.hpp"
#include "table/serialize.hpp"

namespace camus::pubsub {

// Outcome of one install() or apply_delta() call.
struct InstallReport {
  bool committed = false;
  std::size_t attempts = 0;       // full staging attempts
  std::size_t chunks = 0;         // chunks in the image
  std::size_t chunk_sends = 0;    // including retransmits
  std::size_t chunk_retransmits = 0;
  std::string error;              // empty when committed
  // apply_delta() only: ops shipped and their kind breakdown as applied.
  std::size_t ops = 0;
  table::ApplyStats applied;
};

class TwoPhaseInstaller {
 public:
  // The installer snapshots the switch's current pipeline as last-good.
  explicit TwoPhaseInstaller(switchsim::Switch& sw);

  // Stages, verifies, and commits `pipeline`. `faults` models the control
  // channel (nullptr = reliable); each chunk send consumes one fault-plan
  // decision, so a campaign is exactly reproducible from the plan seed.
  // A chunk is retried up to `chunk_retries` times, a full attempt up to
  // `max_attempts` times; exhaustion aborts with the switch untouched.
  InstallReport install(const table::Pipeline& pipeline,
                        const fault::Plan* faults = nullptr,
                        std::size_t chunk_bytes = 512, int max_attempts = 3,
                        int chunk_retries = 8);

  // Transactional delta install: ships only the entry ops of an
  // incremental commit instead of re-imaging the whole pipeline. Same
  // three phases as install() —
  //   stage   — serialize_ops image in digest-protected chunks over the
  //             same faultable channel;
  //   verify  — whole-image digest, parse (deserialize_ops), then the ops
  //             are applied to a scratch copy of the active pipeline and
  //             the patched result re-validated (strict U0xx diagnostics
  //             catch a controller/switch desync before commit);
  //   commit  — Switch::apply_delta patches the running program in place
  //             (RCU swap), then the reader-visible snapshot advances.
  // Any failure — channel exhaustion, parse error, or a delta that does
  // not land — leaves switch and snapshot on last-good; rollback() still
  // restores the pre-delta pipeline after a successful commit.
  InstallReport apply_delta(std::span<const table::EntryOp> ops,
                            const fault::Plan* faults = nullptr,
                            std::size_t chunk_bytes = 512,
                            int max_attempts = 3, int chunk_retries = 8);

  // Restores the previously committed pipeline (undo of the last
  // successful install or apply_delta). False when there is nothing to
  // roll back to.
  bool rollback();

  // The committed pipeline, finalized, safe for concurrent read-only
  // evaluation. Never observes a partially staged image.
  std::shared_ptr<const table::Pipeline> active() const;

  std::uint64_t commits() const noexcept { return commits_; }

 private:
  void publish(std::shared_ptr<const table::Pipeline> next);

  // One staging attempt: ships `bytes` in digest-checked chunks over the
  // faultable channel, appending delivered chunks to `staged`. False when
  // any chunk exhausts its retries. `send_index` advances once per send
  // so a whole campaign replays from the fault-plan seed.
  bool stage_attempt(std::span<const std::uint8_t> bytes,
                     std::size_t chunk_bytes, const fault::Plan* faults,
                     int chunk_retries, std::uint64_t& send_index,
                     InstallReport& report, std::vector<std::uint8_t>& staged);

  switchsim::Switch& sw_;
  mutable std::mutex mu_;
  std::shared_ptr<const table::Pipeline> active_;
  std::shared_ptr<const table::Pipeline> previous_;
  std::uint64_t commits_ = 0;
};

}  // namespace camus::pubsub
