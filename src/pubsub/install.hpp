// Two-phase pipeline install with rollback: the controller -> switch
// programming path hardened against control-channel faults.
//
//   stage   — the serialized pipeline is shipped in digest-protected
//             chunks over a channel that may drop or corrupt (modelled by
//             a fault::Plan); damaged chunks are retransmitted.
//   verify  — the staged image must match the full-image digest, parse
//             (table::deserialize_pipeline validates structure), and
//             finalize before it can touch the switch.
//   commit  — one reprogram() with the verified pipeline, then an atomic
//             swap of the reader-visible snapshot.
//
// Any fault before commit leaves the switch and the snapshot on the
// last-good pipeline — a mid-update link failure degrades to "the update
// didn't happen", never to a half-programmed switch. Readers only ever
// observe complete pipelines through active() (exercised under TSAN in
// tests/test_concurrent_lookup.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "table/pipeline.hpp"
#include "table/serialize.hpp"
#include "util/journal.hpp"  // util::crc32
#include "util/result.hpp"

namespace camus::pubsub {

// --- hardened chunk channel ----------------------------------------------
//
// Every chunk crosses the control channel framed with an explicit header:
// magic, the controller epoch, a per-transfer id, the chunk's index and
// the transfer's total, the payload length, and a CRC-32 over header and
// payload. The receiver assembles chunks into index-addressed slots, so a
// reordered chunk lands in the right place and a duplicated chunk is
// detected against its slot instead of silently corrupting a sequential
// append (the historical failure mode this replaces). Rejections carry
// stable C0xx codes:
//   C001  malformed frame (short, bad magic, length disagreement)
//   C002  CRC mismatch (corrupted on the wire)
//   C003  chunk from another transfer or a different controller epoch
//         (a stray from an abandoned staging attempt)
//   C004  duplicate of an already-accepted chunk (idempotent: the sender
//         treats this as an ACK)
//   C005  chunk index out of range, or total_chunks disagreement

inline constexpr std::uint16_t kChunkMagic = 0xC405;
inline constexpr std::size_t kChunkHeaderBytes =
    2 + 8 + 8 + 4 + 4 + 4 + 4;  // magic..crc

struct ChunkHeader {
  std::uint64_t epoch = 0;
  std::uint64_t xfer_id = 0;
  std::uint32_t chunk_idx = 0;
  std::uint32_t total_chunks = 0;
  std::uint32_t payload_len = 0;
};

// Frames one chunk for the wire (header + CRC + payload).
std::vector<std::uint8_t> encode_chunk(const ChunkHeader& h,
                                       std::span<const std::uint8_t> payload);

// The switch-side assembler for one transfer. Not thread-safe (one
// control channel, one transfer at a time).
class ChunkReceiver {
 public:
  ChunkReceiver(std::uint64_t epoch, std::uint64_t xfer_id,
                std::uint32_t total_chunks, std::size_t chunk_bytes,
                std::size_t image_bytes);

  // Validates and slots one wire frame; returns the accepted chunk index
  // or a C0xx diagnostic (see above).
  util::Result<std::uint32_t> receive(std::span<const std::uint8_t> wire);

  bool complete() const noexcept { return filled_ == total_; }
  std::size_t filled() const noexcept { return filled_; }
  bool has(std::uint32_t idx) const noexcept {
    return idx < have_.size() && have_[idx];
  }

  // Concatenated payloads in index order; only meaningful when complete().
  std::vector<std::uint8_t> assemble() const;

 private:
  std::uint64_t epoch_;
  std::uint64_t xfer_id_;
  std::uint32_t total_;
  std::size_t chunk_bytes_;
  std::size_t image_bytes_;
  std::vector<std::vector<std::uint8_t>> slots_;
  std::vector<bool> have_;
  std::uint32_t filled_ = 0;
};

// Outcome of one install() or apply_delta() call.
struct InstallReport {
  bool committed = false;
  std::size_t attempts = 0;       // full staging attempts
  std::size_t chunks = 0;         // chunks in the image
  std::size_t chunk_sends = 0;    // including retransmits
  std::size_t chunk_retransmits = 0;
  // Channel-hardening telemetry: frames the receiver rejected, by cause,
  // plus frames the channel delivered late (reorder realized).
  std::size_t chunk_crc_rejects = 0;   // C002
  std::size_t chunk_dup_rejects = 0;   // C004 (counted, but acts as ACK)
  std::size_t chunk_malformed = 0;     // C001
  std::size_t chunk_stray_rejects = 0; // C003/C005
  std::size_t chunk_reordered = 0;     // frames delivered out of order
  std::uint64_t epoch = 0;             // controller epoch stamped on writes
  bool fenced_out = false;  // switch rejected the commit as stale (E140)
  std::string error;              // empty when committed
  // apply_delta() only: ops shipped and their kind breakdown as applied.
  std::size_t ops = 0;
  table::ApplyStats applied;
};

// A staged-but-uncommitted install: the image crossed the channel, passed
// digest + parse verification, and is ready for the commit phase — but the
// switch is untouched. Dropping a StagedInstall aborts it for free (nothing
// was programmed). The FabricController's all-or-nothing cross-switch
// commit stages one of these on every switch before committing any.
struct StagedInstall {
  bool staged = false;    // verification passed; pipeline is non-null
  InstallReport report;   // stage-phase telemetry (committed still false)
  std::shared_ptr<table::Pipeline> pipeline;  // verified, finalized image
};

class TwoPhaseInstaller {
 public:
  // The installer snapshots the switch's current pipeline as last-good.
  explicit TwoPhaseInstaller(switchsim::Switch& sw);

  // Stages, verifies, and commits `pipeline`. `faults` models the control
  // channel (nullptr = reliable); each chunk send consumes one fault-plan
  // decision, so a campaign is exactly reproducible from the plan seed.
  // A chunk is retried up to `chunk_retries` times, a full attempt up to
  // `max_attempts` times; exhaustion aborts with the switch untouched.
  // Equivalent to stage() followed by commit_staged().
  InstallReport install(const table::Pipeline& pipeline,
                        const fault::Plan* faults = nullptr,
                        std::size_t chunk_bytes = 512, int max_attempts = 3,
                        int chunk_retries = 8);

  // Phase split of install() for transactions that span switches: stage()
  // runs the stage+verify phases only (channel transfer, digest check,
  // parse + finalize) and leaves the switch untouched; commit_staged()
  // runs the commit phase (epoch-fenced reprogram + snapshot publish) on a
  // previously staged image. A coordinator stages on every switch, checks
  // every StagedInstall::staged, and only then commits — any stage failure
  // aborts the whole transaction with no switch modified.
  StagedInstall stage(const table::Pipeline& pipeline,
                      const fault::Plan* faults = nullptr,
                      std::size_t chunk_bytes = 512, int max_attempts = 3,
                      int chunk_retries = 8);

  // Commits a staged image; updates s.report (committed / fenced_out /
  // error) in place and returns s.report.committed. False on a stale
  // epoch (E140) or when s was never staged.
  bool commit_staged(StagedInstall& s);

  // Transactional delta install: ships only the entry ops of an
  // incremental commit instead of re-imaging the whole pipeline. Same
  // three phases as install() —
  //   stage   — serialize_ops image in digest-protected chunks over the
  //             same faultable channel;
  //   verify  — whole-image digest, parse (deserialize_ops), then the ops
  //             are applied to a scratch copy of the active pipeline and
  //             the patched result re-validated (strict U0xx diagnostics
  //             catch a controller/switch desync before commit);
  //   commit  — Switch::apply_delta patches the running program in place
  //             (RCU swap), then the reader-visible snapshot advances.
  // Any failure — channel exhaustion, parse error, or a delta that does
  // not land — leaves switch and snapshot on last-good; rollback() still
  // restores the pre-delta pipeline after a successful commit.
  InstallReport apply_delta(std::span<const table::EntryOp> ops,
                            const fault::Plan* faults = nullptr,
                            std::size_t chunk_bytes = 512,
                            int max_attempts = 3, int chunk_retries = 8);

  // Restores the previously committed pipeline (undo of the last
  // successful install or apply_delta). False when there is nothing to
  // roll back to, or when the switch fences the write out as stale.
  bool rollback();

  // The committed pipeline, finalized, safe for concurrent read-only
  // evaluation. Never observes a partially staged image.
  std::shared_ptr<const table::Pipeline> active() const;

  std::uint64_t commits() const noexcept { return commits_; }

  // --- crash-safety hooks -------------------------------------------------

  // Stamps every subsequent commit with this controller epoch: commits go
  // through the switch's fenced write path, so a crashed predecessor's
  // stragglers are rejected (E140) instead of clobbering this
  // controller's installs. Epoch 0 (the default) keeps the legacy
  // unfenced path for single-controller tools and tests.
  void set_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  // Re-snapshots last-good from the program the switch actually runs —
  // called after a switch reboot or a reconciliation repair so the next
  // apply_delta()'s dry-run base matches reality. Drops the rollback
  // point (it described a pre-reboot world).
  void resync_from_switch();

  // The switch this installer programs (reconciliation reads its digests).
  switchsim::Switch& target() noexcept { return sw_; }

 private:
  void publish(std::shared_ptr<const table::Pipeline> next);

  // One staging attempt: ships `bytes` in explicitly framed, CRC-checked,
  // slot-addressed chunks over the faultable channel (drop, corruption,
  // duplication, and reordering are all exercised; see ChunkReceiver).
  // False when any chunk exhausts its retries. `send_index` advances once
  // per send so a whole campaign replays from the fault-plan seed.
  bool stage_attempt(std::span<const std::uint8_t> bytes,
                     std::size_t chunk_bytes, const fault::Plan* faults,
                     int chunk_retries, std::uint64_t& send_index,
                     InstallReport& report, std::vector<std::uint8_t>& staged);

  switchsim::Switch& sw_;
  mutable std::mutex mu_;
  std::shared_ptr<const table::Pipeline> active_;
  std::shared_ptr<const table::Pipeline> previous_;
  std::uint64_t commits_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_xfer_id_ = 1;
};

}  // namespace camus::pubsub
