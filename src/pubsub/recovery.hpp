// MoldUDP64 gap recovery: sequence tracking, gap detection, bounded-retry
// retransmission with exponential backoff, and in-order reassembly — the
// machinery that turns the unreliable multicast feed into exactly-once
// in-order delivery at both recovery points:
//
//   publisher --(lossy uplink)--> FeedHandler -> switch
//   switch -> FeedSequencer --(lossy downlinks)--> RecoveringSubscriber
//
// The switch re-frames each egress packet with the ORIGINAL MoldUDP
// sequence but a FILTERED subset of messages, so a subscriber cannot tell
// upstream filtering from loss. The FeedSequencer therefore re-stamps
// every egress frame with a dense per-port sequence (one number per
// delivered message) and retains the blocks for retransmission; gap
// detection downstream is then exact. Time is passed in explicitly
// (microseconds, netsim's clock) — nothing here reads a wall clock, so
// every recovery schedule is deterministic and replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "proto/packet.hpp"
#include "util/stats.hpp"

namespace camus::pubsub {

struct RecoveryParams {
  // How long the head of line may be blocked before the first
  // retransmission request (tolerates plain reordering without chatter).
  double gap_timeout_us = 100.0;
  // First retry interval after a request; grows by backoff_factor per
  // consecutive retry of the same head-of-line gap.
  double retry_backoff_us = 500.0;
  double backoff_factor = 2.0;
  // Retries after the initial request before the gap is declared lost and
  // skipped (delivery resumes after the hole).
  int max_retries = 5;
  // Bound on buffered out-of-order messages; overflow is dropped and
  // recovered by retransmission like any other loss.
  std::size_t max_pending = 65536;
  // Messages per retransmission request (larger gaps are split).
  std::uint16_t max_request_count = 256;
  // Admission window: a frame whose sequence is more than this far ahead
  // of the next expected one is rejected outright. A corrupted sequence
  // field that slips past the 16-bit UDP checksum would otherwise open a
  // gap of up to 2^63 and the per-timer request walk over the missing
  // range would never terminate. Legitimate messages this far ahead are
  // indistinguishable from pending overflow and take the same path:
  // dropped now, recovered by retransmission once the window slides.
  std::uint64_t max_seq_jump = 65536;
};

struct RecoveryStats {
  std::uint64_t frames_accepted = 0;
  std::uint64_t messages_delivered = 0;  // unique, in order
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t overflow_dropped = 0;
  std::uint64_t seq_jump_rejects = 0;  // beyond the admission window
  std::uint64_t gaps_detected = 0;     // head-of-line blocking episodes
  std::uint64_t requests_sent = 0;     // including retries
  std::uint64_t retries = 0;           // requests after the first per gap
  std::uint64_t messages_recovered = 0;  // delivered from a retransmission
  std::uint64_t messages_lost = 0;       // skipped after max_retries
  // Head-of-line blocking duration per resolved gap episode (recovery
  // latency as the application observes it).
  util::CdfSampler gap_block_us;
};

// In-order reassembly state machine over a dense message sequence.
// Callback-driven and clock-free: the owner feeds frames with offer(),
// pumps timers with on_timer(), and schedules the next pump from
// next_deadline().
class Reassembler {
 public:
  using DeliverFn =
      std::function<void(std::uint64_t seq, const proto::ItchAddOrder&)>;
  using RequestFn = std::function<void(std::uint64_t seq, std::uint16_t count)>;

  Reassembler(RecoveryParams params, DeliverFn deliver, RequestFn request);

  // Offers the messages of one (possibly duplicated, reordered, or
  // partially stale) frame whose first message has sequence `first_seq`.
  // Delivers every newly in-order message through DeliverFn. An EMPTY
  // frame is a MoldUDP-style heartbeat: `first_seq` advertises one past
  // the highest published sequence, making tail loss detectable.
  void offer(double now_us, std::uint64_t first_seq,
             std::span<const proto::ItchAddOrder> msgs);

  // Fires due gap timers: sends retransmission requests for every missing
  // range, backs off on consecutive misses, and gives up (skips) the
  // oldest gap after max_retries.
  void on_timer(double now_us);

  // Absolute time of the next pending timer; +infinity when idle.
  double next_deadline() const noexcept { return deadline_; }

  // Next sequence the application has not yet seen (delivered or skipped).
  std::uint64_t expected() const noexcept { return expected_; }

  const RecoveryStats& stats() const noexcept { return stats_; }

 private:
  void drain(double now_us);
  void arm(double now_us);

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  RecoveryParams params_;
  DeliverFn deliver_;
  RequestFn request_;
  std::uint64_t expected_ = 1;  // next sequence to deliver
  std::uint64_t horizon_ = 1;   // one past the highest sequence seen
  std::map<std::uint64_t, proto::ItchAddOrder> pending_;
  std::set<std::uint64_t> requested_;
  double deadline_ = kNever;
  std::uint64_t stall_head_ = 0;  // head seq at the last timer fire
  int stall_ = 0;                 // consecutive fires with the same head
  std::optional<double> blocked_since_;
  RecoveryStats stats_;
};

// Bounded store of consecutive pre-encoded message blocks, serving
// retransmission requests. Appends are assigned consecutive sequence
// numbers starting at 1; old blocks are evicted past `capacity`.
class RetransmitStore {
 public:
  explicit RetransmitStore(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void append(std::span<const std::uint8_t> block);

  std::uint64_t first() const noexcept { return first_; }  // oldest retained
  std::uint64_t end() const noexcept {  // next sequence to be appended
    return first_ + blocks_.size();
  }

  // Blocks overlapping [seq, seq + count), clamped to retention.
  // *first_out is the sequence of the first returned block.
  std::vector<std::vector<std::uint8_t>> fetch(std::uint64_t seq,
                                               std::uint16_t count,
                                               std::uint64_t* first_out) const;

 private:
  std::deque<std::vector<std::uint8_t>> blocks_;
  std::uint64_t first_ = 1;
  std::size_t capacity_;
};

// Switch-egress recovery shim: re-stamps each per-port egress frame with
// the port's dense sequence, seals the UDP checksum so downstream
// corruption is detectable, and retains the message blocks to serve
// retransmission requests.
class FeedSequencer {
 public:
  explicit FeedSequencer(std::size_t retain_capacity = 65536)
      : capacity_(retain_capacity) {}

  // Re-stamps `frame` in place. Returns the first per-port sequence of the
  // frame's messages, or 0 when the frame does not parse (left untouched).
  std::uint64_t seal(std::uint16_t port, std::vector<std::uint8_t>& frame);

  // Serves a retransmission request for a port: ready-to-send market-data
  // frames of at most max_msgs messages each, built from retained blocks.
  // Requests past retention are clamped; fully-evicted requests yield
  // nothing (the requester gives up after max_retries).
  std::vector<std::vector<std::uint8_t>> retransmit(
      std::uint16_t port, std::uint64_t seq, std::uint16_t count,
      std::size_t max_msgs = 16) const;

  // Next sequence the port will assign (1 when the port has sent nothing).
  std::uint64_t next_sequence(std::uint16_t port) const;

  // Heartbeat frame advertising the port's next sequence (count 0, sealed
  // checksum); empty when the port has no egress state yet. Downstream
  // reassemblers use it to detect tail loss.
  std::vector<std::uint8_t> heartbeat(std::uint16_t port) const;

 private:
  struct PortState {
    explicit PortState(std::size_t capacity) : store(capacity) {}
    std::uint64_t next_seq = 1;
    proto::MarketDataView last_view;  // headers for reply re-framing
    RetransmitStore store;
  };

  std::size_t capacity_;
  std::map<std::uint16_t, PortState> ports_;
  std::vector<std::uint32_t> scratch_offsets_;
};

// Gap-recovering subscriber endpoint: verifies UDP checksums (corruption
// counts as loss), reassembles the per-port dense sequence, delivers
// exactly-once in-order messages to the application callback, and emits
// MoldUDP64 retransmission requests through the transport callback.
class RecoveringSubscriber {
 public:
  using AppFn =
      std::function<void(std::uint64_t seq, const proto::ItchAddOrder&)>;
  using RequestFn = std::function<void(const proto::MoldUdp64Request&)>;

  RecoveringSubscriber(std::uint16_t port, RecoveryParams params,
                       AppFn on_message = nullptr,
                       RequestFn on_request = nullptr);

  // The internal Reassembler captures `this`; pin the address.
  RecoveringSubscriber(const RecoveringSubscriber&) = delete;
  RecoveringSubscriber& operator=(const RecoveringSubscriber&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  // Feeds one delivered frame at `now_us`. Returns false for frames that
  // fail checksum or parse — both are treated as loss and recovered.
  bool deliver(double now_us, std::span<const std::uint8_t> frame);

  void on_timer(double now_us);
  double next_deadline() const noexcept { return reasm_.next_deadline(); }

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t malformed() const noexcept { return malformed_; }
  std::uint64_t checksum_rejects() const noexcept { return checksum_rejects_; }
  const std::map<std::string, std::uint64_t>& per_symbol() const noexcept {
    return per_symbol_;
  }
  const RecoveryStats& stats() const noexcept { return reasm_.stats(); }

 private:
  std::uint16_t port_;
  std::string session_ = "CAMUS00001";
  AppFn app_;
  RequestFn request_;
  Reassembler reasm_;
  std::uint64_t received_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t checksum_rejects_ = 0;
  std::map<std::string, std::uint64_t> per_symbol_;
};

// Switch-ingress gap recovery: reassembles the publisher feed so the
// switch processes every message exactly once, in order, despite a lossy
// publisher->switch link. Released in-order messages are re-framed in
// groups of `group_msgs` ALIGNED to absolute sequence boundaries (headers
// copied from the feed, MoldUDP sequence = first message of the group).
// When the publisher batches with the same group size, the re-framed
// stream is bit-identical to the published one — same grouping, same
// per-frame sequence — so consumers that key state off the frame (e.g.
// the switch's logical clock) behave exactly as in a loss-free run. A
// trailing partial group is held until later messages complete it; the
// owner releases it at end of session with flush_residual().
class FeedHandler {
 public:
  using FrameFn =
      std::function<void(std::uint64_t first_seq, std::vector<std::uint8_t>)>;
  using RequestFn = std::function<void(const proto::MoldUdp64Request&)>;

  FeedHandler(RecoveryParams params, FrameFn on_frame,
              RequestFn on_request = nullptr, std::size_t group_msgs = 4);

  // The internal Reassembler captures `this`; pin the address.
  FeedHandler(const FeedHandler&) = delete;
  FeedHandler& operator=(const FeedHandler&) = delete;

  // Feeds one frame from the uplink. Returns false on checksum/parse
  // failure (treated as loss).
  bool deliver(double now_us, std::span<const std::uint8_t> frame);

  void on_timer(double now_us);
  double next_deadline() const noexcept { return reasm_.next_deadline(); }

  // Releases a held trailing partial group (end of session). Returns true
  // if a frame was emitted. Only call once no further messages can arrive.
  bool flush_residual();

  std::uint64_t malformed() const noexcept { return malformed_; }
  std::uint64_t checksum_rejects() const noexcept { return checksum_rejects_; }
  const RecoveryStats& stats() const noexcept { return reasm_.stats(); }

 private:
  void flush();
  void emit(std::uint64_t first_seq, std::size_t n);

  std::string session_ = "CAMUS00001";
  FrameFn frame_fn_;
  RequestFn request_;
  std::size_t group_msgs_;
  Reassembler reasm_;
  proto::MarketDataView last_view_;
  bool have_view_ = false;
  std::vector<proto::ItchAddOrder> run_;
  std::uint64_t run_first_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t checksum_rejects_ = 0;
};

}  // namespace camus::pubsub
