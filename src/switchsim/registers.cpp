#include "switchsim/registers.hpp"

#include <algorithm>

namespace camus::switchsim {

StateRegisters::StateRegisters(const spec::Schema& schema)
    : schema_(&schema), cells_(schema.state_vars().size()) {}

void StateRegisters::roll(std::uint32_t var, std::uint64_t now_us) {
  const auto& sv = schema_->state_var(var);
  if (sv.window_us == 0) return;  // cumulative: never resets
  const std::uint64_t idx = now_us / sv.window_us;
  Cell& c = cells_[var];
  if (idx != c.window_index) {
    c.window_index = idx;
    c.sum = 0;
    c.count = 0;
    ++version_;
  }
}

std::uint64_t StateRegisters::read(std::uint32_t var, std::uint64_t now_us) {
  roll(var, now_us);
  const Cell& c = cells_[var];
  switch (schema_->state_var(var).func) {
    case spec::StateFunc::kCount:
      return c.count;
    case spec::StateFunc::kSum:
      return c.sum;
    case spec::StateFunc::kAvg:
      return c.count == 0 ? 0 : c.sum / c.count;
    case spec::StateFunc::kMin:
    case spec::StateFunc::kMax:
      // Empty window reads 0, consistent with the other aggregates: the
      // value only becomes meaningful once at least one update landed in
      // the current window. Rules can guard on a companion counter.
      return c.count == 0 ? 0 : c.sum;  // sum slot doubles as min/max
  }
  return 0;
}

std::vector<std::uint64_t> StateRegisters::snapshot(std::uint64_t now_us) {
  std::vector<std::uint64_t> out;
  snapshot_into(out, now_us);
  return out;
}

void StateRegisters::snapshot_into(std::vector<std::uint64_t>& out,
                                   std::uint64_t now_us) {
  out.resize(cells_.size());
  for (std::uint32_t v = 0; v < cells_.size(); ++v) out[v] = read(v, now_us);
}

void StateRegisters::apply_update(std::uint32_t var,
                                  const std::vector<std::uint64_t>& fields,
                                  std::uint64_t now_us) {
  roll(var, now_us);
  const auto& sv = schema_->state_var(var);
  Cell& c = cells_[var];
  const std::uint64_t v =
      sv.src_field != spec::kInvalidField ? fields.at(sv.src_field) : 0;
  switch (sv.func) {
    case spec::StateFunc::kCount:
      break;
    case spec::StateFunc::kSum:
    case spec::StateFunc::kAvg: {
      // Register widths saturate rather than wrap: a silent wrap would
      // make window aggregates nonsensical.
      const std::uint64_t room = sv.umax() - c.sum;
      c.sum += v > room ? room : v;
      break;
    }
    case spec::StateFunc::kMin:
      c.sum = c.count == 0 ? v : std::min(c.sum, v);
      break;
    case spec::StateFunc::kMax:
      c.sum = c.count == 0 ? v : std::max(c.sum, v);
      break;
  }
  ++c.count;
  ++version_;
}

void StateRegisters::inject_bit_flip(std::uint32_t var, unsigned bit) {
  Cell& c = cells_.at(var);
  c.sum ^= 1ULL << (bit % 64);
  ++version_;
}

}  // namespace camus::switchsim