// Stateful register file backing the schema's state variables. Implements
// the tumbling-window aggregate semantics of the paper's @query_counter /
// @query_avg annotations: each variable accumulates over an aligned window
// of its declared size and resets when the window rolls over.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"

namespace camus::switchsim {

class StateRegisters {
 public:
  explicit StateRegisters(const spec::Schema& schema);

  // Current value of every state variable at time now_us, in id order —
  // the vector the pipeline's Env.states slot expects. For kAvg this is
  // sum/count over the in-progress window (0 when empty).
  std::vector<std::uint64_t> snapshot(std::uint64_t now_us);

  // Allocation-free variant for hot loops; resizes and overwrites `out`.
  void snapshot_into(std::vector<std::uint64_t>& out, std::uint64_t now_us);

  // Applies one update action (leaf ActionSet::state_updates entry).
  // field_values supplies the aggregated source field for kSum/kAvg.
  void apply_update(std::uint32_t var,
                    const std::vector<std::uint64_t>& field_values,
                    std::uint64_t now_us);

  std::uint64_t read(std::uint32_t var, std::uint64_t now_us);

  // Bumped on every cell mutation (updates and window rollovers). Two
  // reads at the same version and now_us are guaranteed to snapshot the
  // same values, which lets the batched fast path cache one snapshot
  // across messages instead of re-reading the register file per message.
  std::uint64_t version() const noexcept { return version_; }

  std::size_t size() const noexcept { return cells_.size(); }

  // Fault-injection hook (fault::Injector): XORs one bit of the variable's
  // accumulator cell, modelling an SRAM soft error. Bumps version() so
  // snapshot caches are invalidated like any real mutation.
  void inject_bit_flip(std::uint32_t var, unsigned bit);

 private:
  struct Cell {
    std::uint64_t window_index = 0;
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
  };

  void roll(std::uint32_t var, std::uint64_t now_us);

  const spec::Schema* schema_;
  std::vector<Cell> cells_;
  std::uint64_t version_ = 0;
};

}  // namespace camus::switchsim
