// Stateful register file backing the schema's state variables. Implements
// the tumbling-window aggregate semantics of the paper's @query_counter /
// @query_avg annotations: each variable accumulates over an aligned window
// of its declared size and resets when the window rolls over.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/bound.hpp"
#include "spec/schema.hpp"

namespace camus::switchsim {

class StateRegisters {
 public:
  explicit StateRegisters(const spec::Schema& schema);

  // Current value of every state variable at time now_us, in id order —
  // the vector the pipeline's Env.states slot expects. For kAvg this is
  // sum/count over the in-progress window (0 when empty).
  std::vector<std::uint64_t> snapshot(std::uint64_t now_us);

  // Applies one update action (leaf ActionSet::state_updates entry).
  // field_values supplies the aggregated source field for kSum/kAvg.
  void apply_update(std::uint32_t var,
                    const std::vector<std::uint64_t>& field_values,
                    std::uint64_t now_us);

  std::uint64_t read(std::uint32_t var, std::uint64_t now_us);

 private:
  struct Cell {
    std::uint64_t window_index = 0;
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
  };

  void roll(std::uint32_t var, std::uint64_t now_us);

  const spec::Schema* schema_;
  std::vector<Cell> cells_;
};

}  // namespace camus::switchsim
