#include "switchsim/switch.hpp"

#include <algorithm>
#include <map>

#include "proto/generic.hpp"
#include "proto/packet.hpp"
#include "util/flat_map.hpp"

namespace camus::switchsim {

Switch::Switch(spec::Schema schema, table::Pipeline pipeline)
    : schema_(std::make_shared<const spec::Schema>(std::move(schema))),
      slot_(std::make_unique<ProgramSlot>()),
      extractor_(*schema_),
      registers_(*schema_) {
  // Build the lookup indexes now, not lazily under the first packet.
  publish(std::move(pipeline));
}

// Lowers a pipeline into one immutable program generation. Runs outside
// the slot lock where possible: finalize + flatten are the expensive part
// of an update.
std::shared_ptr<Switch::Program> Switch::make_program(
    table::Pipeline pipeline) {
  auto prog = std::make_shared<Program>();
  prog->pipeline = std::move(pipeline);
  prog->pipeline.finalize();
  prog->compiled = table::CompiledPipeline(prog->pipeline);
  prog->prefix_sig = prog->compiled.prefix_signature();
  prog->stateless = [&] {
    for (const table::LeafEntry& e : prog->pipeline.leaf.entries())
      if (!e.actions.state_updates.empty()) return false;
    for (const table::Table& t : prog->pipeline.tables)
      if (t.subject().kind == lang::Subject::Kind::kState) return false;
    for (const table::Table& t : prog->pipeline.value_maps)
      if (t.subject().kind == lang::Subject::Kind::kState) return false;
    return true;
  }();
  return prog;
}

void Switch::publish(table::Pipeline pipeline) {
  auto prog = make_program(std::move(pipeline));
  const std::lock_guard<std::mutex> lock(slot_->mu);
  prog->version = (slot_->published ? slot_->published->version : 0) + 1;
  const std::uint64_t v = prog->version;
  slot_->published = std::move(prog);
  // Release store after the locked publish: a reader that sees the new
  // version is guaranteed to find (at least) that program in the slot.
  slot_->version.store(v, std::memory_order_release);
}

void Switch::reprogram(table::Pipeline pipeline) {
  publish(std::move(pipeline));
}

util::Result<table::ApplyStats> Switch::apply_delta(
    std::span<const table::EntryOp> ops) {
  // The whole patch runs under the slot lock so concurrent updaters
  // serialize instead of losing each other's ops (readers only take the
  // lock on a version change, so the data plane stays unblocked on its
  // current snapshot).
  const std::lock_guard<std::mutex> lock(slot_->mu);
  table::Pipeline patched = slot_->published->pipeline;
  auto applied = table::apply_ops(patched, ops);
  if (!applied.ok()) return applied.error();  // running program untouched
  auto prog = make_program(std::move(patched));
  prog->version = slot_->published->version + 1;
  const std::uint64_t v = prog->version;
  slot_->published = std::move(prog);
  slot_->version.store(v, std::memory_order_release);
  return applied;
}

namespace {
util::Error stale_epoch_error(std::uint64_t epoch, std::uint64_t fence,
                              const char* code) {
  return util::Error{"stale controller epoch " + std::to_string(epoch) +
                         " (switch fence at " + std::to_string(fence) + ")",
                     0, 0, code};
}
}  // namespace

util::Result<std::uint64_t> Switch::fence(std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(slot_->mu);
  const std::uint64_t cur = slot_->fence_epoch.load(std::memory_order_relaxed);
  if (epoch < cur) {
    slot_->stale_epoch_rejects.fetch_add(1, std::memory_order_relaxed);
    return stale_epoch_error(epoch, cur, "E141");
  }
  slot_->fence_epoch.store(epoch, std::memory_order_release);
  return epoch;
}

util::Result<std::uint64_t> Switch::reprogram_fenced(
    std::uint64_t epoch, table::Pipeline pipeline) {
  // Lower outside the lock (the expensive part), fence-check inside it so
  // check-and-publish is atomic against a competing newer controller.
  auto prog = make_program(std::move(pipeline));
  const std::lock_guard<std::mutex> lock(slot_->mu);
  const std::uint64_t cur = slot_->fence_epoch.load(std::memory_order_relaxed);
  if (epoch < cur) {
    slot_->stale_epoch_rejects.fetch_add(1, std::memory_order_relaxed);
    return stale_epoch_error(epoch, cur, "E140");
  }
  slot_->fence_epoch.store(epoch, std::memory_order_release);
  prog->version = slot_->published->version + 1;
  const std::uint64_t v = prog->version;
  slot_->published = std::move(prog);
  slot_->version.store(v, std::memory_order_release);
  return v;
}

util::Result<table::ApplyStats> Switch::apply_delta_fenced(
    std::uint64_t epoch, std::span<const table::EntryOp> ops) {
  const std::lock_guard<std::mutex> lock(slot_->mu);
  const std::uint64_t cur = slot_->fence_epoch.load(std::memory_order_relaxed);
  if (epoch < cur) {
    slot_->stale_epoch_rejects.fetch_add(1, std::memory_order_relaxed);
    return stale_epoch_error(epoch, cur, "E140");
  }
  table::Pipeline patched = slot_->published->pipeline;
  auto applied = table::apply_ops(patched, ops);
  if (!applied.ok()) return applied.error();  // running program untouched
  slot_->fence_epoch.store(epoch, std::memory_order_release);
  auto prog = make_program(std::move(patched));
  prog->version = slot_->published->version + 1;
  const std::uint64_t v = prog->version;
  slot_->published = std::move(prog);
  slot_->version.store(v, std::memory_order_release);
  return applied;
}

std::vector<table::StageDigest> Switch::stage_digests() const {
  // Pin the published program instead of touching the data-plane snapshot
  // cache: the reconciliation pass runs from the controller thread while
  // the data plane keeps classifying.
  const auto prog = pin_program();
  return table::stage_digests(prog->pipeline);
}

std::uint64_t Switch::program_digest() const {
  const auto prog = pin_program();
  return table::pipeline_digest(prog->pipeline);
}

const Switch::Program& Switch::current() const {
  const std::uint64_t v = slot_->version.load(std::memory_order_acquire);
  if (!cur_ || cur_->version != v) {
    const std::lock_guard<std::mutex> lock(slot_->mu);
    cur_ = slot_->published;
  }
  return *cur_;
}

const Switch::Program& Switch::current_data_plane() {
  const Program& prog = current();
  // Reconcile the hot-key memo with the program it will serve: entries
  // computed under a different prefix are garbage, entries computed under
  // a bit-identical prefix are still exact (prefix outcomes are a pure
  // function of the key), so a suffix-only update keeps the memo warm.
  //
  // Why keying on prefix_sig alone is sound even for stateful programs:
  // a prefix stage may match on a REGISTER subject (an exact-match state
  // table placed first by kExactFirst ordering), but prefix_key() copies
  // that register's snapshot value into the memo key itself — the same
  // snapshot run_prefix() would read (classify_fast refreshes snap_ on
  // every register-version or timestamp change before probing). So a
  // register update or window rollover never stales a memo entry; it
  // changes the key, and the old entry remains a correct mapping for the
  // old value if it ever recurs. The memoized function is
  //   (key words) -> post-prefix state,
  // fully determined by the prefix tables (pinned by memo_sig_) and the
  // initial state (hashed into prefix_signature()). Regression:
  // ProcessBatch.StatefulPrefixMemoAcrossRegisterRollover in
  // tests/test_batch.cpp drives repeating keys across register rollovers.
  if (prog.prefix_sig != memo_sig_) {
    for (MemoSlot& s : memo_) s.used = false;
    memo_sig_ = prog.prefix_sig;
  }
  return prog;
}

Switch Switch::make_broadcast(spec::Schema schema,
                              std::vector<std::uint16_t> ports) {
  table::Pipeline pipe;
  table::LeafEntry e;
  e.state = table::kInitialState;
  for (std::uint16_t p : ports) e.actions.add_port(p);
  if (e.actions.ports.size() > 1)
    e.mcast_group = pipe.mcast.intern(e.actions.ports);
  pipe.leaf.add_entry(std::move(e));
  pipe.finalize();
  return Switch(schema, std::move(pipe));
}

const lang::ActionSet& Switch::classify(
    const std::vector<std::uint64_t>& fields, std::uint64_t now_us) {
  const Program& prog = current_data_plane();
  lang::Env env;
  env.fields = fields;
  env.states = registers_.snapshot(now_us);
  const table::LeafEntry* leaf = prog.pipeline.evaluate(env);
  static const lang::ActionSet kDrop{};
  if (!leaf) return kDrop;
  for (std::uint32_t var : leaf->actions.state_updates) {
    registers_.apply_update(var, fields, now_us);
    ++counters_.state_updates;
  }
  return leaf->actions;
}

std::vector<Switch::TxCopy> Switch::process(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt || pkt->itch.add_orders.empty()) {
    ++counters_.parse_errors;
    return {};
  }
  const auto fields = extractor_.extract(pkt->itch.add_orders.front());
  return forward(classify(fields, now_us));
}

std::vector<Switch::TxCopy> Switch::process_generic(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto fields = proto::decode_generic_packet(*schema_, frame);
  if (!fields) {
    ++counters_.parse_errors;
    return {};
  }
  return forward(classify(*fields, now_us));
}

std::vector<Switch::TxCopy> Switch::forward(const lang::ActionSet& actions) {
  // ActionSet::ports is sorted and unique, so its size is the frame's
  // distinct egress port count.
  account_frame(actions.ports.size());
  if (actions.ports.empty()) return {};
  std::vector<TxCopy> out;
  out.reserve(actions.ports.size());
  for (std::uint16_t p : actions.ports) {
    out.push_back({p});
    ++counters_.tx_copies;
  }
  return out;
}

std::vector<Switch::TxPacket> Switch::process_messages(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt || pkt->itch.add_orders.empty()) {
    ++counters_.parse_errors;
    return {};
  }

  // Classify each message and bucket by egress port.
  std::map<std::uint16_t, std::vector<proto::ItchAddOrder>> per_port;
  for (const auto& msg : pkt->itch.add_orders) {
    const auto fields = extractor_.extract(msg);
    const lang::ActionSet& actions = classify(fields, now_us);
    for (std::uint16_t p : actions.ports) per_port[p].push_back(msg);
  }
  // Per frame, like process(): the frame is replicated when its messages
  // collectively reach more than one distinct egress port.
  account_frame(per_port.size());
  if (per_port.empty()) return {};

  std::vector<TxPacket> out;
  out.reserve(per_port.size());
  for (auto& [port, msgs] : per_port) {
    TxPacket tx;
    tx.port = port;
    tx.frame = proto::encode_market_data_packet(
        pkt->eth, pkt->ip.src, pkt->ip.dst, pkt->itch.mold, msgs,
        pkt->udp.dst_port);
    out.push_back(std::move(tx));
    ++counters_.tx_copies;
  }
  return out;
}

void Switch::refresh_snapshot(std::uint64_t now_us) {
  if (snap_valid_ && snap_now_us_ == now_us &&
      snap_version_ == registers_.version())
    return;
  registers_.snapshot_into(snap_, now_us);
  snap_valid_ = true;
  snap_now_us_ = now_us;
  // Read the version after the snapshot: reading can roll windows over,
  // and the cache must key on the post-roll state.
  snap_version_ = registers_.version();
}

const lang::ActionSet* Switch::classify_fast(
    const Program& prog, const std::vector<std::uint64_t>& fields,
    std::uint64_t now_us) {
  const table::CompiledPipeline& compiled = prog.compiled;
  refresh_snapshot(now_us);
  const lang::ActionSet* actions = nullptr;
  if (compiled.valid()) {
    std::uint32_t leaf;
    const std::size_t np = compiled.prefix_stages();
    if (np > 0 && !memo_.empty()) {
      std::array<std::uint64_t, table::CompiledPipeline::kMaxPrefix> key{};
      compiled.prefix_key(fields, snap_, key.data());
      std::uint64_t h = 0;
      for (std::size_t i = 0; i < np; ++i) h = util::mix64(h ^ key[i]);
      MemoSlot& slot = memo_[h & (kMemoSlots - 1)];
      ++batch_stats_.memo_probes;
      std::uint32_t state;
      if (slot.used && slot.key == key) {
        state = slot.state;
        ++batch_stats_.memo_hits;
      } else {
        state = compiled.run_prefix(fields, snap_);
        slot.key = key;
        slot.state = state;
        slot.used = true;
      }
      leaf = compiled.finish(state, fields, snap_);
    } else {
      leaf = compiled.traverse(fields, snap_);
    }
    actions = compiled.actions(leaf);
  } else {
    // The pipeline could not be flattened (degenerate shape); fall back to
    // the reference evaluator, still with the cached snapshot.
    env_scratch_.fields = fields;
    env_scratch_.states = snap_;
    const table::LeafEntry* l = prog.pipeline.evaluate(env_scratch_);
    actions = l ? &l->actions : nullptr;
  }
  if (actions) {
    for (std::uint32_t var : actions->state_updates) {
      registers_.apply_update(var, fields, now_us);
      ++counters_.state_updates;
    }
  }
  return actions;
}

std::vector<Switch::TxPacket> Switch::process_batch(
    std::span<const Frame> frames) {
  const Program& prog = current_data_plane();
  if (memo_.empty() && prog.compiled.valid() &&
      prog.compiled.prefix_stages() > 0)
    memo_.resize(kMemoSlots);

  // Pass 1: zero-copy scan. Collects per-frame header views and one shared
  // add-order offset array; malformed frames are settled here so the later
  // passes touch only classifiable traffic.
  views_.resize(frames.size());
  offsets_.clear();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges(frames.size());
  std::vector<unsigned char> parsed(frames.size(), 0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    ++counters_.rx_frames;
    const auto begin = static_cast<std::uint32_t>(offsets_.size());
    const bool ok =
        proto::scan_market_data_packet(frames[f].data, views_[f], offsets_);
    const auto end = static_cast<std::uint32_t>(offsets_.size());
    if (!ok || begin == end) {
      // Parse error, or no add-order to classify on — same outcome as
      // decode_market_data_packet failing / add_orders.empty().
      ++counters_.parse_errors;
      offsets_.resize(begin);  // drop offsets from a partially-scanned frame
      ranges[f] = {begin, begin};
    } else {
      parsed[f] = 1;
      ranges[f] = {begin, end};
    }
  }

  // Pass 2: classify every message in arrival order (state updates are
  // order-sensitive). Fields come straight off the wire.
  msg_actions_.resize(offsets_.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (!parsed[f]) continue;
    for (std::uint32_t i = ranges[f].first; i < ranges[f].second; ++i) {
      extractor_.extract_wire(frames[f].data.data() + offsets_[i],
                              fields_scratch_);
      msg_actions_[i] = classify_fast(prog, fields_scratch_, frames[f].now_us);
    }
  }

  // Pass 3: re-frame per egress port. Only matched messages are decoded;
  // buckets_ stays sorted by port so the output order matches the
  // reference path's std::map iteration.
  std::vector<TxPacket> out;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (!parsed[f]) continue;
    for (auto& [port, v] : buckets_) v.clear();
    for (std::uint32_t i = ranges[f].first; i < ranges[f].second; ++i) {
      const lang::ActionSet* a = msg_actions_[i];
      if (!a) continue;
      for (std::uint16_t p : a->ports) {
        auto it = std::lower_bound(
            buckets_.begin(), buckets_.end(), p,
            [](const auto& b, std::uint16_t port) { return b.first < port; });
        if (it == buckets_.end() || it->first != p)
          it = buckets_.emplace(it, p, std::vector<std::uint32_t>{});
        it->second.push_back(i);
      }
    }
    std::size_t nonempty = 0;
    for (const auto& [port, v] : buckets_) nonempty += !v.empty();
    account_frame(nonempty);
    if (nonempty == 0) continue;
    for (const auto& [port, v] : buckets_) {
      if (v.empty()) continue;
      msg_offsets_scratch_.resize(v.size());
      for (std::size_t k = 0; k < v.size(); ++k)
        msg_offsets_scratch_[k] = offsets_[v[k]];
      TxPacket tx;
      tx.port = port;
      proto::build_market_frame_raw(views_[f], frames[f].data,
                                    msg_offsets_scratch_, tx.frame);
      out.push_back(std::move(tx));
      ++counters_.tx_copies;
    }
  }
  return out;
}

bool Switch::fits(const table::ResourceBudget& budget) const {
  return budget.fits(current().pipeline.resources());
}

}  // namespace camus::switchsim
