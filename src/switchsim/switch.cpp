#include "switchsim/switch.hpp"

#include <map>

#include "proto/generic.hpp"
#include "proto/packet.hpp"

namespace camus::switchsim {

Switch::Switch(spec::Schema schema, table::Pipeline pipeline)
    : schema_(std::make_shared<const spec::Schema>(std::move(schema))),
      pipeline_(std::move(pipeline)),
      extractor_(*schema_),
      registers_(*schema_) {
  // Build the lookup indexes now, not lazily under the first packet.
  pipeline_.finalize();
}

Switch Switch::make_broadcast(spec::Schema schema,
                              std::vector<std::uint16_t> ports) {
  table::Pipeline pipe;
  table::LeafEntry e;
  e.state = table::kInitialState;
  for (std::uint16_t p : ports) e.actions.add_port(p);
  if (e.actions.ports.size() > 1)
    e.mcast_group = pipe.mcast.intern(e.actions.ports);
  pipe.leaf.add_entry(std::move(e));
  pipe.finalize();
  return Switch(schema, std::move(pipe));
}

const lang::ActionSet& Switch::classify(
    const std::vector<std::uint64_t>& fields, std::uint64_t now_us) {
  lang::Env env;
  env.fields = fields;
  env.states = registers_.snapshot(now_us);
  const table::LeafEntry* leaf = pipeline_.evaluate(env);
  static const lang::ActionSet kDrop{};
  if (!leaf) return kDrop;
  for (std::uint32_t var : leaf->actions.state_updates) {
    registers_.apply_update(var, fields, now_us);
    ++counters_.state_updates;
  }
  return leaf->actions;
}

std::vector<Switch::TxCopy> Switch::process(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt || pkt->itch.add_orders.empty()) {
    ++counters_.parse_errors;
    return {};
  }
  const auto fields = extractor_.extract(pkt->itch.add_orders.front());
  return forward(classify(fields, now_us));
}

std::vector<Switch::TxCopy> Switch::process_generic(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto fields = proto::decode_generic_packet(*schema_, frame);
  if (!fields) {
    ++counters_.parse_errors;
    return {};
  }
  return forward(classify(*fields, now_us));
}

std::vector<Switch::TxCopy> Switch::forward(const lang::ActionSet& actions) {
  if (actions.ports.empty()) {
    ++counters_.dropped;
    return {};
  }
  ++counters_.matched;
  if (actions.ports.size() > 1) ++counters_.multicast_frames;
  std::vector<TxCopy> out;
  out.reserve(actions.ports.size());
  for (std::uint16_t p : actions.ports) {
    out.push_back({p});
    ++counters_.tx_copies;
  }
  return out;
}

std::vector<Switch::TxPacket> Switch::process_messages(
    std::span<const std::uint8_t> frame, std::uint64_t now_us) {
  ++counters_.rx_frames;
  auto pkt = proto::decode_market_data_packet(frame);
  if (!pkt || pkt->itch.add_orders.empty()) {
    ++counters_.parse_errors;
    return {};
  }

  // Classify each message and bucket by egress port.
  std::map<std::uint16_t, std::vector<proto::ItchAddOrder>> per_port;
  for (const auto& msg : pkt->itch.add_orders) {
    const auto fields = extractor_.extract(msg);
    const lang::ActionSet& actions = classify(fields, now_us);
    for (std::uint16_t p : actions.ports) per_port[p].push_back(msg);
  }
  if (per_port.empty()) {
    ++counters_.dropped;
    return {};
  }
  ++counters_.matched;
  // Per frame, like process(): the frame is replicated when its messages
  // collectively reach more than one distinct egress port.
  if (per_port.size() > 1) ++counters_.multicast_frames;

  std::vector<TxPacket> out;
  out.reserve(per_port.size());
  for (auto& [port, msgs] : per_port) {
    TxPacket tx;
    tx.port = port;
    tx.frame = proto::encode_market_data_packet(
        pkt->eth, pkt->ip.src, pkt->ip.dst, pkt->itch.mold, msgs,
        pkt->udp.dst_port);
    out.push_back(std::move(tx));
    ++counters_.tx_copies;
  }
  return out;
}

bool Switch::fits(const table::ResourceBudget& budget) const {
  return budget.fits(pipeline_.resources());
}

}  // namespace camus::switchsim
