#include "switchsim/parallel.hpp"

#include <algorithm>
#include <array>

#include "proto/packet.hpp"
#include "util/flat_map.hpp"

namespace camus::switchsim {

using table::CompiledPipeline;

ParallelSwitch::ParallelSwitch(Switch& sw, std::size_t n_threads) : sw_(sw) {
  const std::size_t n = std::max<std::size_t>(1, n_threads);
  workers_ = std::vector<Worker>(n);
  // Worker 0 is the calling thread; only 1..n-1 get OS threads.
  for (std::size_t w = 1; w < n; ++w)
    workers_[w].th = std::thread(&ParallelSwitch::worker_loop, this, w);
}

ParallelSwitch::~ParallelSwitch() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (Worker& w : workers_)
    if (w.th.joinable()) w.th.join();
}

bool ParallelSwitch::eligible() const {
  const auto prog = sw_.pin_program();
  return prog->compiled.valid() && prog->stateless;
}

void ParallelSwitch::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    run_worker(workers_[w]);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelSwitch::run_worker(Worker& wk) {
  const CompiledPipeline& cp = prog_->compiled;
  const std::size_t np = cp.prefix_stages();
  constexpr std::size_t kW = CompiledPipeline::kBlockWidth;
  constexpr std::size_t kP = CompiledPipeline::kMaxPrefix;
  // Stateless program: classification never reads the register file, so
  // an empty states span is exact (subject reads past the span code to 0,
  // and eligibility guarantees no state subjects exist anyway).
  const std::span<const std::uint64_t> no_states{};

  if (np > 0) {
    if (wk.memo.empty()) wk.memo.resize(Switch::kMemoSlots);
    if (wk.memo_sig != prog_->prefix_sig) {
      for (Switch::MemoSlot& s : wk.memo) s.used = false;
      wk.memo_sig = prog_->prefix_sig;
    }
  }
  if (wk.fields.size() < kW) wk.fields.resize(kW);

  // --- classification pass: the worker's messages in blocks of kW ------
  std::array<std::uint64_t, kW * kP> keys{};
  std::array<std::uint32_t, kW> msg_idx;
  std::size_t nblk = 0;

  auto flush = [&](std::size_t n) {
    std::uint32_t post[kW];
    std::uint32_t leaf[kW];
    if (np > 0) {
      // Memo probe for the whole block first; prefix misses then run
      // through the batched/SIMD probe in one lockstep call.
      Switch::MemoSlot* slots[kW];
      std::size_t miss[kW];
      std::size_t n_miss = 0;
      for (std::size_t j = 0; j < n; ++j) {
        std::uint64_t h = 0;
        for (std::size_t i = 0; i < np; ++i)
          h = util::mix64(h ^ keys[j * kP + i]);
        Switch::MemoSlot& slot = wk.memo[h & (Switch::kMemoSlots - 1)];
        slots[j] = &slot;
        ++wk.bstats.memo_probes;
        const bool hit =
            slot.used &&
            std::equal(slot.key.begin(), slot.key.end(), &keys[j * kP]);
        if (hit) {
          post[j] = slot.state;
          ++wk.bstats.memo_hits;
        } else {
          miss[n_miss++] = j;
        }
      }
      if (n_miss > 0) {
        std::uint64_t miss_keys[kW * kP];
        std::uint32_t miss_state[kW];
        for (std::size_t m = 0; m < n_miss; ++m)
          for (std::size_t i = 0; i < kP; ++i)
            miss_keys[m * kP + i] = keys[miss[m] * kP + i];
        cp.run_prefix_block(miss_keys, n_miss, miss_state);
        for (std::size_t m = 0; m < n_miss; ++m) {
          const std::size_t j = miss[m];
          post[j] = miss_state[m];
          for (std::size_t i = 0; i < kP; ++i)
            slots[j]->key[i] = keys[j * kP + i];
          slots[j]->state = post[j];
          slots[j]->used = true;
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        leaf[j] = cp.finish(post[j], wk.fields[j], no_states);
        cp.prefetch_leaf(leaf[j]);
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        leaf[j] = cp.traverse(wk.fields[j], no_states);
        cp.prefetch_leaf(leaf[j]);
      }
    }
    for (std::size_t j = 0; j < n; ++j)
      msg_actions_[msg_idx[j]] = cp.actions(leaf[j]);
  };

  for (const std::uint32_t f : wk.frames) {
    const std::uint8_t* base = frames_[f].data.data();
    for (std::uint32_t i = ranges_[f].first; i < ranges_[f].second; ++i) {
      sw_.extractor_.extract_wire(base + offsets_[i], wk.fields[nblk]);
      if (np > 0) {
        std::uint64_t* row = &keys[nblk * kP];
        for (std::size_t k = 0; k < kP; ++k) row[k] = 0;
        cp.prefix_key(wk.fields[nblk], no_states, row);
      }
      msg_idx[nblk] = i;
      if (++nblk == kW) {
        flush(nblk);
        nblk = 0;
      }
    }
  }
  if (nblk > 0) flush(nblk);

  // --- re-frame pass: same bucketing and emission order as the
  // single-threaded pass 3, accounted into the worker's counter shard.
  for (const std::uint32_t f : wk.frames) {
    for (auto& [port, v] : wk.buckets) v.clear();
    for (std::uint32_t i = ranges_[f].first; i < ranges_[f].second; ++i) {
      const lang::ActionSet* a = msg_actions_[i];
      if (!a) continue;
      for (std::uint16_t p : a->ports) {
        auto it = std::lower_bound(
            wk.buckets.begin(), wk.buckets.end(), p,
            [](const auto& b, std::uint16_t port) { return b.first < port; });
        if (it == wk.buckets.end() || it->first != p)
          it = wk.buckets.emplace(it, p, std::vector<std::uint32_t>{});
        it->second.push_back(i);
      }
    }
    std::size_t nonempty = 0;
    for (const auto& [port, v] : wk.buckets) nonempty += !v.empty();
    Switch::account_frame(wk.counters, nonempty);
    std::vector<Switch::TxPacket>& out = out_by_frame_[f];
    out.clear();
    if (nonempty == 0) continue;
    for (const auto& [port, v] : wk.buckets) {
      if (v.empty()) continue;
      wk.msg_offsets.resize(v.size());
      for (std::size_t k = 0; k < v.size(); ++k)
        wk.msg_offsets[k] = offsets_[v[k]];
      Switch::TxPacket tx;
      tx.port = port;
      proto::build_market_frame_raw(views_[f], frames_[f].data,
                                    wk.msg_offsets, tx.frame);
      out.push_back(std::move(tx));
      ++wk.counters.tx_copies;
    }
  }
}

std::vector<Switch::TxPacket> ParallelSwitch::process_batch(
    std::span<const Switch::Frame> frames) {
  const auto prog = sw_.pin_program();
  if (!prog->compiled.valid() || !prog->stateless) {
    // Graceful degradation: stateful or non-flattenable programs need
    // globally ordered register updates, which only the single-threaded
    // path provides. Still bit-identical — it IS the reference path.
    ++stats_.degraded_batches;
    return sw_.process_batch(frames);
  }
  ++stats_.threaded_batches;

  // Pass 1 (caller thread): zero-copy scan, identical accounting to the
  // single-threaded pass 1 — every frame bumps rx_frames and malformed
  // ones settle as parse_errors before any worker sees the batch.
  views_.resize(frames.size());
  offsets_.clear();
  ranges_.resize(frames.size());
  parsed_.assign(frames.size(), 0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    ++sw_.counters_.rx_frames;
    const auto begin = static_cast<std::uint32_t>(offsets_.size());
    const bool ok =
        proto::scan_market_data_packet(frames[f].data, views_[f], offsets_);
    const auto end = static_cast<std::uint32_t>(offsets_.size());
    if (!ok || begin == end) {
      ++sw_.counters_.parse_errors;
      offsets_.resize(begin);
      ranges_[f] = {begin, begin};
    } else {
      parsed_[f] = 1;
      ranges_[f] = {begin, end};
    }
  }

  // Shard by the leading symbol's hash. Frames stay in ascending batch
  // order inside each shard, preserving per-symbol arrival order.
  const std::size_t nw = workers_.size();
  for (Worker& w : workers_) {
    w.frames.clear();
    w.counters = {};
    w.bstats = {};
  }
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (!parsed_[f]) continue;
    const std::uint64_t sym = ItchFieldExtractor::wire_stock_key(
        frames[f].data.data() + offsets_[ranges_[f].first]);
    workers_[util::mix64(sym) % nw].frames.push_back(
        static_cast<std::uint32_t>(f));
    ++stats_.sharded_frames;
  }

  msg_actions_.assign(offsets_.size(), nullptr);
  if (out_by_frame_.size() < frames.size()) out_by_frame_.resize(frames.size());
  frames_ = frames;
  prog_ = prog.get();

  // Dispatch: workers 1..n-1 wake on the epoch bump; the caller runs
  // worker 0's shard itself, then waits out the barrier.
  if (nw > 1) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_ = nw - 1;
      ++epoch_;
    }
    cv_work_.notify_all();
  }
  run_worker(workers_[0]);
  if (nw > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
  }

  // Merge: counter shards are sums of per-frame outcomes, so the totals
  // equal the sequential run's; egress is re-sequenced in ingress frame
  // order (ports ascending within a frame), matching it byte for byte.
  for (const Worker& w : workers_) {
    sw_.counters_.dropped += w.counters.dropped;
    sw_.counters_.matched += w.counters.matched;
    sw_.counters_.multicast_frames += w.counters.multicast_frames;
    sw_.counters_.tx_copies += w.counters.tx_copies;
    sw_.batch_stats_.memo_probes += w.bstats.memo_probes;
    sw_.batch_stats_.memo_hits += w.bstats.memo_hits;
    stats_.memo_probes += w.bstats.memo_probes;
    stats_.memo_hits += w.bstats.memo_hits;
  }

  std::vector<Switch::TxPacket> out;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (!parsed_[f]) continue;
    for (Switch::TxPacket& tx : out_by_frame_[f])
      out.push_back(std::move(tx));
  }
  return out;
}

}  // namespace camus::switchsim
