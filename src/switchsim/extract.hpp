// Field extraction: builds the Env.fields vector the compiled pipeline
// matches on from a decoded ITCH add-order message, driven by the schema's
// field names (the spec's header declarations are the parser
// configuration, mirroring the paper's static compilation step).
#pragma once

#include <cstdint>
#include <vector>

#include "lang/bound.hpp"
#include "proto/itch.hpp"
#include "spec/schema.hpp"

namespace camus::switchsim {

class ItchFieldExtractor {
 public:
  explicit ItchFieldExtractor(const spec::Schema& schema);

  // Values for every schema field, in field-id order. Field names map to
  // add-order attributes: shares, price, stock (8-byte symbol encoding),
  // side ('B'/'S' byte), timestamp, order_ref, locate. Names with no
  // add-order counterpart read 0.
  std::vector<std::uint64_t> extract(const proto::ItchAddOrder& msg) const;

  // Allocation-free variant for hot loops: resizes `out` to the field
  // count and overwrites it. Bit-identical to extract().
  void extract_into(const proto::ItchAddOrder& msg,
                    std::vector<std::uint64_t>& out) const;

  // Zero-copy variant for the batched fast path: reads straight from a
  // well-formed 36-byte add-order wire block (type byte included) as
  // validated by proto::scan_market_data_packet. Bit-identical to
  // decoding the block and calling extract() on it — in particular the
  // raw 8 stock bytes big-endian equal ItchAddOrder::stock_key(), because
  // the wire symbol field is space-padded exactly like
  // util::encode_symbol's padding.
  void extract_wire(const std::uint8_t* msg,
                    std::vector<std::uint64_t>& out) const;

  std::size_t field_count() const noexcept { return sources_.size(); }

  // Raw big-endian 8-byte stock symbol of a scanned add-order wire block
  // (the same value extract_wire() produces for the "stock" field before
  // masking). This is the RSS sharding key of the multi-core front end:
  // hashing it routes all frames led by one symbol to one worker.
  static std::uint64_t wire_stock_key(const std::uint8_t* msg) noexcept;

 private:
  enum class Source : std::uint8_t {
    kZero,
    kShares,
    kPrice,
    kStock,
    kSide,
    kTimestamp,
    kOrderRef,
    kLocate,
  };
  std::vector<Source> sources_;  // per field id
  std::vector<std::uint64_t> masks_;
};

}  // namespace camus::switchsim
