// Field extraction: builds the Env.fields vector the compiled pipeline
// matches on from a decoded ITCH add-order message, driven by the schema's
// field names (the spec's header declarations are the parser
// configuration, mirroring the paper's static compilation step).
#pragma once

#include <vector>

#include "lang/bound.hpp"
#include "proto/itch.hpp"
#include "spec/schema.hpp"

namespace camus::switchsim {

class ItchFieldExtractor {
 public:
  explicit ItchFieldExtractor(const spec::Schema& schema);

  // Values for every schema field, in field-id order. Field names map to
  // add-order attributes: shares, price, stock (8-byte symbol encoding),
  // side ('B'/'S' byte), timestamp, order_ref, locate. Names with no
  // add-order counterpart read 0.
  std::vector<std::uint64_t> extract(const proto::ItchAddOrder& msg) const;

 private:
  enum class Source : std::uint8_t {
    kZero,
    kShares,
    kPrice,
    kStock,
    kSide,
    kTimestamp,
    kOrderRef,
    kLocate,
  };
  std::vector<Source> sources_;  // per field id
  std::vector<std::uint64_t> masks_;
};

}  // namespace camus::switchsim
