// RSS-style multi-core front end over one Switch: shards ingress frames
// across N worker threads by the hash of each frame's leading stock
// symbol, classifies the shards in parallel through the flattened
// CompiledPipeline (block-probed, per-worker hot-key memo), and
// re-sequences per-port egress deterministically so the output — packet
// order, bytes, and SwitchCounters — is bit-identical to running
// Switch::process_batch on the same frames single-threaded.
//
// Invariants (see DESIGN.md "Multi-core data plane"):
//  - Sharding key: the raw 8-byte symbol of the frame's first add-order,
//    so all frames led by one symbol land on one worker in arrival order
//    (the NIC-RSS analogue of hashing the flow tuple). Messages for
//    other symbols packed behind the leader ride along with the frame.
//  - Eligibility: the pinned program must be flattenable AND stateless
//    (Program::stateless — no state updates, no register subjects).
//    Statelessness makes classification order-independent across
//    messages, which is exactly what licenses out-of-global-order
//    processing; anything else degrades to the single-threaded batched
//    path on the caller thread, bit-identical by construction.
//  - Program pinning: ONE RCU snapshot is pinned per batch and shared by
//    every worker; a concurrent reprogram()/apply_delta() publishes a
//    new generation that the NEXT batch picks up (same guarantee as the
//    single-threaded path, TSAN-exercised).
//  - Memo per worker: each worker owns a private hot-key memo reconciled
//    against the pinned program's prefix signature, so workers never
//    share mutable classification state.
//  - Egress merge: workers emit per-frame packet lists into disjoint
//    slots; the caller concatenates them in ingress frame order (ports
//    sorted within a frame), matching the single-threaded emission order
//    exactly. Counter deltas are per-worker shards summed at the barrier
//    (sums are order-independent, so they equal the sequential counts).
//
// One ParallelSwitch serves one data-plane caller; process_batch is not
// reentrant (the Switch's data plane is single-callered by contract, and
// the pool is its extension).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "switchsim/switch.hpp"

namespace camus::switchsim {

class ParallelSwitch {
 public:
  // Telemetry; like BatchStats, never part of the differential contract.
  struct Stats {
    std::uint64_t threaded_batches = 0;  // dispatched across the pool
    std::uint64_t degraded_batches = 0;  // fell back to sw.process_batch
    std::uint64_t sharded_frames = 0;    // parsed frames routed to workers
    std::uint64_t memo_probes = 0;       // summed over workers
    std::uint64_t memo_hits = 0;
  };

  // Spawns n_threads - 1 worker threads; the calling thread doubles as
  // worker 0 during a batch, so n_threads == 1 runs the whole threaded
  // code path inline (useful for differential tests and for isolating
  // the block-probe speedup from the parallel speedup).
  ParallelSwitch(Switch& sw, std::size_t n_threads);
  ~ParallelSwitch();
  ParallelSwitch(const ParallelSwitch&) = delete;
  ParallelSwitch& operator=(const ParallelSwitch&) = delete;

  // Batched processing, bit-identical to sw.process_batch(frames) —
  // including every SwitchCounters field, which is updated on the
  // underlying Switch.
  std::vector<Switch::TxPacket> process_batch(
      std::span<const Switch::Frame> frames);

  std::size_t threads() const noexcept { return workers_.size(); }
  const Stats& stats() const noexcept { return stats_; }
  // Whether the currently published program is eligible for sharding
  // (flattenable + stateless); ineligible programs degrade gracefully.
  bool eligible() const;

 private:
  struct Worker {
    std::thread th;
    // Caller-filled shard: batch frame indices, ascending (= arrival
    // order, which preserves per-symbol order within the shard).
    std::vector<std::uint32_t> frames;
    // Thread-confined replicas of the Switch's data-plane state.
    std::vector<Switch::MemoSlot> memo;
    std::uint64_t memo_sig = 0;
    SwitchCounters counters;  // per-batch delta, summed at the barrier
    BatchStats bstats;
    // Scratch (capacity persists across batches).
    std::vector<std::vector<std::uint64_t>> fields;  // kBlockWidth rows
    std::vector<std::pair<std::uint16_t, std::vector<std::uint32_t>>>
        buckets;
    std::vector<std::uint32_t> msg_offsets;
  };

  void worker_loop(std::size_t w);
  // Classify + re-frame one worker's shard of the pinned batch.
  void run_worker(Worker& wk);

  Switch& sw_;
  std::vector<Worker> workers_;
  Stats stats_;

  // Batch context shared caller -> workers (written before the epoch
  // bump, read-only during the batch).
  std::span<const Switch::Frame> frames_;
  const Switch::Program* prog_ = nullptr;
  std::vector<proto::MarketDataView> views_;
  std::vector<std::uint32_t> offsets_;  // add-order offsets, all frames
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges_;
  std::vector<unsigned char> parsed_;
  // Disjoint-element writes: workers fill only their own messages/frames.
  std::vector<const lang::ActionSet*> msg_actions_;
  std::vector<std::vector<Switch::TxPacket>> out_by_frame_;

  // Epoch-based dispatch: caller bumps epoch_ under mu_, workers run one
  // batch per epoch, the last finisher signals cv_done_.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace camus::switchsim
