// The programmable-ASIC substitute: a software model of a reconfigurable
// match-action pipeline. Executes the exact table entries the Camus
// compiler emits — parser, per-stage lookups, state registers, multicast
// replication — and audits resource usage against a Tofino-like budget.
//
// Fidelity notes (see DESIGN.md §1): the model is semantically exact with
// respect to the compiled pipeline. It does not model per-packet ASIC
// timing; the network simulator charges a configurable constant pipeline
// latency instead, which is how a real ASIC behaves at line rate.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "proto/packet.hpp"
#include "spec/schema.hpp"
#include "switchsim/extract.hpp"
#include "switchsim/registers.hpp"
#include "table/compiled.hpp"
#include "table/delta.hpp"
#include "table/pipeline.hpp"
#include "util/result.hpp"

namespace camus::switchsim {

class ParallelSwitch;

// Per-switch counters. All frame-granularity counters count ingress
// frames, uniformly across process(), process_generic(),
// process_messages(), process_batch(), and the multi-core front end
// (ParallelSwitch): every received frame increments rx_frames and then
// exactly one of parse_errors, dropped, or matched. tx_copies and
// state_updates are event counters, not frame counters.
//
// multicast_frames semantics (one definition, shared by every path via
// Switch::account_frame): a frame is multicast when it is replicated to
// MORE THAN ONE DISTINCT egress port — for the single-classification
// paths that is the matched ActionSet's (sorted, unique) port list; for
// the message-level paths it is the union of ports over the frame's
// matched messages. It is counted per ingress frame, never per message
// and never per egress copy, so a frame whose every message is unicast
// to the same port is NOT multicast, while a frame whose messages are
// individually unicast to two different ports IS. The accounting lives
// in one helper precisely so the per-frame, per-message, batched, and
// sharded paths cannot drift apart again (they historically did; the
// per-frame-vs-batched differential in tests/test_counters.cpp pins the
// unified semantics).
struct SwitchCounters {
  // Ingress frames offered to the switch (parseable or not).
  std::uint64_t rx_frames = 0;
  // Frames the parser rejected (malformed, or no classifiable message).
  std::uint64_t parse_errors = 0;
  // Parsed frames that matched no subscription: nothing was forwarded.
  // For process_messages() this means every message in the frame missed.
  std::uint64_t dropped = 0;
  // Parsed frames forwarded to >= 1 egress port. For process_messages(),
  // a frame counts once if any of its messages matched.
  std::uint64_t matched = 0;
  // Total egress copies emitted. One per (frame, port) pair; for
  // process_messages() one per re-framed per-port packet.
  std::uint64_t tx_copies = 0;
  // Ingress frames replicated to > 1 distinct egress port. Always
  // <= matched; counted per frame, never per message.
  std::uint64_t multicast_frames = 0;
  // Register write-backs performed by matched messages' state updates.
  std::uint64_t state_updates = 0;
};

// Fast-path-only telemetry for process_batch(). Kept separate from
// SwitchCounters so the batched path's counters stay bit-identical to the
// per-frame reference path.
struct BatchStats {
  std::uint64_t memo_probes = 0;  // hot-key memo lookups attempted
  std::uint64_t memo_hits = 0;    // lookups answered from the memo
};

class Switch {
 public:
  // Takes ownership of the pipeline and a copy of the schema: the switch
  // is self-contained and safe to move or outlive its controller. The
  // pipeline is finalized here (idempotent) so the per-packet lookup path
  // never hits the lazy index build.
  Switch(spec::Schema schema, table::Pipeline pipeline);

  // Builds a broadcast "switch" that forwards every parseable frame to the
  // given ports — the paper's baseline configuration, where filtering
  // happens at the end hosts.
  static Switch make_broadcast(spec::Schema schema,
                               std::vector<std::uint16_t> ports);

  struct TxCopy {
    std::uint16_t port = 0;
  };

  // Processes one ingress frame at time now_us. Returns the egress ports
  // the frame is replicated to (the frame bytes are unmodified). A packet
  // carrying several ITCH messages is classified on its first add-order,
  // matching the prototype's parser, which extracts one application header.
  std::vector<TxCopy> process(std::span<const std::uint8_t> frame,
                              std::uint64_t now_us);

  // Classifies pre-extracted field values (fast path for benchmarks that
  // skip wire encoding).
  const lang::ActionSet& classify(const std::vector<std::uint64_t>& fields,
                                  std::uint64_t now_us);

  struct TxPacket {
    std::uint16_t port = 0;
    std::vector<std::uint8_t> frame;
  };

  // Custom-format path: parses the frame as a generic bit-packed record of
  // the schema's fields (proto::encode_generic_packet framing) and
  // classifies it. This is how non-ITCH applications (identifier routing,
  // load balancing, key-value request steering) run real frames through
  // the switch.
  std::vector<TxCopy> process_generic(std::span<const std::uint8_t> frame,
                                      std::uint64_t now_us);

  // Message-level forwarding: classifies every ITCH message in the packet
  // independently and re-frames per egress port, so each subscriber
  // receives a packet containing exactly its matching messages (with the
  // original MoldUDP session and sequence number). State updates fire per
  // matching message. Packets whose messages all miss produce no output.
  std::vector<TxPacket> process_messages(std::span<const std::uint8_t> frame,
                                         std::uint64_t now_us);

  // One ingress frame in a batch. `data` must stay alive for the duration
  // of the process_batch() call.
  struct Frame {
    std::span<const std::uint8_t> data;
    std::uint64_t now_us = 0;
  };

  // Batched equivalent of calling process_messages() on every frame in
  // order and concatenating the results. Bit-identical output and
  // SwitchCounters (differential-tested), but amortized: frames are
  // scanned zero-copy (no payload vector, no per-message structs for
  // dropped traffic), classification runs through the flattened
  // CompiledPipeline with a hot-key memo over the leading exact stages,
  // register snapshots are cached across messages, and only matched
  // messages are decoded for re-framing.
  std::vector<TxPacket> process_batch(std::span<const Frame> frames);

  const SwitchCounters& counters() const noexcept { return counters_; }
  const BatchStats& batch_stats() const noexcept { return batch_stats_; }
  // References into the current program snapshot: valid until the calling
  // thread's next process*/classify/reprogram/apply_delta call observes a
  // newer program (the snapshot itself is kept alive until then).
  const table::CompiledPipeline& compiled() const {
    return current().compiled;
  }
  const table::Pipeline& pipeline() const { return current().pipeline; }
  StateRegisters& registers() noexcept { return registers_; }

  // Installs a recompiled pipeline (e.g. from the incremental compiler)
  // without disturbing registers or counters — the runtime analogue of a
  // control-plane table update. The replacement program (finalized
  // pipeline + rebuilt flattened fast path) is built off to the side and
  // published with an atomic version bump: a concurrently running
  // process_batch() keeps reading its complete old snapshot and picks the
  // new one up at its next call (RCU-style; TSAN-exercised in
  // tests/test_concurrent_lookup.cpp). The hot-key memo survives the swap
  // when the new program's prefix stages are bit-identical (see
  // CompiledPipeline::prefix_signature); otherwise it is invalidated on
  // the data-plane thread, never from the updater.
  void reprogram(table::Pipeline pipeline);

  // Patches the running program in place with a control-plane entry delta
  // — how a real ASIC takes incremental table updates from its driver.
  // The delta is applied to a scratch copy of the current pipeline
  // (strict U0xx diagnostics on any desync; the running program is
  // untouched on error), lowered, and published exactly like
  // reprogram(). Registers, counters, and the memo (prefix permitting)
  // are preserved.
  util::Result<table::ApplyStats> apply_delta(
      std::span<const table::EntryOp> ops);

  // Monotone program version, bumped by every successful
  // reprogram()/apply_delta(). Readers can poll it cheaply.
  std::uint64_t program_version() const noexcept {
    return slot_->version.load(std::memory_order_acquire);
  }

  // --- epoch fencing (crash-safe control plane) ---------------------------
  //
  // A controller stamps every program write with its epoch — a monotonic
  // counter it persists in its journal and bumps on every restart. The
  // switch stores the highest epoch it has accepted and rejects writes
  // from any lower epoch, so a crashed controller's delayed or retried
  // messages can never clobber its successor's installs (the classic
  // fencing-token discipline). Unfenced reprogram()/apply_delta() remain
  // for tests and single-controller tools; production paths (the
  // installer) always go through the fenced variants.

  // Raises the fence to `epoch` without writing a program — how a freshly
  // recovered controller locks out its predecessor before reconciling.
  // Idempotent for equal epochs. E141 if `epoch` is below the current
  // fence (a stale controller trying to attach).
  util::Result<std::uint64_t> fence(std::uint64_t epoch);

  // Fenced variants of reprogram()/apply_delta(): the write is accepted
  // only if `epoch` >= the switch's fence (and the fence is raised to
  // `epoch`). A stale epoch is rejected with E140, counted in
  // stale_epoch_rejects(), and leaves the running program untouched.
  // reprogram_fenced returns the new program version on success.
  util::Result<std::uint64_t> reprogram_fenced(std::uint64_t epoch,
                                               table::Pipeline pipeline);
  util::Result<table::ApplyStats> apply_delta_fenced(
      std::uint64_t epoch, std::span<const table::EntryOp> ops);

  // The highest controller epoch this switch has accepted (0 = never
  // fenced) and the number of writes rejected as stale.
  std::uint64_t fence_epoch() const noexcept {
    return slot_->fence_epoch.load(std::memory_order_acquire);
  }
  std::uint64_t stale_epoch_rejects() const noexcept {
    return slot_->stale_epoch_rejects.load(std::memory_order_acquire);
  }

  // --- warm-boot readback -------------------------------------------------
  //
  // What a rebooted switch reports during the reconciliation handshake:
  // order-independent per-stage digests of the program it is running
  // (table::stage_digests semantics — multicast ids and entry order
  // excluded). The controller diffs these against its intended program's
  // digests to find diverged stages without reading any entries. Both are
  // safe from any thread (they pin the published program; the data-plane
  // snapshot cache is not touched).
  std::vector<table::StageDigest> stage_digests() const;
  std::uint64_t program_digest() const;

  // Thread-safe copy of the running program's pipeline — for controller
  // resync after a switch reboot. Unlike pipeline(), never touches the
  // data-plane snapshot cache, so it can run while the data plane is
  // processing.
  table::Pipeline pipeline_snapshot() const {
    return pin_program()->pipeline;
  }

  // Resource audit: whether the compiled pipeline fits the budget.
  bool fits(const table::ResourceBudget& budget = {}) const;
  table::ResourceUsage resources() const {
    return current().pipeline.resources();
  }

 private:
  // The multi-core front end (parallel.hpp) shares the program slot, the
  // memo layout, and the counter accounting, but keeps its own per-worker
  // replicas of all data-plane-confined state.
  friend class ParallelSwitch;

  // One immutable generation of the switch's program: the IR pipeline
  // (reference path + delta base) and its flattened fast path. Readers
  // hold a shared_ptr snapshot; updaters publish a wholly new Program.
  struct Program {
    std::uint64_t version = 0;
    table::Pipeline pipeline;
    table::CompiledPipeline compiled;
    // Cached compiled.prefix_signature(): the per-message memo
    // reconciliation check must be O(1), not a rehash of the prefix.
    std::uint64_t prefix_sig = 0;
    // True when classification can never touch the register file: no
    // leaf ActionSet carries state updates and no table or value map
    // matches on a state subject. Such a program is order-independent
    // across messages, which is what licenses the sharded multi-core
    // front end (ParallelSwitch) to classify frames out of global order.
    bool stateless = false;
  };
  // Shared forwarding tail of process()/process_generic(): bumps
  // dropped/matched/multicast_frames/tx_copies and emits one TxCopy per
  // egress port.
  std::vector<TxCopy> forward(const lang::ActionSet& actions);

  // THE frame-outcome accounting, shared by every processing path:
  // `distinct_ports` is the number of distinct egress ports the frame is
  // replicated to (0 = dropped). Bumps exactly one of dropped/matched
  // and multicast_frames per the counters comment block above. tx_copies
  // is charged separately, one per emitted copy. The static overload
  // lets ParallelSwitch workers account into thread-local counter shards
  // with the same single definition.
  static void account_frame(SwitchCounters& c, std::size_t distinct_ports) {
    if (distinct_ports == 0) {
      ++c.dropped;
      return;
    }
    ++c.matched;
    if (distinct_ports > 1) ++c.multicast_frames;
  }
  void account_frame(std::size_t distinct_ports) {
    account_frame(counters_, distinct_ports);
  }

  // Pins the currently published program without touching the
  // data-plane-confined cache (cur_) — safe from any thread; used by the
  // multi-core front end to pin one snapshot per batch.
  std::shared_ptr<const Program> pin_program() const {
    const std::lock_guard<std::mutex> lock(slot_->mu);
    return slot_->published;
  }

  // Batch-path classification: returns the matched ActionSet (nullptr on
  // drop) and applies state updates, bit-identical to classify() but
  // allocation-free — cached register snapshot, flattened traversal with
  // hot-key memo, Pipeline::evaluate fallback when the pipeline could not
  // be flattened. Takes the program explicitly: the caller pins ONE
  // snapshot for its whole batch, because the returned pointer aims into
  // that program's interned actions — re-reading current_data_plane() per
  // message could adopt a newer program mid-batch and free the old one
  // while earlier messages' ActionSet pointers are still queued.
  const lang::ActionSet* classify_fast(const Program& prog,
                                       const std::vector<std::uint64_t>& fields,
                                       std::uint64_t now_us);
  // Refreshes snap_ if the register file or timestamp moved.
  void refresh_snapshot(std::uint64_t now_us);

  // Direct-mapped hot-key memo: (prefix key values) -> state after the
  // leading exact stages. Purely a function of the key, so a stale entry
  // cannot exist — only reprogram() must clear it.
  struct MemoSlot {
    std::array<std::uint64_t, table::CompiledPipeline::kMaxPrefix> key{};
    std::uint32_t state = 0;
    bool used = false;
  };
  static constexpr std::size_t kMemoSlots = 4096;  // power of two

  // Published-program slot, shared between the data-plane reader and
  // control-plane updaters. Behind a unique_ptr so the Switch stays
  // movable (mutex/atomic are not) and the slot address is stable.
  struct ProgramSlot {
    std::mutex mu;
    std::shared_ptr<const Program> published;  // guarded by mu
    std::atomic<std::uint64_t> version{0};     // == published->version
    // Fencing state (atomics so accessors need no lock; writes happen
    // under mu so check-and-raise is atomic w.r.t. program publication).
    std::atomic<std::uint64_t> fence_epoch{0};
    std::atomic<std::uint64_t> stale_epoch_rejects{0};
  };

  // Builds a Program (finalize + flatten) and swaps it in as the newest
  // generation.
  static std::shared_ptr<Program> make_program(table::Pipeline pipeline);
  void publish(table::Pipeline pipeline);

  // Returns the calling thread's current program snapshot, refreshing the
  // thread-confined cache from the slot when the version moved. The const
  // overload is for accessors; data-plane entry points use the non-const
  // overload, which also reconciles the hot-key memo with the (possibly
  // new) program.
  const Program& current() const;
  const Program& current_data_plane();

  // shared_ptr gives the schema a stable address across Switch moves (the
  // extractor and register file hold references into it).
  std::shared_ptr<const spec::Schema> schema_;
  std::unique_ptr<ProgramSlot> slot_;
  // Data-plane-confined cache of the published program. Mutable so const
  // accessors can refresh it; never touched concurrently (the data plane
  // is single-threaded; updaters only touch slot_).
  mutable std::shared_ptr<const Program> cur_;
  // Prefix signature the memo contents were computed under.
  std::uint64_t memo_sig_ = 0;
  ItchFieldExtractor extractor_;
  StateRegisters registers_;
  SwitchCounters counters_;
  BatchStats batch_stats_;

  std::vector<MemoSlot> memo_;

  // Scratch state reused across process_batch() calls (capacity persists).
  bool snap_valid_ = false;
  std::uint64_t snap_version_ = 0;
  std::uint64_t snap_now_us_ = 0;
  std::vector<std::uint64_t> snap_;
  std::vector<std::uint64_t> fields_scratch_;
  std::vector<std::uint32_t> offsets_;  // add-order offsets, all frames
  std::vector<const lang::ActionSet*> msg_actions_;  // parallel to offsets_
  std::vector<proto::MarketDataView> views_;
  std::vector<std::pair<std::uint16_t, std::vector<std::uint32_t>>> buckets_;
  std::vector<std::uint32_t> msg_offsets_scratch_;
  lang::Env env_scratch_;  // fallback path only
};

}  // namespace camus::switchsim
