// The programmable-ASIC substitute: a software model of a reconfigurable
// match-action pipeline. Executes the exact table entries the Camus
// compiler emits — parser, per-stage lookups, state registers, multicast
// replication — and audits resource usage against a Tofino-like budget.
//
// Fidelity notes (see DESIGN.md §1): the model is semantically exact with
// respect to the compiled pipeline. It does not model per-packet ASIC
// timing; the network simulator charges a configurable constant pipeline
// latency instead, which is how a real ASIC behaves at line rate.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "proto/packet.hpp"
#include "spec/schema.hpp"
#include "switchsim/extract.hpp"
#include "switchsim/registers.hpp"
#include "table/compiled.hpp"
#include "table/pipeline.hpp"

namespace camus::switchsim {

// Per-switch counters. All frame-granularity counters count ingress
// frames, uniformly across process(), process_generic(), and
// process_messages(): every received frame increments rx_frames and then
// exactly one of parse_errors, dropped, or matched. tx_copies and
// state_updates are event counters, not frame counters.
struct SwitchCounters {
  // Ingress frames offered to the switch (parseable or not).
  std::uint64_t rx_frames = 0;
  // Frames the parser rejected (malformed, or no classifiable message).
  std::uint64_t parse_errors = 0;
  // Parsed frames that matched no subscription: nothing was forwarded.
  // For process_messages() this means every message in the frame missed.
  std::uint64_t dropped = 0;
  // Parsed frames forwarded to >= 1 egress port. For process_messages(),
  // a frame counts once if any of its messages matched.
  std::uint64_t matched = 0;
  // Total egress copies emitted. One per (frame, port) pair; for
  // process_messages() one per re-framed per-port packet.
  std::uint64_t tx_copies = 0;
  // Ingress frames replicated to > 1 distinct egress port. Always
  // <= matched; counted per frame, never per message.
  std::uint64_t multicast_frames = 0;
  // Register write-backs performed by matched messages' state updates.
  std::uint64_t state_updates = 0;
};

// Fast-path-only telemetry for process_batch(). Kept separate from
// SwitchCounters so the batched path's counters stay bit-identical to the
// per-frame reference path.
struct BatchStats {
  std::uint64_t memo_probes = 0;  // hot-key memo lookups attempted
  std::uint64_t memo_hits = 0;    // lookups answered from the memo
};

class Switch {
 public:
  // Takes ownership of the pipeline and a copy of the schema: the switch
  // is self-contained and safe to move or outlive its controller. The
  // pipeline is finalized here (idempotent) so the per-packet lookup path
  // never hits the lazy index build.
  Switch(spec::Schema schema, table::Pipeline pipeline);

  // Builds a broadcast "switch" that forwards every parseable frame to the
  // given ports — the paper's baseline configuration, where filtering
  // happens at the end hosts.
  static Switch make_broadcast(spec::Schema schema,
                               std::vector<std::uint16_t> ports);

  struct TxCopy {
    std::uint16_t port = 0;
  };

  // Processes one ingress frame at time now_us. Returns the egress ports
  // the frame is replicated to (the frame bytes are unmodified). A packet
  // carrying several ITCH messages is classified on its first add-order,
  // matching the prototype's parser, which extracts one application header.
  std::vector<TxCopy> process(std::span<const std::uint8_t> frame,
                              std::uint64_t now_us);

  // Classifies pre-extracted field values (fast path for benchmarks that
  // skip wire encoding).
  const lang::ActionSet& classify(const std::vector<std::uint64_t>& fields,
                                  std::uint64_t now_us);

  struct TxPacket {
    std::uint16_t port = 0;
    std::vector<std::uint8_t> frame;
  };

  // Custom-format path: parses the frame as a generic bit-packed record of
  // the schema's fields (proto::encode_generic_packet framing) and
  // classifies it. This is how non-ITCH applications (identifier routing,
  // load balancing, key-value request steering) run real frames through
  // the switch.
  std::vector<TxCopy> process_generic(std::span<const std::uint8_t> frame,
                                      std::uint64_t now_us);

  // Message-level forwarding: classifies every ITCH message in the packet
  // independently and re-frames per egress port, so each subscriber
  // receives a packet containing exactly its matching messages (with the
  // original MoldUDP session and sequence number). State updates fire per
  // matching message. Packets whose messages all miss produce no output.
  std::vector<TxPacket> process_messages(std::span<const std::uint8_t> frame,
                                         std::uint64_t now_us);

  // One ingress frame in a batch. `data` must stay alive for the duration
  // of the process_batch() call.
  struct Frame {
    std::span<const std::uint8_t> data;
    std::uint64_t now_us = 0;
  };

  // Batched equivalent of calling process_messages() on every frame in
  // order and concatenating the results. Bit-identical output and
  // SwitchCounters (differential-tested), but amortized: frames are
  // scanned zero-copy (no payload vector, no per-message structs for
  // dropped traffic), classification runs through the flattened
  // CompiledPipeline with a hot-key memo over the leading exact stages,
  // register snapshots are cached across messages, and only matched
  // messages are decoded for re-framing.
  std::vector<TxPacket> process_batch(std::span<const Frame> frames);

  const SwitchCounters& counters() const noexcept { return counters_; }
  const BatchStats& batch_stats() const noexcept { return batch_stats_; }
  const table::CompiledPipeline& compiled() const noexcept {
    return compiled_;
  }
  const table::Pipeline& pipeline() const noexcept { return pipeline_; }
  StateRegisters& registers() noexcept { return registers_; }

  // Installs a recompiled pipeline (e.g. from the incremental compiler)
  // without disturbing registers or counters — the runtime analogue of a
  // control-plane table update. Finalizes the new pipeline up front, like
  // the constructor, rebuilds the flattened fast-path structure, and
  // invalidates the hot-key memo (its cached prefix outcomes belong to the
  // old tables).
  void reprogram(table::Pipeline pipeline);

  // Resource audit: whether the compiled pipeline fits the budget.
  bool fits(const table::ResourceBudget& budget = {}) const;
  table::ResourceUsage resources() const { return pipeline_.resources(); }

 private:
  // Shared forwarding tail of process()/process_generic(): bumps
  // dropped/matched/multicast_frames/tx_copies and emits one TxCopy per
  // egress port.
  std::vector<TxCopy> forward(const lang::ActionSet& actions);

  // Batch-path classification: returns the matched ActionSet (nullptr on
  // drop) and applies state updates, bit-identical to classify() but
  // allocation-free — cached register snapshot, flattened traversal with
  // hot-key memo, Pipeline::evaluate fallback when the pipeline could not
  // be flattened.
  const lang::ActionSet* classify_fast(const std::vector<std::uint64_t>& fields,
                                       std::uint64_t now_us);
  // Refreshes snap_ if the register file or timestamp moved.
  void refresh_snapshot(std::uint64_t now_us);

  // Direct-mapped hot-key memo: (prefix key values) -> state after the
  // leading exact stages. Purely a function of the key, so a stale entry
  // cannot exist — only reprogram() must clear it.
  struct MemoSlot {
    std::array<std::uint64_t, table::CompiledPipeline::kMaxPrefix> key{};
    std::uint32_t state = 0;
    bool used = false;
  };
  static constexpr std::size_t kMemoSlots = 4096;  // power of two

  // shared_ptr gives the schema a stable address across Switch moves (the
  // extractor and register file hold references into it).
  std::shared_ptr<const spec::Schema> schema_;
  table::Pipeline pipeline_;
  table::CompiledPipeline compiled_;
  ItchFieldExtractor extractor_;
  StateRegisters registers_;
  SwitchCounters counters_;
  BatchStats batch_stats_;

  std::vector<MemoSlot> memo_;

  // Scratch state reused across process_batch() calls (capacity persists).
  bool snap_valid_ = false;
  std::uint64_t snap_version_ = 0;
  std::uint64_t snap_now_us_ = 0;
  std::vector<std::uint64_t> snap_;
  std::vector<std::uint64_t> fields_scratch_;
  std::vector<std::uint32_t> offsets_;  // add-order offsets, all frames
  std::vector<const lang::ActionSet*> msg_actions_;  // parallel to offsets_
  std::vector<proto::MarketDataView> views_;
  std::vector<std::pair<std::uint16_t, std::vector<std::uint32_t>>> buckets_;
  std::vector<std::uint32_t> msg_offsets_scratch_;
  lang::Env env_scratch_;  // fallback path only
};

}  // namespace camus::switchsim
