#include "switchsim/extract.hpp"

namespace camus::switchsim {

namespace {

// Big-endian field offsets inside the 36-byte add-order wire block:
// type(1) locate(2) tracking(2) timestamp(6) order_ref(8) side(1)
// shares(4) stock(8) price(4).
inline constexpr std::size_t kOffLocate = 1;
inline constexpr std::size_t kOffTimestamp = 5;
inline constexpr std::size_t kOffOrderRef = 11;
inline constexpr std::size_t kOffSide = 19;
inline constexpr std::size_t kOffShares = 20;
inline constexpr std::size_t kOffStock = 24;
inline constexpr std::size_t kOffPrice = 32;

inline std::uint64_t read_be(const std::uint8_t* p, unsigned n) noexcept {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < n; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

ItchFieldExtractor::ItchFieldExtractor(const spec::Schema& schema) {
  sources_.reserve(schema.fields().size());
  masks_.reserve(schema.fields().size());
  for (const auto& f : schema.fields()) {
    Source s = Source::kZero;
    if (f.name == "shares") s = Source::kShares;
    else if (f.name == "price") s = Source::kPrice;
    else if (f.name == "stock") s = Source::kStock;
    else if (f.name == "side") s = Source::kSide;
    else if (f.name == "timestamp") s = Source::kTimestamp;
    else if (f.name == "order_ref") s = Source::kOrderRef;
    else if (f.name == "locate" || f.name == "stock_locate")
      s = Source::kLocate;
    sources_.push_back(s);
    masks_.push_back(f.umax());
  }
}

std::vector<std::uint64_t> ItchFieldExtractor::extract(
    const proto::ItchAddOrder& msg) const {
  std::vector<std::uint64_t> out;
  extract_into(msg, out);
  return out;
}

void ItchFieldExtractor::extract_into(const proto::ItchAddOrder& msg,
                                      std::vector<std::uint64_t>& out) const {
  out.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    std::uint64_t v = 0;
    switch (sources_[i]) {
      case Source::kZero: break;
      case Source::kShares: v = msg.shares; break;
      case Source::kPrice: v = msg.price; break;
      case Source::kStock: v = msg.stock_key(); break;
      case Source::kSide: v = static_cast<std::uint64_t>(msg.side); break;
      case Source::kTimestamp: v = msg.timestamp_ns; break;
      case Source::kOrderRef: v = msg.order_ref; break;
      case Source::kLocate: v = msg.stock_locate; break;
    }
    out[i] = v & masks_[i];
  }
}

std::uint64_t ItchFieldExtractor::wire_stock_key(
    const std::uint8_t* msg) noexcept {
  return read_be(msg + kOffStock, 8);
}

void ItchFieldExtractor::extract_wire(const std::uint8_t* msg,
                                      std::vector<std::uint64_t>& out) const {
  out.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    std::uint64_t v = 0;
    switch (sources_[i]) {
      case Source::kZero: break;
      case Source::kShares: v = read_be(msg + kOffShares, 4); break;
      case Source::kPrice: v = read_be(msg + kOffPrice, 4); break;
      case Source::kStock: v = read_be(msg + kOffStock, 8); break;
      case Source::kSide: v = msg[kOffSide]; break;
      case Source::kTimestamp:
        // decode masks the 48-bit timestamp on the way in; the wire field
        // is 6 bytes, so the masked read matches.
        v = read_be(msg + kOffTimestamp, 6);
        break;
      case Source::kOrderRef: v = read_be(msg + kOffOrderRef, 8); break;
      case Source::kLocate: v = read_be(msg + kOffLocate, 2); break;
    }
    out[i] = v & masks_[i];
  }
}

}  // namespace camus::switchsim
