#include "switchsim/extract.hpp"

namespace camus::switchsim {

ItchFieldExtractor::ItchFieldExtractor(const spec::Schema& schema) {
  sources_.reserve(schema.fields().size());
  masks_.reserve(schema.fields().size());
  for (const auto& f : schema.fields()) {
    Source s = Source::kZero;
    if (f.name == "shares") s = Source::kShares;
    else if (f.name == "price") s = Source::kPrice;
    else if (f.name == "stock") s = Source::kStock;
    else if (f.name == "side") s = Source::kSide;
    else if (f.name == "timestamp") s = Source::kTimestamp;
    else if (f.name == "order_ref") s = Source::kOrderRef;
    else if (f.name == "locate" || f.name == "stock_locate")
      s = Source::kLocate;
    sources_.push_back(s);
    masks_.push_back(f.umax());
  }
}

std::vector<std::uint64_t> ItchFieldExtractor::extract(
    const proto::ItchAddOrder& msg) const {
  std::vector<std::uint64_t> out(sources_.size(), 0);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    std::uint64_t v = 0;
    switch (sources_[i]) {
      case Source::kZero: break;
      case Source::kShares: v = msg.shares; break;
      case Source::kPrice: v = msg.price; break;
      case Source::kStock: v = msg.stock_key(); break;
      case Source::kSide: v = static_cast<std::uint64_t>(msg.side); break;
      case Source::kTimestamp: v = msg.timestamp_ns; break;
      case Source::kOrderRef: v = msg.order_ref; break;
      case Source::kLocate: v = msg.stock_locate; break;
    }
    out[i] = v & masks_[i];
  }
  return out;
}

}  // namespace camus::switchsim
