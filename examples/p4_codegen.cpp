// Static + dynamic compilation artifacts: emits the P4 program and the
// control-plane rule set for a subscription workload — what you would hand
// to the P4 toolchain and the switch driver on real hardware (Figure 6's
// two compiler outputs).
//
//   $ ./p4_codegen                 # built-in ITCH demo, print to stdout
//   $ ./p4_codegen spec.p4 rules.txt out_dir/
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "compiler/compile.hpp"
#include "compiler/p4gen.hpp"
#include "spec/itch_spec.hpp"
#include "spec/spec_parser.hpp"

using namespace camus;

namespace {

constexpr std::string_view kDemoRules = R"(
stock == GOOGL : fwd(1)
stock == AAPL and price > 2000000 : fwd(2)
stock == MSFT and shares > 500 : fwd(1); fwd(3)
price > 50000000 : fwd(4); update(my_counter)
)";

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  spec::Schema schema;
  std::string rules_text{kDemoRules};

  if (argc >= 3) {
    auto parsed = spec::parse_spec(slurp(argv[1]));
    if (!parsed.ok()) {
      std::cerr << "spec error: " << parsed.error().to_string() << "\n";
      return 1;
    }
    schema = std::move(parsed).take();
    rules_text = slurp(argv[2]);
  } else {
    schema = spec::make_itch_schema();
  }

  auto compiled = compiler::compile_source(schema, rules_text);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.error().to_string() << "\n";
    return 1;
  }

  const std::string p4 =
      compiler::generate_p4(schema, &compiled.value().pipeline);
  const std::string cp =
      compiler::generate_control_plane_rules(compiled.value().pipeline);

  if (argc >= 4) {
    const std::filesystem::path dir(argv[3]);
    std::filesystem::create_directories(dir);
    std::ofstream(dir / "camus.p4") << p4;
    std::ofstream(dir / "control_plane.txt") << cp;
    std::cout << "wrote " << (dir / "camus.p4") << " and "
              << (dir / "control_plane.txt") << "\n";
  } else {
    std::cout << "// ======== static step: P4 program ========\n"
              << p4
              << "\n// ======== dynamic step: control-plane rules ========\n"
              << cp;
  }
  std::cout << "\n// " << compiled.value().stats.to_string() << "\n";
  return 0;
}
