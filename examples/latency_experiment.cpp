// Miniature Figure 7: end-to-end latency of watched-symbol messages with
// switch filtering (Camus) vs host filtering (baseline), on a bursty
// Nasdaq-style trace.
//
//   $ ./latency_experiment [n_messages]   # default 200000
#include <cstdlib>
#include <iostream>

#include "netsim/market_experiment.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"

using namespace camus;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200000;

  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n;
  fp.watched_fraction = 0.005;
  fp.rate_msgs_per_sec = 150000;
  fp.burst_factor = 3.0;
  fp.burst_on_ms = 1.2;
  fp.burst_off_ms = 8.0;
  const auto feed = workload::generate_feed(fp);
  std::cout << "Feed: " << feed.messages.size() << " messages, "
            << feed.watched_count << " for GOOGL ("
            << util::TextTable::fmt(
                   100.0 * feed.watched_count / feed.messages.size(), 2)
            << "%)\n\n";

  util::TextTable table(
      {"config", "p50 (us)", "p99 (us)", "p99.5 (us)", "max (us)"});

  for (int cfg = 0; cfg < 2; ++cfg) {
    netsim::MarketExperimentParams mp;
    mp.mode = cfg == 0 ? netsim::FilterMode::kSwitchFilter
                       : netsim::FilterMode::kHostFilter;
    // Calibrated to the paper's testbed regime: the host's per-message
    // software filtering cost makes the broadcast feed overrun the CPU
    // during bursts (450K msg/s x 2.8us = 1.26 utilization).
    mp.host_filter_cost_us = 2.0;
    mp.deliver_cost_us = 0.8;
    auto schema = spec::make_itch_schema();
    switchsim::Switch sw = [&] {
      if (cfg == 0) {
        pubsub::Controller ctl(spec::make_itch_schema());
        auto ok = ctl.subscribe(1, "stock == GOOGL");
        if (!ok.ok()) std::exit(1);
        auto s = ctl.build_switch();
        if (!s.ok()) std::exit(1);
        return std::move(s).take();
      }
      return switchsim::Switch::make_broadcast(schema, {1});
    }();

    const auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
    table.add_row({cfg == 0 ? "Camus (switch filter)" : "Baseline (host)",
                   util::TextTable::fmt(res.latency_us.quantile(0.5), 1),
                   util::TextTable::fmt(res.latency_us.quantile(0.99), 1),
                   util::TextTable::fmt(res.latency_us.quantile(0.995), 1),
                   util::TextTable::fmt(res.latency_us.max(), 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nSwitch filtering removes the host-side queueing that "
               "builds up when the\nfull feed is broadcast during bursts "
               "(paper Figure 7a).\n";
  return 0;
}
