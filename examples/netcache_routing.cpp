// Content-identifier routing for in-network caching (paper §4: "Packet
// subscriptions would also be a useful abstraction for in-network caching,
// which routes based on content identifier (e.g., NetCache)").
//
// Reads for hot keys are steered to the rack's cache node; everything else
// goes to the storage servers, sharded by key range. The "everything
// else" rule shows negation compiling into the wildcard fallback rows, and
// hot-set changes use the incremental compiler.
#include <iostream>

#include "compiler/incremental.hpp"
#include "spec/spec_parser.hpp"
#include "util/stats.hpp"

using namespace camus;

namespace {

constexpr std::string_view kKvSpec = R"(
header_type kv_request_t {
    fields {
        op: 8;        // 1 = read, 2 = write
        key: 64;
    }
}
header kv_request_t kv;
@query_field_exact(kv.op)
@query_field(kv.key)
)";

constexpr std::uint16_t kCachePort = 9;

}  // namespace

int main() {
  auto schema = spec::parse_spec(kKvSpec);
  if (!schema.ok()) {
    std::cerr << schema.error().to_string() << "\n";
    return 1;
  }
  compiler::IncrementalCompiler inc(schema.value());

  // Storage shards by key range (two shards here), writes bypass the
  // cache, and the current hot set is pinned to the cache node.
  auto must = [&](std::string_view rule) {
    auto r = inc.add_source(rule);
    if (!r.ok()) {
      std::cerr << "rule failed: " << r.error().to_string() << "\n";
      std::exit(1);
    }
    return r.value();
  };

  const auto hot1 = must("op == 1 and key == 1001 : fwd(9)");
  must("op == 1 and key == 2002 : fwd(9)");
  // Cold reads and all writes go to storage, sharded by key.
  auto cold1 = must("!(key == 1001 or key == 2002) and key < 5000 : fwd(1)");
  auto cold2 = must("!(key == 1001 or key == 2002) and key >= 5000 : fwd(2)");
  must("op == 2 and (key == 1001 or key == 2002) : fwd(1); fwd(9)");

  auto first = inc.commit();
  if (!first.ok()) {
    std::cerr << first.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Compiled key-routing pipeline (" << first.value().total_entries
            << " entries):\n\n"
            << inc.pipeline().value()->to_string() << "\n";

  auto route = [&](std::uint64_t op, std::uint64_t key) {
    lang::Env env;
    env.fields = {op, key};
    std::cout << "  " << (op == 1 ? "read " : "write") << " key " << key
              << " -> " << inc.pipeline().value()->evaluate_actions(env).to_string()
              << "\n";
  };
  std::cout << "Routing decisions:\n";
  route(1, 1001);  // hot read -> cache
  route(1, 42);    // cold read -> shard 1
  route(1, 7777);  // cold read -> shard 2
  route(2, 1001);  // write to hot key -> storage + cache invalidation copy
  route(2, 42);    // cold write -> shard 1
  std::cout << "\n";

  // The hot set rotates: key 1001 cools down, 4242 heats up. The cold-path
  // negations are updated in the same commit.
  std::cout << "Hot-set rotation (1001 out, 4242 in):\n";
  inc.remove(hot1);
  inc.remove(cold1);
  inc.remove(cold2);
  must("op == 1 and key == 4242 : fwd(9)");
  must("!(key == 4242 or key == 2002) and key < 5000 : fwd(1)");
  must("!(key == 4242 or key == 2002) and key >= 5000 : fwd(2)");
  auto delta = inc.commit();
  if (!delta.ok()) {
    std::cerr << delta.error().to_string() << "\n";
    return 1;
  }
  std::cout << "  " << delta.value().ops.size() << " control-plane ops, "
            << delta.value().reused_entries << " entries reused\n";
  route(1, 1001);  // now cold -> shard 1
  route(1, 4242);  // now hot -> cache (plus shard copy from cold rules)
  (void)kCachePort;
  return 0;
}
