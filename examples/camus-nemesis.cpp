// camus-nemesis: seeded fault-injection campaign against the crash-safe
// control plane. Runs N scenarios of subscription churn with controller
// crashes, switch reboots, control-channel partitions, and stale-epoch
// writes, checking the four recovery invariants after every disruption
// (see src/fault/nemesis.hpp). Exits nonzero on any violation, so CI can
// gate on it directly.
//
// --fabric runs the spine–leaf variant instead (src/fault/fabric_nemesis.hpp):
// a FabricController over a netsim fabric, with crashes BETWEEN per-switch
// commits, per-node reboots, install partitions (all-or-nothing aborts),
// and the I1–I4 invariants checked fabric-wide.
//
// Usage: camus-nemesis [--fabric] [--seed N] [--scenarios N] [--steps N]
//                      [--probes N] [--leaves N] [--spines N] [--json]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/fabric_nemesis.hpp"
#include "fault/nemesis.hpp"

namespace {

int run_fabric(const camus::fault::FabricNemesisOptions& opts, bool json) {
  const camus::fault::FabricNemesisStats stats =
      camus::fault::run_fabric_nemesis(opts);

  if (json) {
    std::printf("%s\n", stats.to_json().c_str());
  } else {
    std::printf(
        "fabric-nemesis: %zu scenarios, %zu steps | %zu commits, %zu "
        "installs | %zu crashes (%zu mid-commit, %zu from snapshot), "
        "%zu leaf reboots, %zu spine reboots | %zu partitions (%zu atomic "
        "aborts), %zu stale writes (%zu rejected) | %zu reconciles, %zu "
        "repairs (%zu full) | %zu probes\n",
        stats.scenarios, stats.steps, stats.commits, stats.installs,
        stats.crashes, stats.crashes_mid_commit,
        stats.recoveries_from_snapshot, stats.leaf_reboots,
        stats.spine_reboots, stats.partitions, stats.all_or_nothing_aborts,
        stats.stale_writes, stats.stale_rejected, stats.reconciles,
        stats.repairs, stats.full_reprograms, stats.probes);
  }

  if (stats.violations > 0) {
    std::fprintf(stderr, "VIOLATIONS: %zu\n", stats.violations);
    for (const std::string& d : stats.violation_details)
      std::fprintf(stderr, "  %s\n", d.c_str());
    return 1;
  }
  std::fprintf(stderr, "all invariants held\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  camus::fault::NemesisOptions opts;
  camus::fault::FabricNemesisOptions fopts;
  bool fabric = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fabric") {
      fabric = true;
    } else if (arg == "--seed") {
      opts.seed = fopts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--scenarios") {
      opts.scenarios = fopts.scenarios = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--steps") {
      opts.steps = fopts.steps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--probes") {
      opts.probe_messages = fopts.probe_messages =
          std::strtoull(next(), nullptr, 10);
    } else if (arg == "--leaves") {
      fopts.leaves = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--spines") {
      fopts.spines = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: camus-nemesis [--fabric] [--seed N] [--scenarios N] "
          "[--steps N] [--probes N] [--leaves N] [--spines N] [--json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (fabric) return run_fabric(fopts, json);

  const camus::fault::NemesisStats stats = camus::fault::run_nemesis(opts);

  if (json) {
    std::printf("%s\n", stats.to_json().c_str());
  } else {
    std::printf(
        "nemesis: %zu scenarios, %zu steps | %zu commits, %zu installs | "
        "%zu crashes (%zu from snapshot), %zu reboots, %zu partitions "
        "(%zu aborts), %zu stale writes (%zu rejected) | %zu reconciles, "
        "%zu repairs (%zu full), %zu repair ops | %zu probes\n",
        stats.scenarios, stats.steps, stats.commits, stats.installs,
        stats.crashes, stats.recoveries_from_snapshot, stats.switch_reboots,
        stats.partitions, stats.partition_aborts, stats.stale_writes,
        stats.stale_rejected, stats.reconciles, stats.repairs,
        stats.full_reprograms, stats.repair_ops, stats.probes);
  }

  if (stats.violations > 0) {
    std::fprintf(stderr, "VIOLATIONS: %zu\n", stats.violations);
    for (const std::string& d : stats.violation_details)
      std::fprintf(stderr, "  %s\n", d.c_str());
    return 1;
  }
  std::fprintf(stderr, "all invariants held\n");
  return 0;
}
