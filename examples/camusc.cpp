// camusc — the Camus compiler driver. The command-line face of the whole
// system: reads a message-format spec and a subscription file, runs
// analysis + both compilation steps, and writes the artifacts.
//
//   camusc --spec spec.p4 --rules subs.txt [options]
//
// Options:
//   --p4 FILE          write the P4-16 program
//   --p4-14 FILE       write the P4_14 program
//   --rules-out FILE   write the control-plane entry dump
//   --pipeline FILE    write the serialized pipeline (switch exchange format)
//   --dot FILE         write the BDD in GraphViz format
//   --tables           print the compiled tables (Figure 4 style)
//   --analyze          print the rule-set analysis report
//   --order H          declared | exact-first | selectivity-asc | selectivity-desc
//   --no-prune         disable reduction (iii) (ablation)
//   --compress         enable domain compression
//   --emit-drop        emit explicit drop entries
//   --stats            print compile statistics
//   --stats-json FILE  write the compile-stats JSON profile ("-" = stdout)
//   --threads N        parallel sharded compilation (0 = hardware threads)
//   --partition M      partitioned compilation: auto | force | off.
//                      Shards the rule set by its dominant exact-match
//                      attribute, compiles each shard independently, and
//                      stitches the sub-pipelines behind a dispatch stage
//   --intern           minimize the stitched/monolithic pipeline by
//                      interning behaviorally equivalent states
//   --explore          run the cost-model layout search on a sample of the
//                      rule set and compile the full set with the winner
//   --explore-json F   write the explore candidate scores as JSON
//                      ("-" = stdout); implies --explore
//   --lint             run the static verifier (camus::verify) on the rules
//                      and the compiled pipeline; exit 1 on error-severity
//                      findings
//   --lint-json FILE   write the lint diagnostics as JSON ("-" = stdout);
//                      implies --lint
//   --explain ASSIGN   trace one message through the pipeline, e.g.
//                      --explain "stock=GOOGL,price=120,shares=5"
//   --base FILE        previously installed subscription set: --rules is
//                      treated as the new set and the update is compiled
//                      incrementally as a delta against FILE
//   --delta-json FILE  write the per-commit delta telemetry JSON
//                      (ops/adds/removes/modifies/reuse_fraction plus the
//                      compile profile; "-" = stdout). Without --base the
//                      commit is a cold start and every entry is an add.
// With no --spec, uses the built-in ITCH schema; with no --rules, reads
// subscriptions from stdin.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "compiler/analysis.hpp"
#include "compiler/compile.hpp"
#include "compiler/explore.hpp"
#include "compiler/incremental.hpp"
#include "compiler/p4gen.hpp"
#include "table/serialize.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "spec/spec_parser.hpp"
#include "table/table.hpp"
#include "util/intern.hpp"
#include "verify/verify.hpp"

using namespace camus;

namespace {

int usage() {
  std::cerr << "usage: camusc [--spec FILE] [--rules FILE] [--p4 FILE] "
               "[--p4-14 FILE]\n              [--rules-out FILE] [--dot "
               "FILE] [--tables] [--analyze]\n              [--order H] "
               "[--no-prune] [--compress] [--emit-drop] [--stats]\n"
               "              [--stats-json FILE|-] [--threads N] [--lint] "
               "[--lint-json FILE|-]\n              [--base FILE] "
               "[--delta-json FILE|-] [--partition auto|force|off]\n"
               "              [--intern] [--explore] "
               "[--explore-json FILE|-]\n";
  return 2;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool spill(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> files;
  bool want_tables = false, want_analyze = false, want_stats = false;
  bool want_lint = false;
  bool want_explore = false;
  std::string explain_assign;
  std::string stats_json_path;
  std::string lint_json_path;
  std::string delta_json_path;
  std::string explore_json_path;
  compiler::CompileOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tables") {
      want_tables = true;
    } else if (arg == "--analyze") {
      want_analyze = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--no-prune") {
      opts.semantic_prune = false;
    } else if (arg == "--compress") {
      opts.domain_compression = true;
    } else if (arg == "--emit-drop") {
      opts.emit_drop_entries = true;
    } else if (arg == "--explain") {
      const char* v = next();
      if (!v) return usage();
      explain_assign = v;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (!v) return usage();
      stats_json_path = v;
    } else if (arg == "--lint") {
      want_lint = true;
    } else if (arg == "--delta-json") {
      const char* v = next();
      if (!v) return usage();
      delta_json_path = v;
    } else if (arg == "--lint-json") {
      const char* v = next();
      if (!v) return usage();
      lint_json_path = v;
      want_lint = true;
    } else if (arg == "--partition") {
      const char* v = next();
      if (!v) return usage();
      const std::string mode = v;
      if (mode == "auto") opts.partition = compiler::PartitionMode::kAuto;
      else if (mode == "force")
        opts.partition = compiler::PartitionMode::kForce;
      else if (mode == "off")
        opts.partition = compiler::PartitionMode::kOff;
      else return usage();
    } else if (arg == "--intern") {
      opts.intern_entries = true;
    } else if (arg == "--explore") {
      want_explore = true;
    } else if (arg == "--explore-json") {
      const char* v = next();
      if (!v) return usage();
      explore_json_path = v;
      want_explore = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage();
      opts.threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--order") {
      const char* h = next();
      if (!h) return usage();
      const std::string name = h;
      if (name == "declared") opts.order = bdd::OrderHeuristic::kDeclared;
      else if (name == "exact-first")
        opts.order = bdd::OrderHeuristic::kExactFirst;
      else if (name == "selectivity-asc")
        opts.order = bdd::OrderHeuristic::kSelectivityAsc;
      else if (name == "selectivity-desc")
        opts.order = bdd::OrderHeuristic::kSelectivityDesc;
      else return usage();
    } else if (arg == "--spec" || arg == "--rules" || arg == "--p4" ||
               arg == "--p4-14" || arg == "--rules-out" || arg == "--dot" ||
               arg == "--pipeline" || arg == "--base") {
      const char* v = next();
      if (!v) return usage();
      files[arg] = v;
    } else {
      return usage();
    }
  }

  // Schema.
  spec::Schema schema;
  if (files.count("--spec")) {
    auto text = slurp(files["--spec"]);
    if (!text) {
      std::cerr << "camusc: cannot read " << files["--spec"] << "\n";
      return 1;
    }
    auto parsed = spec::parse_spec(*text);
    if (!parsed.ok()) {
      std::cerr << "camusc: spec: " << parsed.error().to_string() << "\n";
      return 1;
    }
    schema = std::move(parsed).take();
  } else {
    schema = spec::make_itch_schema();
  }

  // Rules.
  std::string rules_text;
  if (files.count("--rules")) {
    auto text = slurp(files["--rules"]);
    if (!text) {
      std::cerr << "camusc: cannot read " << files["--rules"] << "\n";
      return 1;
    }
    rules_text = std::move(*text);
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    rules_text = ss.str();
  }

  auto parsed = lang::parse_rules(rules_text);
  if (!parsed.ok()) {
    std::cerr << "camusc: rules: " << parsed.error().to_string() << "\n";
    return 1;
  }
  auto bound = lang::bind_rules(parsed.value(), schema);
  if (!bound.ok()) {
    std::cerr << "camusc: rules: " << bound.error().to_string() << "\n";
    return 1;
  }

  if (want_analyze) {
    auto report = compiler::analyze_rules(schema, bound.value());
    if (!report.ok()) {
      std::cerr << "camusc: analysis: " << report.error().to_string() << "\n";
      return 1;
    }
    std::cout << report.value().to_string(schema);
  }

  // Cost-model layout search: score candidate layouts on a sample, then
  // compile the full set with the winner. User-chosen flags seed the
  // search (threads, guard rails) but the winner owns order/partition/
  // intern/compression.
  if (want_explore) {
    compiler::ExploreParams ep;
    ep.base = opts;
    auto searched = compiler::explore(schema, bound.value(), ep);
    if (!searched.ok()) {
      std::cerr << "camusc: explore: " << searched.error().to_string() << "\n";
      return 1;
    }
    if (!explore_json_path.empty()) {
      if (explore_json_path == "-") {
        std::cout << searched.value().to_json() << "\n";
      } else if (!spill(explore_json_path,
                        searched.value().to_json() + "\n")) {
        std::cerr << "camusc: cannot write " << explore_json_path << "\n";
        return 1;
      }
    }
    if (want_stats)
      std::cout << "explore: best=" << searched.value().best_label
                << " cost=" << searched.value().best_cost << " ("
                << searched.value().candidates.size() << " candidates, "
                << searched.value().sampled << "/"
                << searched.value().total_rules << " rules sampled)\n";
    opts = searched.value().best;
  }

  // The partitioned path normally skips the monolithic union BDD; --dot
  // and --lint need it (to draw, and for the checker's reference side).
  if (opts.partition != compiler::PartitionMode::kOff &&
      (files.count("--dot") || want_lint))
    opts.partition_reference = true;

  auto compiled = compiler::compile_rules(schema, bound.value(), opts);
  if (!compiled.ok()) {
    std::cerr << "camusc: compile: " << compiled.error().to_string() << "\n";
    return 1;
  }
  const auto& c = compiled.value();

  // Static verification: both layers of camus::verify over the input rules
  // and the artifact just produced. Error-severity findings fail the run
  // (after the requested artifacts are still written, so they can be
  // inspected).
  int lint_exit = 0;
  if (want_lint) {
    verify::Report report;
    auto verified =
        verify::verify_compiled(schema, bound.value(), c, report);
    if (!verified.ok()) {
      std::cerr << "camusc: lint: " << verified.error().to_string() << "\n";
      return 1;
    }
    if (!report.empty() || lint_json_path.empty()) {
      // With --lint-json -, stdout is the machine-readable channel: the
      // human-readable report moves to stderr.
      (lint_json_path == "-" ? std::cerr : std::cout) << report.to_text();
    }
    if (!lint_json_path.empty()) {
      if (lint_json_path == "-") {
        std::cout << report.to_json() << "\n";
      } else if (!spill(lint_json_path, report.to_json() + "\n")) {
        std::cerr << "camusc: cannot write " << lint_json_path << "\n";
        return 1;
      }
    }
    lint_exit = report.exit_code();
  }

  // Incremental update telemetry: commit the base set (the previously
  // installed subscriptions), then transition to --rules and report the
  // second commit's delta — the exact op stream an installer would ship.
  // The persistent compiler's rule-BDD cache and stable state ids keep
  // the delta minimal for rules shared between the two sets.
  if (!delta_json_path.empty()) {
    compiler::IncrementalCompiler inc(schema, opts);
    std::vector<compiler::IncrementalCompiler::SubscriptionId> base_ids;
    if (files.count("--base")) {
      auto base_text = slurp(files["--base"]);
      if (!base_text) {
        std::cerr << "camusc: cannot read " << files["--base"] << "\n";
        return 1;
      }
      auto base_parsed = lang::parse_rules(*base_text);
      if (!base_parsed.ok()) {
        std::cerr << "camusc: base: " << base_parsed.error().to_string()
                  << "\n";
        return 1;
      }
      auto base_bound = lang::bind_rules(base_parsed.value(), schema);
      if (!base_bound.ok()) {
        std::cerr << "camusc: base: " << base_bound.error().to_string()
                  << "\n";
        return 1;
      }
      for (const auto& r : base_bound.value())
        base_ids.push_back(inc.add(r));
      if (auto cold = inc.commit(); !cold.ok()) {
        std::cerr << "camusc: base commit: " << cold.error().to_string()
                  << "\n";
        return 1;
      }
    }
    for (const auto id : base_ids) inc.remove(id);
    for (const auto& r : bound.value()) inc.add(r);
    auto delta = inc.commit();
    if (!delta.ok()) {
      std::cerr << "camusc: delta commit: " << delta.error().to_string()
                << "\n";
      return 1;
    }
    if (delta_json_path == "-") {
      std::cout << delta.value().to_json() << "\n";
    } else if (!spill(delta_json_path, delta.value().to_json() + "\n")) {
      std::cerr << "camusc: cannot write " << delta_json_path << "\n";
      return 1;
    }
  }

  if (files.count("--p4") &&
      !spill(files["--p4"], compiler::generate_p4(schema, &c.pipeline))) {
    std::cerr << "camusc: cannot write " << files["--p4"] << "\n";
    return 1;
  }
  if (files.count("--p4-14") &&
      !spill(files["--p4-14"],
             compiler::generate_p4_14(schema, &c.pipeline))) {
    std::cerr << "camusc: cannot write " << files["--p4-14"] << "\n";
    return 1;
  }
  if (files.count("--rules-out") &&
      !spill(files["--rules-out"],
             compiler::generate_control_plane_rules(c.pipeline))) {
    std::cerr << "camusc: cannot write " << files["--rules-out"] << "\n";
    return 1;
  }
  if (files.count("--pipeline") &&
      !spill(files["--pipeline"],
             table::serialize_pipeline(c.pipeline))) {
    std::cerr << "camusc: cannot write " << files["--pipeline"] << "\n";
    return 1;
  }
  if (files.count("--dot")) {
    if (!c.manager) {
      std::cerr << "camusc: --dot: no BDD available on the partitioned "
                   "path\n";
      return 1;
    }
    if (!spill(files["--dot"], c.manager->to_dot(c.root, &schema))) {
      std::cerr << "camusc: cannot write " << files["--dot"] << "\n";
      return 1;
    }
  }
  if (!explain_assign.empty()) {
    // Parse "field=value,field=value" against the schema.
    lang::Env env;
    env.fields.assign(schema.fields().size(), 0);
    env.states.assign(schema.state_vars().size(), 0);
    std::size_t i = 0;
    bool ok = true;
    while (i < explain_assign.size()) {
      std::size_t eq = explain_assign.find('=', i);
      std::size_t comma = explain_assign.find(',', i);
      if (comma == std::string::npos) comma = explain_assign.size();
      if (eq == std::string::npos || eq > comma) { ok = false; break; }
      const std::string name = explain_assign.substr(i, eq - i);
      const std::string value = explain_assign.substr(eq + 1, comma - eq - 1);
      std::uint64_t v = 0;
      if (auto fid = schema.resolve_field(name)) {
        if (schema.field(*fid).kind == spec::FieldKind::kSymbol)
          v = util::encode_symbol(value);
        else
          v = std::strtoull(value.c_str(), nullptr, 0);
        env.fields[*fid] = v;
      } else if (auto sid = schema.resolve_state_var(name)) {
        env.states[*sid] = std::strtoull(value.c_str(), nullptr, 0);
      } else {
        std::cerr << "camusc: --explain: unknown field '" << name << "'\n";
        return 1;
      }
      i = comma + 1;
    }
    if (!ok) {
      std::cerr << "camusc: --explain expects field=value[,field=value...]\n";
      return 1;
    }
    std::cout << "explain " << explain_assign << ":\n"
              << c.pipeline.explain(env).to_string();
  }
  if (!stats_json_path.empty()) {
    if (stats_json_path == "-") {
      std::cout << c.stats.to_json() << "\n";
    } else if (!spill(stats_json_path, c.stats.to_json() + "\n")) {
      std::cerr << "camusc: cannot write " << stats_json_path << "\n";
      return 1;
    }
  }
  if (want_tables) std::cout << c.pipeline.to_string();
  if (want_stats || (!want_tables && !want_lint && files.empty() &&
                     stats_json_path.empty() && delta_json_path.empty())) {
    std::cout << c.stats.to_string() << "\n"
              << "resources: " << c.pipeline.resources().to_string() << "\n"
              << "fits Tofino-like budget: "
              << (table::ResourceBudget{}.fits(c.pipeline.resources())
                      ? "yes"
                      : "NO")
              << "\n";
  }
  return lint_exit;
}
