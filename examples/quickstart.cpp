// Quickstart: the paper's Figure 3/4 worked example, end to end.
//
// Compiles three subscription rules over a trade message format into the
// three-stage match-action pipeline of Figure 4, prints the BDD (GraphViz)
// and the tables, and classifies a few sample messages.
//
//   $ ./quickstart            # prints tables + sample evaluations
//   $ ./quickstart --dot      # also prints the BDD in DOT format
#include <cstring>
#include <iostream>

#include "compiler/compile.hpp"
#include "spec/spec_parser.hpp"
#include "util/intern.hpp"

using namespace camus;

namespace {

constexpr std::string_view kSpec = R"(
header_type trade_t {
    fields {
        shares: 32;
        stock: 64 (symbol);
    }
}
header trade_t trade;
@query_field(trade.shares)
@query_field_exact(trade.stock)
)";

// The three rules of Figure 3: two overlap on shares > 100 (their actions
// merge into the multicast fwd(1,2)), one selects small AAPL trades.
constexpr std::string_view kRules = R"(
shares > 100 and stock == MSFT : fwd(2)
shares > 100 : fwd(1)
shares < 60 and stock == AAPL : fwd(3)
)";

void classify(const table::Pipeline& pipe, const spec::Schema& schema,
              std::uint64_t shares, const std::string& stock) {
  lang::Env env;
  env.fields = {shares, util::encode_symbol(stock)};
  const auto& actions = pipe.evaluate_actions(env);
  std::cout << "  shares=" << shares << " stock=" << stock << "  ->  "
            << actions.to_string() << "\n";
  (void)schema;
}

}  // namespace

int main(int argc, char** argv) {
  const bool want_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  auto schema = spec::parse_spec(kSpec);
  if (!schema.ok()) {
    std::cerr << "spec error: " << schema.error().to_string() << "\n";
    return 1;
  }

  // emit_drop_entries reproduces the explicit '* -> drop' rows shown in
  // the paper's Figure 4.
  compiler::CompileOptions opts;
  opts.emit_drop_entries = true;
  auto compiled = compiler::compile_source(schema.value(), kRules, opts);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.error().to_string() << "\n";
    return 1;
  }
  const auto& c = compiled.value();

  std::cout << "== Subscriptions ==\n" << kRules << "\n";
  std::cout << "== Compiled pipeline (paper Figure 4) ==\n\n"
            << c.pipeline.to_string() << "\n";
  std::cout << "== Resources ==\n  "
            << c.pipeline.resources().to_string() << "\n\n";

  if (want_dot) {
    std::cout << "== BDD (paper Figure 3, GraphViz) ==\n"
              << c.manager->to_dot(c.root, &schema.value()) << "\n";
  }

  std::cout << "== Sample classifications ==\n";
  classify(c.pipeline, schema.value(), 150, "MSFT");   // fwd(1,2)
  classify(c.pipeline, schema.value(), 150, "ORCL");   // fwd(1)
  classify(c.pipeline, schema.value(), 10, "AAPL");    // fwd(3)
  classify(c.pipeline, schema.value(), 10, "MSFT");    // drop
  classify(c.pipeline, schema.value(), 80, "AAPL");    // drop (middle band)
  return 0;
}
