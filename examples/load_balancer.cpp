// In-network L4 load balancing (paper §1: "data centers rely on complex
// software systems to map incoming IP packets to one of a set of possible
// service end-points... Examples include Google's Maglev and Facebook's
// Katran").
//
// A virtual IP's traffic is split across backends by client-address range
// — consistent, stateless splitting expressed directly as packet
// subscriptions with IPv4 literals and range predicates, compiled into the
// switch instead of running on middlebox servers.
#include <iostream>
#include <map>

#include "compiler/compile.hpp"
#include "proto/generic.hpp"
#include "switchsim/switch.hpp"
#include "spec/spec_parser.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace camus;

namespace {

constexpr std::string_view kL4Spec = R"(
header_type ipv4_flow_t {
    fields {
        src: 32;
        dst: 32;
        dport: 16;
    }
}
header ipv4_flow_t flow;
@query_field(flow.src)
@query_field_exact(flow.dst)
@query_field_exact(flow.dport)
)";

std::uint32_t ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) {
  return (std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
         (std::uint32_t{c} << 8) | d;
}

}  // namespace

int main() {
  auto schema = spec::parse_spec(kL4Spec);
  if (!schema.ok()) {
    std::cerr << schema.error().to_string() << "\n";
    return 1;
  }

  // VIP 10.0.0.100:80 -> 4 backends by client /8-range; a second VIP on
  // port 443 -> 2 backends; health-checks (port 9000) to a monitor host.
  const std::string rules = R"(
    flow.dst == 10.0.0.100 and dport == 80 and src < 64.0.0.0 : fwd(1)
    flow.dst == 10.0.0.100 and dport == 80 and src >= 64.0.0.0 and src < 128.0.0.0 : fwd(2)
    flow.dst == 10.0.0.100 and dport == 80 and src >= 128.0.0.0 and src < 192.0.0.0 : fwd(3)
    flow.dst == 10.0.0.100 and dport == 80 and src >= 192.0.0.0 : fwd(4)
    flow.dst == 10.0.0.100 and dport == 443 and src < 128.0.0.0 : fwd(5)
    flow.dst == 10.0.0.100 and dport == 443 and src >= 128.0.0.0 : fwd(6)
    dport == 9000 : fwd(7)
  )";

  auto compiled = compiler::compile_source(schema.value(), rules);
  if (!compiled.ok()) {
    std::cerr << compiled.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Compiled L4 balancer: " << compiled.value().stats.to_string()
            << "\n\n"
            << compiled.value().pipeline.to_string() << "\n";

  // Traffic mix: random clients hitting the VIP, as real frames through
  // the switch model (generic bit-packed record of the flow_t schema).
  switchsim::Switch sw(schema.value(), compiled.value().pipeline);
  util::Rng rng(99);
  std::map<std::uint16_t, std::uint64_t> backend_hits;
  const std::uint32_t vip = ip(10, 0, 0, 100);
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t client = static_cast<std::uint32_t>(rng.next());
    const std::uint16_t dport = rng.chance(0.8) ? 80 : 443;
    const auto frame =
        proto::encode_generic_packet(schema.value(), {client, vip, dport});
    for (const auto& copy : sw.process_generic(frame, 0))
      ++backend_hits[copy.port];
  }

  std::cout << "Backend distribution over 100K random flows:\n";
  util::TextTable table({"backend port", "flows", "share"});
  std::uint64_t total = 0;
  for (const auto& [port, hits] : backend_hits) total += hits;
  for (const auto& [port, hits] : backend_hits) {
    table.add_row({std::to_string(port), std::to_string(hits),
                   util::TextTable::fmt(100.0 * hits / total, 1) + "%"});
  }
  std::cout << table.to_string();
  std::cout << "\nEvery flow from one client lands on one backend — "
               "stateless consistent splitting at line rate.\n";
  return 0;
}
