// camus-fuzz — generative differential-fuzzing campaign driver. Samples
// the full subscription grammar (workload::GrammarFuzzer), compiles each
// sample, and cross-checks the whole stack against a brute-force AST
// oracle: NaiveMatcher, the interpreted pipeline, the flattened fast
// path, the stateful switch, incremental-churn deltas, injected faults,
// and the camus-lint diagnostics engine. Divergences are shrunk by a
// delta-debugging minimizer into self-contained reproducer files.
//
//   camus-fuzz [--seed N] [--samples N] [--time-budget SECONDS] [options]
//   camus-fuzz --replay FILE...          replay committed reproducers
//
// Options:
//   --seed N            campaign seed (default 1)
//   --samples N         samples to run (default 1000)
//   --time-budget S     stop after S seconds even if samples remain
//   --only I            run exactly sample index I (repro triage)
//   --mode M            restrict to one mode: direct|churn|fault|lint
//   --no-minimize       report raw failing samples without shrinking
//   --corpus DIR        write each minimized reproducer to DIR/
//   --json FILE|-       campaign summary as JSON ("-" = stdout)
//   --quiet             suppress the text summary
//   --replay FILE...    replay reproducer files instead of a campaign
//
// Exit codes: 0 no divergences, 1 divergences found, 2 usage/IO failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "spec/itch_spec.hpp"
#include "verify/fuzz_harness.hpp"
#include "workload/fuzz.hpp"

using namespace camus;

namespace {

int usage() {
  std::cerr << "usage: camus-fuzz [--seed N] [--samples N] "
               "[--time-budget S] [--only I]\n"
               "                  [--mode direct|churn|fault|lint] "
               "[--no-minimize]\n"
               "                  [--corpus DIR] [--json FILE|-] [--quiet]\n"
               "       camus-fuzz --replay FILE...\n";
  return 2;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int replay_files(const spec::Schema& schema,
                 const std::vector<std::string>& files, bool quiet) {
  int failures = 0;
  for (const auto& path : files) {
    auto text = slurp(path);
    if (!text) {
      std::cerr << "camus-fuzz: cannot read " << path << "\n";
      return 2;
    }
    auto repro = verify::parse_repro(*text);
    if (!repro.ok()) {
      std::cerr << "camus-fuzz: " << path << ": "
                << repro.error().to_string() << "\n";
      return 2;
    }
    const verify::FuzzCaseResult r =
        verify::replay_repro(schema, repro.value());
    if (r.diverged) {
      ++failures;
      std::cerr << "camus-fuzz: " << path << ": STILL DIVERGES: " << r.detail
                << "\n";
    } else if (!quiet) {
      std::cout << "camus-fuzz: " << path << ": ok ("
                << verify::to_string(repro.value().mode) << ", "
                << r.probes_run << " probes)\n";
    }
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  verify::CampaignOptions copts;
  std::optional<std::uint64_t> only_index;
  std::string corpus_dir, json_path;
  std::vector<std::string> replay;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_u64 = [&](std::uint64_t& out) {
      const char* v = next();
      if (!v) return false;
      out = std::strtoull(v, nullptr, 10);
      return true;
    };
    std::uint64_t n = 0;
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--no-minimize") {
      copts.minimize_failures = false;
    } else if (arg == "--seed") {
      if (!next_u64(copts.seed)) return usage();
    } else if (arg == "--samples") {
      if (!next_u64(n)) return usage();
      copts.samples = n;
    } else if (arg == "--time-budget") {
      const char* v = next();
      if (!v) return usage();
      copts.time_budget_s = std::strtod(v, nullptr);
    } else if (arg == "--only") {
      if (!next_u64(n)) return usage();
      only_index = n;
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return usage();
      auto m = verify::parse_fuzz_mode(v);
      if (!m) return usage();
      copts.harness.run_direct = *m == verify::FuzzMode::kDirect;
      copts.harness.run_churn = *m == verify::FuzzMode::kChurn;
      copts.harness.run_fault = *m == verify::FuzzMode::kFault;
      copts.harness.run_lint = *m == verify::FuzzMode::kLint;
    } else if (arg == "--corpus") {
      const char* v = next();
      if (!v) return usage();
      corpus_dir = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else if (arg == "--replay") {
      while (const char* v = next()) replay.emplace_back(v);
      if (replay.empty()) return usage();
    } else {
      return usage();
    }
  }

  const spec::Schema schema = spec::make_itch_schema();
  if (!replay.empty()) return replay_files(schema, replay, quiet);

  if (only_index) {
    // Triage path: run exactly one (seed, index) pair and dump the sample.
    workload::FuzzParams gp = copts.gen;
    gp.seed = copts.seed;
    const workload::GrammarFuzzer fuzzer(schema, gp);
    const workload::FuzzSample s = fuzzer.sample(*only_index);
    std::cout << "# " << workload::fuzz_repro_hint(copts.seed, *only_index)
              << "\n"
              << s.source();
    const verify::FuzzCaseResult r =
        verify::run_case(schema, s, copts.harness);
    if (!r.diverged) {
      std::cout << "ok (" << r.probes_run << " probes)\n";
      return 0;
    }
    std::cout << "DIVERGENCE: " << r.detail << "\n";
    const verify::FuzzRepro m = verify::minimize(schema, s, r.mode);
    std::cout << verify::serialize_repro(m);
    return 1;
  }

  const verify::CampaignResult res = verify::run_campaign(schema, copts);

  if (!quiet) {
    std::ostream& hout = json_path == "-" ? std::cerr : std::cout;
    hout << "camus-fuzz: seed " << res.seed << ": " << res.samples_run << "/"
         << res.samples_requested << " samples, " << res.probes_run
         << " probes, " << res.divergences << " divergences in "
         << res.seconds << "s"
         << (res.time_exhausted ? " (time budget exhausted)" : "") << "\n";
    for (const auto& f : res.failures) {
      hout << "--- divergence at index " << f.index << " ("
           << verify::to_string(f.mode) << ")\n"
           << f.detail << "\n"
           << verify::serialize_repro(f.minimized);
    }
  }

  if (!corpus_dir.empty()) {
    for (const auto& f : res.failures) {
      const std::string path = corpus_dir + "/seed" +
                               std::to_string(res.seed) + "_idx" +
                               std::to_string(f.index) + "_" +
                               std::string(verify::to_string(f.mode)) +
                               ".repro";
      std::ofstream out(path);
      out << verify::serialize_repro(f.minimized);
      if (!out) {
        std::cerr << "camus-fuzz: cannot write " << path << "\n";
        return 2;
      }
    }
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << res.to_json() << "\n";
    } else {
      std::ofstream out(json_path);
      out << res.to_json() << "\n";
      if (!out) {
        std::cerr << "camus-fuzz: cannot write " << json_path << "\n";
        return 2;
      }
    }
  }

  return res.divergences ? 1 : 0;
}
