// In-network market-feed splitting — the paper's case study (Figure 6).
//
// Several trading servers subscribe to slices of a Nasdaq-style ITCH feed
// with content filters (symbols, price thresholds, stateful aggregates).
// The Camus controller compiles the filters, programs the switch, and the
// full feed is pushed through: each server receives exactly its slice at
// the switch, with no host-side filtering.
//
//   $ ./itch_pubsub [n_messages]    # default 100000
#include <cstdlib>
#include <iostream>

#include "pubsub/controller.hpp"
#include "pubsub/endpoints.hpp"
#include "spec/itch_spec.hpp"
#include "util/stats.hpp"
#include "workload/feed.hpp"

using namespace camus;

int main(int argc, char** argv) {
  const std::size_t n_messages =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 100000;

  // The trading floor's subscriptions: one strategy per server port.
  pubsub::Controller ctl(spec::make_itch_schema());
  const std::vector<std::pair<std::uint16_t, std::string>> strategies = {
      {1, "stock == GOOGL"},
      {2, "stock == AAPL or stock == MSFT"},
      {3, "stock == GOOGL and price > 2000000"},    // GOOGL above $200
      {4, "shares > 800"},                          // block trades, any symbol
      {5, "stock == NVDA and avg(price) > 1500000"},  // momentum gate
  };
  for (const auto& [port, filter] : strategies) {
    auto ok = ctl.subscribe(port, filter);
    if (!ok.ok()) {
      std::cerr << "subscription rejected: " << ok.error().to_string() << "\n";
      return 1;
    }
  }
  // The stateful strategy also keeps the moving average updated.
  if (auto ok = ctl.subscribe(5, "stock == NVDA : update(avg_price)");
      !ok.ok()) {
    std::cerr << ok.error().to_string() << "\n";
    return 1;
  }

  auto sw = ctl.build_switch();
  if (!sw.ok()) {
    std::cerr << "compile error: " << sw.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Compiled " << ctl.subscription_count()
            << " subscriptions: " << ctl.compiled().value()->stats.to_string() << "\n";
  std::cout << "Switch resources: " << sw.value().resources().to_string()
            << "  (fits Tofino-like budget: "
            << (sw.value().fits() ? "yes" : "NO") << ")\n\n";

  // Publish a synthetic feed through the switch.
  workload::FeedParams fp;
  fp.seed = 2026;
  fp.n_messages = n_messages;
  fp.watched_fraction = 0.01;
  auto feed = workload::generate_feed(fp);

  pubsub::Publisher pub;
  std::vector<pubsub::Subscriber> subs;
  for (std::uint16_t port = 1; port <= 5; ++port) subs.emplace_back(port);

  for (const auto& fm : feed.messages) {
    const auto frame = pub.publish(fm.msg);
    for (const auto& copy : sw.value().process(frame, fm.t_us))
      subs[copy.port - 1].deliver(frame);
  }

  const auto& c = sw.value().counters();
  std::cout << "Feed: " << c.rx_frames << " messages, " << c.matched
            << " matched at least one subscriber, " << c.dropped
            << " dropped at the switch, " << c.multicast_frames
            << " replicated to multiple ports\n\n";

  util::TextTable table({"port", "filter", "received", "top symbols"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    std::string tops;
    std::size_t shown = 0;
    // per_symbol() is ordered; show up to three entries.
    for (const auto& [sym, count] : subs[i].per_symbol()) {
      if (shown++ == 3) break;
      if (!tops.empty()) tops += ", ";
      tops += sym + ":" + std::to_string(count);
    }
    table.add_row({std::to_string(strategies[i].first),
                   strategies[i].second,
                   std::to_string(subs[i].received()), tops});
  }
  std::cout << table.to_string();
  return 0;
}
