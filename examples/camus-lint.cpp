// camus-lint — static verifier CLI for subscription sets and compiled
// pipelines. Runs both layers of camus::verify: the BDD-exact subscription
// linter (S0xx) and the compiled-artifact checks including the symbolic
// equivalence proof against the reference MTBDD (P0xx).
//
//   camus-lint [--spec FILE] (--rules FILE | --itch N)  [options]
//
// Options:
//   --spec FILE          message-format spec (default: built-in ITCH)
//   --rules FILE         subscription file ("-" or absent: stdin)
//   --itch N             generate N ITCH subscriptions instead of --rules
//   --json FILE|-        write diagnostics as JSON (in addition to text)
//   --quiet              suppress the text report on stdout
//   --warnings-as-errors exit 1 on warnings too
//   --no-bdd             DNF pre-filter only (skip BDD-exact subsumption)
//   --no-overlaps        skip S005 overlap notes
//   --no-coverage        skip the S006 coverage-hole check
//   --no-equivalence     skip the symbolic equivalence proof
//   --mutate K           corrupt one table entry (index seed K) after
//                        compiling — the equivalence checker must catch it
//   --compress           compile with domain compression (value maps)
//   --threads N          parallel sharded compilation
//   --max-pairs N        pair budget for subsumption + equivalence
//   --budget-sram N      per-stage SRAM entry budget
//   --budget-tcam N      per-stage TCAM entry budget
//   --budget-stages N    device stage budget
//   --budget-mcast N     device multicast-group budget
//
// Exit codes: 0 clean (notes/warnings only), 1 error-severity findings
// (or warnings with --warnings-as-errors), 2 usage or I/O failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compiler/compile.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "spec/spec_parser.hpp"
#include "verify/verify.hpp"
#include "workload/itch_subs.hpp"

using namespace camus;

namespace {

int usage() {
  std::cerr
      << "usage: camus-lint [--spec FILE] (--rules FILE | --itch N)\n"
         "                  [--json FILE|-] [--quiet] [--warnings-as-errors]\n"
         "                  [--no-bdd] [--no-overlaps] [--no-coverage]\n"
         "                  [--no-equivalence] [--mutate K] [--compress]\n"
         "                  [--threads N] [--max-pairs N] [--budget-sram N]\n"
         "                  [--budget-tcam N] [--budget-stages N] "
         "[--budget-mcast N]\n";
  return 2;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Deterministically corrupts one table entry: redirects entry (seed mod
// size) of the first table with at least two distinct successor states to
// a different successor. Distinct nodes of a reduced MTBDD compute
// distinct functions, so the redirect is a real semantic fault — exactly
// what the equivalence checker must report as P007.
bool mutate_pipeline(table::Pipeline& pipe, std::size_t seed) {
  for (auto& t : pipe.tables) {
    const auto& es = t.entries();
    if (es.empty()) continue;
    const std::size_t pick = seed % es.size();
    for (const auto& other : es) {
      if (other.next_state == es[pick].next_state) continue;
      table::Entry e = es[pick];
      e.next_state = other.next_state;
      t.set_entry(pick, e);
      pipe.finalize();
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, rules_path, json_path;
  std::size_t itch_n = 0;
  bool quiet = false, warnings_as_errors = false, compress = false;
  std::optional<std::size_t> mutate_seed;
  std::size_t threads = 1;
  verify::VerifyOptions vopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_u64 = [&](std::uint64_t& out) {
      const char* v = next();
      if (!v) return false;
      out = std::strtoull(v, nullptr, 10);
      return true;
    };
    std::uint64_t n = 0;
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--warnings-as-errors") {
      warnings_as_errors = true;
    } else if (arg == "--no-bdd") {
      vopts.subscriptions.bdd_exact = false;
    } else if (arg == "--no-overlaps") {
      vopts.subscriptions.check_overlaps = false;
    } else if (arg == "--no-coverage") {
      vopts.coverage = false;
    } else if (arg == "--no-equivalence") {
      vopts.equivalence_check = false;
    } else if (arg == "--compress") {
      compress = true;
    } else if (arg == "--spec") {
      const char* v = next();
      if (!v) return usage();
      spec_path = v;
    } else if (arg == "--rules") {
      const char* v = next();
      if (!v) return usage();
      rules_path = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else if (arg == "--itch") {
      if (!next_u64(n)) return usage();
      itch_n = n;
    } else if (arg == "--mutate") {
      if (!next_u64(n)) return usage();
      mutate_seed = n;
    } else if (arg == "--threads") {
      if (!next_u64(n)) return usage();
      threads = n;
    } else if (arg == "--max-pairs") {
      if (!next_u64(n)) return usage();
      vopts.subscriptions.max_pairs = n;
      vopts.equivalence.max_pairs = n;
    } else if (arg == "--budget-sram") {
      if (!next_u64(vopts.pipeline.budget.sram_entries_per_stage))
        return usage();
    } else if (arg == "--budget-tcam") {
      if (!next_u64(vopts.pipeline.budget.tcam_entries_per_stage))
        return usage();
    } else if (arg == "--budget-stages") {
      if (!next_u64(vopts.pipeline.budget.max_stages)) return usage();
    } else if (arg == "--budget-mcast") {
      if (!next_u64(vopts.pipeline.budget.max_multicast_groups))
        return usage();
    } else {
      return usage();
    }
  }

  // Schema.
  spec::Schema schema;
  if (!spec_path.empty()) {
    auto text = slurp(spec_path);
    if (!text) {
      std::cerr << "camus-lint: cannot read " << spec_path << "\n";
      return 2;
    }
    auto parsed = spec::parse_spec(*text);
    if (!parsed.ok()) {
      std::cerr << "camus-lint: spec: " << parsed.error().to_string() << "\n";
      return 2;
    }
    schema = std::move(parsed).take();
  } else {
    schema = spec::make_itch_schema();
  }

  // Rules: generated workload or parsed text.
  std::vector<lang::BoundRule> rules;
  if (itch_n > 0) {
    workload::ItchSubsParams params;
    params.n_subscriptions = itch_n;
    rules = workload::generate_itch_subscriptions(schema, params).rules;
  } else {
    std::string rules_text;
    if (!rules_path.empty() && rules_path != "-") {
      auto text = slurp(rules_path);
      if (!text) {
        std::cerr << "camus-lint: cannot read " << rules_path << "\n";
        return 2;
      }
      rules_text = std::move(*text);
    } else {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      rules_text = ss.str();
    }
    auto parsed = lang::parse_rules(rules_text);
    if (!parsed.ok()) {
      std::cerr << "camus-lint: rules: " << parsed.error().to_string()
                << "\n";
      return 2;
    }
    auto bound = lang::bind_rules(parsed.value(), schema);
    if (!bound.ok()) {
      std::cerr << "camus-lint: rules: " << bound.error().to_string() << "\n";
      return 2;
    }
    rules = std::move(bound).take();
  }

  compiler::CompileOptions copts;
  copts.threads = threads;
  copts.domain_compression = compress;
  auto compiled = compiler::compile_rules(schema, rules, copts);
  if (!compiled.ok()) {
    std::cerr << "camus-lint: compile: " << compiled.error().to_string()
              << "\n";
    return 2;
  }
  compiler::Compiled c = std::move(compiled).take();

  if (mutate_seed && !mutate_pipeline(c.pipeline, *mutate_seed)) {
    std::cerr << "camus-lint: --mutate: pipeline has no redirectable entry\n";
    return 2;
  }

  verify::Report report;
  auto result = verify::verify_compiled(schema, rules, c, report, vopts);
  if (!result.ok()) {
    std::cerr << "camus-lint: " << result.error().to_string() << "\n";
    return 2;
  }

  if (!quiet) {
    // With --json -, stdout is the machine-readable channel: keep it
    // clean and put the human-readable report on stderr.
    std::ostream& hout = json_path == "-" ? std::cerr : std::cout;
    hout << report.to_text();
    const auto& v = result.value();
    hout << "checked " << rules.size() << " rules ("
         << v.subscription_stats.pairs_considered << " pairs, "
         << v.subscription_stats.bdd_checks << " BDD-exact), "
         << v.pipeline_stats.entries_checked << " table entries";
    if (vopts.equivalence_check) {
      hout << "; equivalence "
           << (v.equivalence.proven_equivalent()
                   ? "PROVEN"
                   : (v.equivalence.completed ? "REFUTED" : "UNDECIDED"))
           << " (" << v.equivalence.regions_checked << " regions)";
    }
    hout << "\n";
  }

  if (!json_path.empty()) {
    if (json_path == "-") {
      std::cout << report.to_json() << "\n";
    } else {
      std::ofstream out(json_path);
      out << report.to_json() << "\n";
      if (!out) {
        std::cerr << "camus-lint: cannot write " << json_path << "\n";
        return 2;
      }
    }
  }

  return report.exit_code(warnings_as_errors);
}
