// feed_to_pcap — exports a generated ITCH market-data feed as a standard
// pcap capture (inspectable with tcpdump/wireshark), and optionally
// replays an existing capture through a compiled subscription switch.
//
//   feed_to_pcap out.pcap [n_messages] [nasdaq|synthetic]
//   feed_to_pcap --replay trace.pcap "stock == GOOGL : fwd(1)" ...
#include <cstring>
#include <iostream>

#include "compiler/compile.hpp"
#include "proto/pcap.hpp"
#include "pubsub/endpoints.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"

using namespace camus;

namespace {

int generate(const std::string& path, std::size_t n, bool nasdaq) {
  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.n_messages = n;
  fp.mode = nasdaq ? workload::FeedMode::kNasdaqReplay
                   : workload::FeedMode::kSynthetic;
  fp.watched_fraction = nasdaq ? 0.005 : 0.05;
  const auto feed = workload::generate_feed(fp);

  proto::PcapWriter w;
  pubsub::Publisher pub;
  for (const auto& fm : feed.messages) w.add(fm.t_us, pub.publish(fm.msg));
  if (!w.write_file(path)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << w.packet_count() << " packets ("
            << w.bytes().size() << " bytes) to " << path << "\n"
            << feed.watched_count << " messages for GOOGL\n";
  return 0;
}

int replay(const std::string& path, const std::string& rules) {
  auto packets = proto::read_pcap_file(path);
  if (!packets) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_source(schema, rules);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.error().to_string() << "\n";
    return 1;
  }
  switchsim::Switch sw(schema, compiled.value().pipeline);
  std::map<std::uint16_t, std::uint64_t> per_port;
  for (const auto& p : *packets) {
    for (const auto& copy : sw.process(p.frame, p.timestamp_us))
      ++per_port[copy.port];
  }
  const auto& c = sw.counters();
  std::cout << "replayed " << c.rx_frames << " packets: " << c.matched
            << " matched, " << c.dropped << " dropped, " << c.parse_errors
            << " parse errors\n";
  for (const auto& [port, n] : per_port)
    std::cout << "  port " << port << ": " << n << " packets\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--replay") == 0) {
    std::string rules;
    for (int i = 3; i < argc; ++i) {
      rules += argv[i];
      rules += "\n";
    }
    if (rules.empty()) rules = "stock == GOOGL : fwd(1)";
    return replay(argv[2], rules);
  }
  if (argc < 2) {
    std::cerr << "usage: feed_to_pcap OUT.pcap [n_messages] "
                 "[nasdaq|synthetic]\n       feed_to_pcap --replay IN.pcap "
                 "[rule]...\n";
    return 2;
  }
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 10000;
  const bool nasdaq = argc > 3 && std::strcmp(argv[3], "nasdaq") == 0;
  return generate(argv[1], n, nasdaq);
}
