// Identifier-based routing (paper §1: "operators are deploying
// identifier-based routing (e.g., Identifier Locator Addressing)").
//
// Containers are addressed by a stable 64-bit identifier; their locator
// (the switch port of the host currently running them) changes when they
// migrate. Each identifier is one packet subscription; migration is a
// remove+add handled by the incremental compiler, and the printed delta is
// the control-plane update cost — a handful of entries, not a table
// rewrite.
#include <iostream>
#include <map>

#include "compiler/incremental.hpp"
#include "spec/spec_parser.hpp"
#include "util/stats.hpp"

using namespace camus;

namespace {

constexpr std::string_view kIlaSpec = R"(
// ILA-style header: flows carry a stable identifier; the network resolves
// it to the current locator (egress port) in the data plane.
header_type ila_t {
    fields {
        identifier: 64;
        flow_label: 20;
    }
}
header ila_t ila;
@query_field_exact(ila.identifier)
)";

}  // namespace

int main() {
  auto schema = spec::parse_spec(kIlaSpec);
  if (!schema.ok()) {
    std::cerr << schema.error().to_string() << "\n";
    return 1;
  }

  compiler::IncrementalCompiler inc(schema.value());

  // Initial placement: 8 services spread over 4 hosts.
  std::map<std::uint64_t, compiler::IncrementalCompiler::SubscriptionId> ids;
  std::cout << "Initial placement:\n";
  for (std::uint64_t svc = 1; svc <= 8; ++svc) {
    const std::uint16_t port = static_cast<std::uint16_t>(1 + (svc - 1) % 4);
    const std::string rule = "identifier == " + std::to_string(0xC0DE0000 + svc) +
                             " : fwd(" + std::to_string(port) + ")";
    auto id = inc.add_source(rule);
    if (!id.ok()) {
      std::cerr << id.error().to_string() << "\n";
      return 1;
    }
    ids[svc] = id.value();
    std::cout << "  service " << svc << " -> host port " << port << "\n";
  }
  auto first = inc.commit();
  if (!first.ok()) {
    std::cerr << first.error().to_string() << "\n";
    return 1;
  }
  std::cout << "installed " << first.value().total_entries
            << " table entries\n\n";

  auto classify = [&](std::uint64_t svc) {
    lang::Env env;
    env.fields = {0xC0DE0000 + svc, 0};
    const auto& a = inc.pipeline().value()->evaluate_actions(env);
    return a.ports.empty() ? 0 : a.ports[0];
  };
  std::cout << "service 3 currently routed to port " << classify(3) << "\n\n";

  // Migrate service 3 from its host to port 4: remove + re-add.
  std::cout << "Migrating service 3 to host port 4...\n";
  inc.remove(ids[3]);
  auto id = inc.add_source("identifier == " + std::to_string(0xC0DE0003) +
                           " : fwd(4)");
  if (!id.ok()) return 1;
  auto delta = inc.commit();
  if (!delta.ok()) {
    std::cerr << delta.error().to_string() << "\n";
    return 1;
  }
  std::cout << "control-plane delta (" << delta.value().ops.size()
            << " ops, " << delta.value().reused_entries
            << " entries untouched):\n";
  for (const auto& op : delta.value().ops)
    std::cout << "  " << op.to_string() << "\n";
  std::cout << "\nservice 3 now routed to port " << classify(3) << "\n";
  std::cout << "service 7 unaffected, still on port " << classify(7) << "\n";
  return 0;
}
