# Empty compiler generated dependencies file for fanout_bandwidth.
# This may be replaced when dependencies are built.
