file(REMOVE_RECURSE
  "CMakeFiles/fanout_bandwidth.dir/fanout_bandwidth.cpp.o"
  "CMakeFiles/fanout_bandwidth.dir/fanout_bandwidth.cpp.o.d"
  "fanout_bandwidth"
  "fanout_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanout_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
