file(REMOVE_RECURSE
  "CMakeFiles/ablation_reductions.dir/ablation_reductions.cpp.o"
  "CMakeFiles/ablation_reductions.dir/ablation_reductions.cpp.o.d"
  "ablation_reductions"
  "ablation_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
