file(REMOVE_RECURSE
  "CMakeFiles/ablation_ordering.dir/ablation_ordering.cpp.o"
  "CMakeFiles/ablation_ordering.dir/ablation_ordering.cpp.o.d"
  "ablation_ordering"
  "ablation_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
