# Empty compiler generated dependencies file for scaling_subscribers.
# This may be replaced when dependencies are built.
