file(REMOVE_RECURSE
  "CMakeFiles/scaling_subscribers.dir/scaling_subscribers.cpp.o"
  "CMakeFiles/scaling_subscribers.dir/scaling_subscribers.cpp.o.d"
  "scaling_subscribers"
  "scaling_subscribers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_subscribers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
