# Empty dependencies file for fig5a_subscriptions.
# This may be replaced when dependencies are built.
