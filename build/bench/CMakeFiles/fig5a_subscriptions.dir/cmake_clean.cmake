file(REMOVE_RECURSE
  "CMakeFiles/fig5a_subscriptions.dir/fig5a_subscriptions.cpp.o"
  "CMakeFiles/fig5a_subscriptions.dir/fig5a_subscriptions.cpp.o.d"
  "fig5a_subscriptions"
  "fig5a_subscriptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_subscriptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
