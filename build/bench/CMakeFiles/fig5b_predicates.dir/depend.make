# Empty dependencies file for fig5b_predicates.
# This may be replaced when dependencies are built.
