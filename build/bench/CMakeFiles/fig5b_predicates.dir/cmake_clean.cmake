file(REMOVE_RECURSE
  "CMakeFiles/fig5b_predicates.dir/fig5b_predicates.cpp.o"
  "CMakeFiles/fig5b_predicates.dir/fig5b_predicates.cpp.o.d"
  "fig5b_predicates"
  "fig5b_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
