file(REMOVE_RECURSE
  "CMakeFiles/fig5c_compile_time.dir/fig5c_compile_time.cpp.o"
  "CMakeFiles/fig5c_compile_time.dir/fig5c_compile_time.cpp.o.d"
  "fig5c_compile_time"
  "fig5c_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
