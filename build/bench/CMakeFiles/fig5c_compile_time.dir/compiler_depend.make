# Empty compiler generated dependencies file for fig5c_compile_time.
# This may be replaced when dependencies are built.
