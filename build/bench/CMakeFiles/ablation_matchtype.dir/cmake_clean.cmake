file(REMOVE_RECURSE
  "CMakeFiles/ablation_matchtype.dir/ablation_matchtype.cpp.o"
  "CMakeFiles/ablation_matchtype.dir/ablation_matchtype.cpp.o.d"
  "ablation_matchtype"
  "ablation_matchtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matchtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
