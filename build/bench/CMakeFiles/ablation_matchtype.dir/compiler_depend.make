# Empty compiler generated dependencies file for ablation_matchtype.
# This may be replaced when dependencies are built.
