file(REMOVE_RECURSE
  "CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o"
  "CMakeFiles/ablation_incremental.dir/ablation_incremental.cpp.o.d"
  "ablation_incremental"
  "ablation_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
