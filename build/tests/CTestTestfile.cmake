# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_interval[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_lang[1]_include.cmake")
include("/root/repo/build/tests/test_dnf[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_core[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_detail[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_switchsim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_pubsub[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_minmax[1]_include.cmake")
include("/root/repo/build/tests/test_message_split[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_generic[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_itch_types[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_interactions[1]_include.cmake")
