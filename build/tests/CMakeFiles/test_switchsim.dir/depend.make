# Empty dependencies file for test_switchsim.
# This may be replaced when dependencies are built.
