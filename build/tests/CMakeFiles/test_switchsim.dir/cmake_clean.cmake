file(REMOVE_RECURSE
  "CMakeFiles/test_switchsim.dir/test_switchsim.cpp.o"
  "CMakeFiles/test_switchsim.dir/test_switchsim.cpp.o.d"
  "test_switchsim"
  "test_switchsim.pdb"
  "test_switchsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
