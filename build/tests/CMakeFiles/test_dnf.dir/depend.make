# Empty dependencies file for test_dnf.
# This may be replaced when dependencies are built.
