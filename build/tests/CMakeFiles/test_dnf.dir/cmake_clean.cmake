file(REMOVE_RECURSE
  "CMakeFiles/test_dnf.dir/test_dnf.cpp.o"
  "CMakeFiles/test_dnf.dir/test_dnf.cpp.o.d"
  "test_dnf"
  "test_dnf.pdb"
  "test_dnf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
