# Empty dependencies file for test_interactions.
# This may be replaced when dependencies are built.
