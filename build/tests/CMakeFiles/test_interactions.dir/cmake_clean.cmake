file(REMOVE_RECURSE
  "CMakeFiles/test_interactions.dir/test_interactions.cpp.o"
  "CMakeFiles/test_interactions.dir/test_interactions.cpp.o.d"
  "test_interactions"
  "test_interactions.pdb"
  "test_interactions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
