file(REMOVE_RECURSE
  "CMakeFiles/test_minmax.dir/test_minmax.cpp.o"
  "CMakeFiles/test_minmax.dir/test_minmax.cpp.o.d"
  "test_minmax"
  "test_minmax.pdb"
  "test_minmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
