# Empty dependencies file for test_minmax.
# This may be replaced when dependencies are built.
