# Empty dependencies file for test_pubsub.
# This may be replaced when dependencies are built.
