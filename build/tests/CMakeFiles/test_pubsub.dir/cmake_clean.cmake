file(REMOVE_RECURSE
  "CMakeFiles/test_pubsub.dir/test_pubsub.cpp.o"
  "CMakeFiles/test_pubsub.dir/test_pubsub.cpp.o.d"
  "test_pubsub"
  "test_pubsub.pdb"
  "test_pubsub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
