file(REMOVE_RECURSE
  "CMakeFiles/test_proto.dir/test_proto.cpp.o"
  "CMakeFiles/test_proto.dir/test_proto.cpp.o.d"
  "test_proto"
  "test_proto.pdb"
  "test_proto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
