
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_explain.cpp" "tests/CMakeFiles/test_explain.dir/test_explain.cpp.o" "gcc" "tests/CMakeFiles/test_explain.dir/test_explain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/camus_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/camus_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/camus_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/camus_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/camus_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/camus_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/camus_table.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/camus_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/camus_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/camus_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/camus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
