file(REMOVE_RECURSE
  "CMakeFiles/test_explain.dir/test_explain.cpp.o"
  "CMakeFiles/test_explain.dir/test_explain.cpp.o.d"
  "test_explain"
  "test_explain.pdb"
  "test_explain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
