# Empty compiler generated dependencies file for test_bdd.
# This may be replaced when dependencies are built.
