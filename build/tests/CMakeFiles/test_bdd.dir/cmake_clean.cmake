file(REMOVE_RECURSE
  "CMakeFiles/test_bdd.dir/test_bdd.cpp.o"
  "CMakeFiles/test_bdd.dir/test_bdd.cpp.o.d"
  "test_bdd"
  "test_bdd.pdb"
  "test_bdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
