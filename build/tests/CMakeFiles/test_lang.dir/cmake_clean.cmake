file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/test_lang.cpp.o"
  "CMakeFiles/test_lang.dir/test_lang.cpp.o.d"
  "test_lang"
  "test_lang.pdb"
  "test_lang[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
