# Empty dependencies file for test_lang.
# This may be replaced when dependencies are built.
