file(REMOVE_RECURSE
  "CMakeFiles/test_generic.dir/test_generic.cpp.o"
  "CMakeFiles/test_generic.dir/test_generic.cpp.o.d"
  "test_generic"
  "test_generic.pdb"
  "test_generic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
