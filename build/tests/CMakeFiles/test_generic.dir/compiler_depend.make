# Empty compiler generated dependencies file for test_generic.
# This may be replaced when dependencies are built.
