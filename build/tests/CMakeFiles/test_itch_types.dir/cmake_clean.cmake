file(REMOVE_RECURSE
  "CMakeFiles/test_itch_types.dir/test_itch_types.cpp.o"
  "CMakeFiles/test_itch_types.dir/test_itch_types.cpp.o.d"
  "test_itch_types"
  "test_itch_types.pdb"
  "test_itch_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itch_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
