# Empty dependencies file for test_itch_types.
# This may be replaced when dependencies are built.
