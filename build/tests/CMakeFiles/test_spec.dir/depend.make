# Empty dependencies file for test_spec.
# This may be replaced when dependencies are built.
