# Empty dependencies file for test_message_split.
# This may be replaced when dependencies are built.
