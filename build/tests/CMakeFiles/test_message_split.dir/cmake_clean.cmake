file(REMOVE_RECURSE
  "CMakeFiles/test_message_split.dir/test_message_split.cpp.o"
  "CMakeFiles/test_message_split.dir/test_message_split.cpp.o.d"
  "test_message_split"
  "test_message_split.pdb"
  "test_message_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
