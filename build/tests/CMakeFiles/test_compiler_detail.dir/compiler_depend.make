# Empty compiler generated dependencies file for test_compiler_detail.
# This may be replaced when dependencies are built.
