file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_detail.dir/test_compiler_detail.cpp.o"
  "CMakeFiles/test_compiler_detail.dir/test_compiler_detail.cpp.o.d"
  "test_compiler_detail"
  "test_compiler_detail.pdb"
  "test_compiler_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
