file(REMOVE_RECURSE
  "CMakeFiles/test_pcap.dir/test_pcap.cpp.o"
  "CMakeFiles/test_pcap.dir/test_pcap.cpp.o.d"
  "test_pcap"
  "test_pcap.pdb"
  "test_pcap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
