file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_core.dir/test_compiler_core.cpp.o"
  "CMakeFiles/test_compiler_core.dir/test_compiler_core.cpp.o.d"
  "test_compiler_core"
  "test_compiler_core.pdb"
  "test_compiler_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
