# Empty compiler generated dependencies file for test_stress.
# This may be replaced when dependencies are built.
