file(REMOVE_RECURSE
  "CMakeFiles/camus_switchsim.dir/extract.cpp.o"
  "CMakeFiles/camus_switchsim.dir/extract.cpp.o.d"
  "CMakeFiles/camus_switchsim.dir/registers.cpp.o"
  "CMakeFiles/camus_switchsim.dir/registers.cpp.o.d"
  "CMakeFiles/camus_switchsim.dir/switch.cpp.o"
  "CMakeFiles/camus_switchsim.dir/switch.cpp.o.d"
  "libcamus_switchsim.a"
  "libcamus_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
