file(REMOVE_RECURSE
  "libcamus_switchsim.a"
)
