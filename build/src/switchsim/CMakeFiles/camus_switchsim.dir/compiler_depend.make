# Empty compiler generated dependencies file for camus_switchsim.
# This may be replaced when dependencies are built.
