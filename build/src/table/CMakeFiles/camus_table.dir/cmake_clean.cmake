file(REMOVE_RECURSE
  "CMakeFiles/camus_table.dir/pipeline.cpp.o"
  "CMakeFiles/camus_table.dir/pipeline.cpp.o.d"
  "CMakeFiles/camus_table.dir/serialize.cpp.o"
  "CMakeFiles/camus_table.dir/serialize.cpp.o.d"
  "CMakeFiles/camus_table.dir/table.cpp.o"
  "CMakeFiles/camus_table.dir/table.cpp.o.d"
  "libcamus_table.a"
  "libcamus_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
