file(REMOVE_RECURSE
  "libcamus_table.a"
)
