# Empty compiler generated dependencies file for camus_table.
# This may be replaced when dependencies are built.
