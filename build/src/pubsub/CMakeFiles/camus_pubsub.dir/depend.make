# Empty dependencies file for camus_pubsub.
# This may be replaced when dependencies are built.
