file(REMOVE_RECURSE
  "CMakeFiles/camus_pubsub.dir/controller.cpp.o"
  "CMakeFiles/camus_pubsub.dir/controller.cpp.o.d"
  "CMakeFiles/camus_pubsub.dir/endpoints.cpp.o"
  "CMakeFiles/camus_pubsub.dir/endpoints.cpp.o.d"
  "libcamus_pubsub.a"
  "libcamus_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
