file(REMOVE_RECURSE
  "libcamus_pubsub.a"
)
