
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/itch_spec.cpp" "src/spec/CMakeFiles/camus_spec.dir/itch_spec.cpp.o" "gcc" "src/spec/CMakeFiles/camus_spec.dir/itch_spec.cpp.o.d"
  "/root/repo/src/spec/schema.cpp" "src/spec/CMakeFiles/camus_spec.dir/schema.cpp.o" "gcc" "src/spec/CMakeFiles/camus_spec.dir/schema.cpp.o.d"
  "/root/repo/src/spec/spec_parser.cpp" "src/spec/CMakeFiles/camus_spec.dir/spec_parser.cpp.o" "gcc" "src/spec/CMakeFiles/camus_spec.dir/spec_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/camus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
