# Empty dependencies file for camus_spec.
# This may be replaced when dependencies are built.
