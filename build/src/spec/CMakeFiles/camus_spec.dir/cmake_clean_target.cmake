file(REMOVE_RECURSE
  "libcamus_spec.a"
)
