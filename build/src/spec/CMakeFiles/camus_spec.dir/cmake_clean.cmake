file(REMOVE_RECURSE
  "CMakeFiles/camus_spec.dir/itch_spec.cpp.o"
  "CMakeFiles/camus_spec.dir/itch_spec.cpp.o.d"
  "CMakeFiles/camus_spec.dir/schema.cpp.o"
  "CMakeFiles/camus_spec.dir/schema.cpp.o.d"
  "CMakeFiles/camus_spec.dir/spec_parser.cpp.o"
  "CMakeFiles/camus_spec.dir/spec_parser.cpp.o.d"
  "libcamus_spec.a"
  "libcamus_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
