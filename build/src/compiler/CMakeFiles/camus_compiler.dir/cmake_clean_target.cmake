file(REMOVE_RECURSE
  "libcamus_compiler.a"
)
