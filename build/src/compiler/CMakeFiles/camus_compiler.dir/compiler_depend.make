# Empty compiler generated dependencies file for camus_compiler.
# This may be replaced when dependencies are built.
