
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/algorithm1.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/algorithm1.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/algorithm1.cpp.o.d"
  "/root/repo/src/compiler/analysis.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/analysis.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/analysis.cpp.o.d"
  "/root/repo/src/compiler/compile.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/compile.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/compile.cpp.o.d"
  "/root/repo/src/compiler/compress.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/compress.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/compress.cpp.o.d"
  "/root/repo/src/compiler/field_order.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/field_order.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/field_order.cpp.o.d"
  "/root/repo/src/compiler/incremental.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/incremental.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/incremental.cpp.o.d"
  "/root/repo/src/compiler/p4gen.cpp" "src/compiler/CMakeFiles/camus_compiler.dir/p4gen.cpp.o" "gcc" "src/compiler/CMakeFiles/camus_compiler.dir/p4gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/camus_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/camus_table.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/camus_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/camus_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/camus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
