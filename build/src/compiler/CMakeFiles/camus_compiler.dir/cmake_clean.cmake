file(REMOVE_RECURSE
  "CMakeFiles/camus_compiler.dir/algorithm1.cpp.o"
  "CMakeFiles/camus_compiler.dir/algorithm1.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/analysis.cpp.o"
  "CMakeFiles/camus_compiler.dir/analysis.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/compile.cpp.o"
  "CMakeFiles/camus_compiler.dir/compile.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/compress.cpp.o"
  "CMakeFiles/camus_compiler.dir/compress.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/field_order.cpp.o"
  "CMakeFiles/camus_compiler.dir/field_order.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/incremental.cpp.o"
  "CMakeFiles/camus_compiler.dir/incremental.cpp.o.d"
  "CMakeFiles/camus_compiler.dir/p4gen.cpp.o"
  "CMakeFiles/camus_compiler.dir/p4gen.cpp.o.d"
  "libcamus_compiler.a"
  "libcamus_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
