# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("lang")
subdirs("spec")
subdirs("bdd")
subdirs("table")
subdirs("compiler")
subdirs("proto")
subdirs("switchsim")
subdirs("workload")
subdirs("baseline")
subdirs("netsim")
subdirs("pubsub")
