file(REMOVE_RECURSE
  "libcamus_baseline.a"
)
