file(REMOVE_RECURSE
  "CMakeFiles/camus_baseline.dir/matcher.cpp.o"
  "CMakeFiles/camus_baseline.dir/matcher.cpp.o.d"
  "libcamus_baseline.a"
  "libcamus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
