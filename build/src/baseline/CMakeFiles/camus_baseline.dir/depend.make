# Empty dependencies file for camus_baseline.
# This may be replaced when dependencies are built.
