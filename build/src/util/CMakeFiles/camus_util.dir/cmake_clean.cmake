file(REMOVE_RECURSE
  "CMakeFiles/camus_util.dir/intern.cpp.o"
  "CMakeFiles/camus_util.dir/intern.cpp.o.d"
  "CMakeFiles/camus_util.dir/interval.cpp.o"
  "CMakeFiles/camus_util.dir/interval.cpp.o.d"
  "CMakeFiles/camus_util.dir/rng.cpp.o"
  "CMakeFiles/camus_util.dir/rng.cpp.o.d"
  "CMakeFiles/camus_util.dir/stats.cpp.o"
  "CMakeFiles/camus_util.dir/stats.cpp.o.d"
  "libcamus_util.a"
  "libcamus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
