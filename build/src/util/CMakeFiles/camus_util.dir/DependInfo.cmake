
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/intern.cpp" "src/util/CMakeFiles/camus_util.dir/intern.cpp.o" "gcc" "src/util/CMakeFiles/camus_util.dir/intern.cpp.o.d"
  "/root/repo/src/util/interval.cpp" "src/util/CMakeFiles/camus_util.dir/interval.cpp.o" "gcc" "src/util/CMakeFiles/camus_util.dir/interval.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/camus_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/camus_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/camus_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/camus_util.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
