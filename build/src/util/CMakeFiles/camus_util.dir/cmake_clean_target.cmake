file(REMOVE_RECURSE
  "libcamus_util.a"
)
