# Empty compiler generated dependencies file for camus_util.
# This may be replaced when dependencies are built.
