file(REMOVE_RECURSE
  "libcamus_netsim.a"
)
