# Empty compiler generated dependencies file for camus_netsim.
# This may be replaced when dependencies are built.
