file(REMOVE_RECURSE
  "CMakeFiles/camus_netsim.dir/market_experiment.cpp.o"
  "CMakeFiles/camus_netsim.dir/market_experiment.cpp.o.d"
  "CMakeFiles/camus_netsim.dir/sim.cpp.o"
  "CMakeFiles/camus_netsim.dir/sim.cpp.o.d"
  "libcamus_netsim.a"
  "libcamus_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
