
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/generic.cpp" "src/proto/CMakeFiles/camus_proto.dir/generic.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/generic.cpp.o.d"
  "/root/repo/src/proto/headers.cpp" "src/proto/CMakeFiles/camus_proto.dir/headers.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/headers.cpp.o.d"
  "/root/repo/src/proto/itch.cpp" "src/proto/CMakeFiles/camus_proto.dir/itch.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/itch.cpp.o.d"
  "/root/repo/src/proto/packet.cpp" "src/proto/CMakeFiles/camus_proto.dir/packet.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/packet.cpp.o.d"
  "/root/repo/src/proto/pcap.cpp" "src/proto/CMakeFiles/camus_proto.dir/pcap.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/pcap.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/proto/CMakeFiles/camus_proto.dir/wire.cpp.o" "gcc" "src/proto/CMakeFiles/camus_proto.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/camus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
