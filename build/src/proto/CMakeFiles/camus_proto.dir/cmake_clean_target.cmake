file(REMOVE_RECURSE
  "libcamus_proto.a"
)
