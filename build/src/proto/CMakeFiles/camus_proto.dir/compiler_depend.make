# Empty compiler generated dependencies file for camus_proto.
# This may be replaced when dependencies are built.
