file(REMOVE_RECURSE
  "CMakeFiles/camus_proto.dir/generic.cpp.o"
  "CMakeFiles/camus_proto.dir/generic.cpp.o.d"
  "CMakeFiles/camus_proto.dir/headers.cpp.o"
  "CMakeFiles/camus_proto.dir/headers.cpp.o.d"
  "CMakeFiles/camus_proto.dir/itch.cpp.o"
  "CMakeFiles/camus_proto.dir/itch.cpp.o.d"
  "CMakeFiles/camus_proto.dir/packet.cpp.o"
  "CMakeFiles/camus_proto.dir/packet.cpp.o.d"
  "CMakeFiles/camus_proto.dir/pcap.cpp.o"
  "CMakeFiles/camus_proto.dir/pcap.cpp.o.d"
  "CMakeFiles/camus_proto.dir/wire.cpp.o"
  "CMakeFiles/camus_proto.dir/wire.cpp.o.d"
  "libcamus_proto.a"
  "libcamus_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
