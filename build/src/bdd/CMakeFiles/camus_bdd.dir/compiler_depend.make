# Empty compiler generated dependencies file for camus_bdd.
# This may be replaced when dependencies are built.
