file(REMOVE_RECURSE
  "CMakeFiles/camus_bdd.dir/bdd.cpp.o"
  "CMakeFiles/camus_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/camus_bdd.dir/order.cpp.o"
  "CMakeFiles/camus_bdd.dir/order.cpp.o.d"
  "libcamus_bdd.a"
  "libcamus_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
