file(REMOVE_RECURSE
  "libcamus_bdd.a"
)
