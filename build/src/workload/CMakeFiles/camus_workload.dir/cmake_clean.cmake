file(REMOVE_RECURSE
  "CMakeFiles/camus_workload.dir/feed.cpp.o"
  "CMakeFiles/camus_workload.dir/feed.cpp.o.d"
  "CMakeFiles/camus_workload.dir/itch_subs.cpp.o"
  "CMakeFiles/camus_workload.dir/itch_subs.cpp.o.d"
  "CMakeFiles/camus_workload.dir/siena.cpp.o"
  "CMakeFiles/camus_workload.dir/siena.cpp.o.d"
  "libcamus_workload.a"
  "libcamus_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
