file(REMOVE_RECURSE
  "libcamus_workload.a"
)
