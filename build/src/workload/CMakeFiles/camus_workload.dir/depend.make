# Empty dependencies file for camus_workload.
# This may be replaced when dependencies are built.
