# Empty compiler generated dependencies file for camus_workload.
# This may be replaced when dependencies are built.
