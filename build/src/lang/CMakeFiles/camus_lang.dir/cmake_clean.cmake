file(REMOVE_RECURSE
  "CMakeFiles/camus_lang.dir/ast.cpp.o"
  "CMakeFiles/camus_lang.dir/ast.cpp.o.d"
  "CMakeFiles/camus_lang.dir/bound.cpp.o"
  "CMakeFiles/camus_lang.dir/bound.cpp.o.d"
  "CMakeFiles/camus_lang.dir/dnf.cpp.o"
  "CMakeFiles/camus_lang.dir/dnf.cpp.o.d"
  "CMakeFiles/camus_lang.dir/lexer.cpp.o"
  "CMakeFiles/camus_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/camus_lang.dir/parser.cpp.o"
  "CMakeFiles/camus_lang.dir/parser.cpp.o.d"
  "libcamus_lang.a"
  "libcamus_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camus_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
