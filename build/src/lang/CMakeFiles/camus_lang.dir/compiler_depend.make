# Empty compiler generated dependencies file for camus_lang.
# This may be replaced when dependencies are built.
