file(REMOVE_RECURSE
  "libcamus_lang.a"
)
