# Empty compiler generated dependencies file for netcache_routing.
# This may be replaced when dependencies are built.
