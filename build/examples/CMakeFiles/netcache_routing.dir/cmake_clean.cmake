file(REMOVE_RECURSE
  "CMakeFiles/netcache_routing.dir/netcache_routing.cpp.o"
  "CMakeFiles/netcache_routing.dir/netcache_routing.cpp.o.d"
  "netcache_routing"
  "netcache_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcache_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
