# Empty dependencies file for ila_routing.
# This may be replaced when dependencies are built.
