file(REMOVE_RECURSE
  "CMakeFiles/ila_routing.dir/ila_routing.cpp.o"
  "CMakeFiles/ila_routing.dir/ila_routing.cpp.o.d"
  "ila_routing"
  "ila_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ila_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
