# Empty dependencies file for itch_pubsub.
# This may be replaced when dependencies are built.
