file(REMOVE_RECURSE
  "CMakeFiles/itch_pubsub.dir/itch_pubsub.cpp.o"
  "CMakeFiles/itch_pubsub.dir/itch_pubsub.cpp.o.d"
  "itch_pubsub"
  "itch_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itch_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
