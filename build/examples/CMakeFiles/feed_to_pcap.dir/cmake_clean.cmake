file(REMOVE_RECURSE
  "CMakeFiles/feed_to_pcap.dir/feed_to_pcap.cpp.o"
  "CMakeFiles/feed_to_pcap.dir/feed_to_pcap.cpp.o.d"
  "feed_to_pcap"
  "feed_to_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_to_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
