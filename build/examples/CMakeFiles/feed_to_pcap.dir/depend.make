# Empty dependencies file for feed_to_pcap.
# This may be replaced when dependencies are built.
