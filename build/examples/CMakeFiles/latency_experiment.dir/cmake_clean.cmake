file(REMOVE_RECURSE
  "CMakeFiles/latency_experiment.dir/latency_experiment.cpp.o"
  "CMakeFiles/latency_experiment.dir/latency_experiment.cpp.o.d"
  "latency_experiment"
  "latency_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
