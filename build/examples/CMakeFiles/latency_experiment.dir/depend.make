# Empty dependencies file for latency_experiment.
# This may be replaced when dependencies are built.
