file(REMOVE_RECURSE
  "CMakeFiles/camusc.dir/camusc.cpp.o"
  "CMakeFiles/camusc.dir/camusc.cpp.o.d"
  "camusc"
  "camusc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camusc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
