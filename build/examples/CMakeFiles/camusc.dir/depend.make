# Empty dependencies file for camusc.
# This may be replaced when dependencies are built.
