file(REMOVE_RECURSE
  "CMakeFiles/p4_codegen.dir/p4_codegen.cpp.o"
  "CMakeFiles/p4_codegen.dir/p4_codegen.cpp.o.d"
  "p4_codegen"
  "p4_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
