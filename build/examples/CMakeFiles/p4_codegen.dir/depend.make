# Empty dependencies file for p4_codegen.
# This may be replaced when dependencies are built.
