// Switch simulator: registers with tumbling windows, field extraction,
// end-to-end frame processing with compiled pipelines, stateful rules.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "util/intern.hpp"

namespace {

using namespace camus;

proto::ItchAddOrder order(std::string stock, std::uint32_t shares,
                          std::uint32_t price) {
  proto::ItchAddOrder m;
  m.stock = std::move(stock);
  m.shares = shares;
  m.price = price;
  m.side = 'B';
  return m;
}

std::vector<std::uint8_t> frame_for(const proto::ItchAddOrder& m) {
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  return proto::encode_market_data_packet(eth, 1, 2, mold, {m});
}

// ---- registers -----------------------------------------------------------

TEST(StateRegisters, CounterTumblingWindow) {
  auto schema = spec::make_itch_schema();  // my_counter window = 100us
  switchsim::StateRegisters regs(schema);

  EXPECT_EQ(regs.read(0, 0), 0u);
  regs.apply_update(0, {0, 0, 0}, 10);
  regs.apply_update(0, {0, 0, 0}, 20);
  EXPECT_EQ(regs.read(0, 50), 2u);
  // Window [100, 200) resets the count.
  EXPECT_EQ(regs.read(0, 100), 0u);
  regs.apply_update(0, {0, 0, 0}, 150);
  EXPECT_EQ(regs.read(0, 199), 1u);
  EXPECT_EQ(regs.read(0, 200), 0u);
}

TEST(StateRegisters, AvgAggregates) {
  auto schema = spec::make_itch_schema();  // avg_price over price (field 2)
  switchsim::StateRegisters regs(schema);
  // fields: shares, stock, price
  regs.apply_update(1, {0, 0, 100}, 10);
  regs.apply_update(1, {0, 0, 200}, 20);
  EXPECT_EQ(regs.read(1, 50), 150u);
  regs.apply_update(1, {0, 0, 50}, 60);
  EXPECT_EQ(regs.read(1, 90), (100u + 200u + 50u) / 3u);
  // New window: empty average reads 0.
  EXPECT_EQ(regs.read(1, 101), 0u);
}

TEST(StateRegisters, SnapshotOrder) {
  auto schema = spec::make_itch_schema();
  switchsim::StateRegisters regs(schema);
  regs.apply_update(0, {0, 0, 0}, 5);
  regs.apply_update(1, {0, 0, 80}, 5);
  const auto snap = regs.snapshot(10);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], 1u);   // my_counter
  EXPECT_EQ(snap[1], 80u);  // avg_price
}

TEST(StateRegisters, CumulativeWhenWindowZero) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("x", 32);
  s.mark_queryable(f, spec::MatchHint::kRange);
  s.add_state_var("total", spec::StateFunc::kSum, f, 0);
  switchsim::StateRegisters regs(s);
  regs.apply_update(0, {7}, 10);
  regs.apply_update(0, {5}, 1000000);
  EXPECT_EQ(regs.read(0, 99999999), 12u);
}

// ---- extractor -------------------------------------------------------------

TEST(ItchFieldExtractor, MapsNamedFields) {
  auto schema = spec::make_itch_schema();
  switchsim::ItchFieldExtractor ex(schema);
  const auto m = order("GOOGL", 500, 123456);
  const auto fields = ex.extract(m);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], 500u);                                // shares
  EXPECT_EQ(fields[1], util::encode_symbol("GOOGL"));        // stock
  EXPECT_EQ(fields[2], 123456u);                             // price
}

TEST(ItchFieldExtractor, MasksToFieldWidth) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("price", 8);  // deliberately narrow
  s.mark_queryable(f, spec::MatchHint::kRange);
  switchsim::ItchFieldExtractor ex(s);
  const auto fields = ex.extract(order("X", 1, 0x1ff));
  EXPECT_EQ(fields[0], 0xffu);
}

// ---- switch ---------------------------------------------------------------

TEST(Switch, ForwardsPerCompiledRules) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_source(schema, R"(
    stock == GOOGL : fwd(1)
    stock == MSFT and price > 1000 : fwd(2)
    shares > 900 : fwd(3)
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  switchsim::Switch sw(schema, compiled.value().pipeline);

  auto ports_of = [&](const proto::ItchAddOrder& m) {
    std::vector<std::uint16_t> out;
    for (const auto& c : sw.process(frame_for(m), 0)) out.push_back(c.port);
    return out;
  };

  EXPECT_EQ(ports_of(order("GOOGL", 10, 5)), (std::vector<std::uint16_t>{1}));
  EXPECT_EQ(ports_of(order("MSFT", 10, 2000)),
            (std::vector<std::uint16_t>{2}));
  EXPECT_TRUE(ports_of(order("MSFT", 10, 1000)).empty());
  EXPECT_EQ(ports_of(order("GOOGL", 950, 5)),
            (std::vector<std::uint16_t>{1, 3}));
  EXPECT_TRUE(ports_of(order("IBM", 10, 5)).empty());

  const auto& c = sw.counters();
  EXPECT_EQ(c.rx_frames, 5u);
  EXPECT_EQ(c.matched, 3u);
  EXPECT_EQ(c.dropped, 2u);
  EXPECT_EQ(c.tx_copies, 4u);
  EXPECT_EQ(c.multicast_frames, 1u);
}

TEST(Switch, CountsParseErrors) {
  auto schema = spec::make_itch_schema();
  auto sw = switchsim::Switch::make_broadcast(schema, {1});
  std::vector<std::uint8_t> junk(10, 0xab);
  EXPECT_TRUE(sw.process(junk, 0).empty());
  EXPECT_EQ(sw.counters().parse_errors, 1u);
}

TEST(Switch, BroadcastMode) {
  auto schema = spec::make_itch_schema();
  auto sw = switchsim::Switch::make_broadcast(schema, {1, 2, 3});
  const auto copies = sw.process(frame_for(order("ANY", 1, 1)), 0);
  ASSERT_EQ(copies.size(), 3u);
  EXPECT_EQ(sw.counters().multicast_frames, 1u);
  EXPECT_TRUE(sw.fits());
}

TEST(Switch, StatefulAvgRule) {
  auto schema = spec::make_itch_schema();
  // Forward GOOGL only while the windowed average price exceeds 1000;
  // every GOOGL message updates the average.
  auto compiled = compiler::compile_source(schema, R"(
    stock == GOOGL and avg(price) > 1000 : fwd(1)
    stock == GOOGL : update(avg_price)
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  switchsim::Switch sw(schema, compiled.value().pipeline);

  // First message: avg is 0 -> not forwarded, but updates the register.
  EXPECT_TRUE(sw.process(frame_for(order("GOOGL", 1, 5000)), 10).empty());
  EXPECT_EQ(sw.registers().read(1, 10), 5000u);
  // Second message in the same window: avg 5000 > 1000 -> forwarded.
  EXPECT_EQ(sw.process(frame_for(order("GOOGL", 1, 3000)), 20).size(), 1u);
  // After the window rolls, the average resets -> not forwarded again.
  EXPECT_TRUE(sw.process(frame_for(order("GOOGL", 1, 3000)), 150).empty());
  EXPECT_GE(sw.counters().state_updates, 3u);
}

TEST(Switch, CounterRuleCountsMatches) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_source(schema, R"(
    stock == AAPL : fwd(1); update(my_counter)
  )");
  ASSERT_TRUE(compiled.ok());
  switchsim::Switch sw(schema, compiled.value().pipeline);
  for (int i = 0; i < 5; ++i)
    (void)sw.process(frame_for(order("AAPL", 1, 1)), 10 + i);
  (void)sw.process(frame_for(order("MSFT", 1, 1)), 16);
  EXPECT_EQ(sw.registers().read(0, 50), 5u);
}

TEST(Switch, ResourceAuditForLargePipeline) {
  auto schema = spec::make_itch_schema();
  std::string rules;
  for (int i = 0; i < 500; ++i) {
    rules += "stock == S" + std::to_string(i) + " and price > " +
             std::to_string(i * 10) + " : fwd(" + std::to_string(i % 64) +
             ")\n";
  }
  auto compiled = compiler::compile_source(schema, rules);
  ASSERT_TRUE(compiled.ok());
  switchsim::Switch sw(schema, compiled.value().pipeline);
  EXPECT_TRUE(sw.fits());
  const auto res = sw.resources();
  EXPECT_GT(res.logical_entries, 500u);
}

}  // namespace
