// Message-format specification parser (paper Figure 2).
#include <gtest/gtest.h>

#include "spec/itch_spec.hpp"
#include "spec/spec_parser.hpp"

namespace {

using namespace camus::spec;

TEST(SpecParser, ParsesFigure2) {
  auto r = parse_spec(itch_spec_text());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Schema& s = r.value();

  ASSERT_EQ(s.headers().size(), 1u);
  EXPECT_EQ(s.headers()[0].type_name, "itch_add_order_t");
  EXPECT_EQ(s.headers()[0].instance, "add_order");

  ASSERT_EQ(s.fields().size(), 3u);
  EXPECT_EQ(s.field(0).name, "shares");
  EXPECT_EQ(s.field(0).width_bits, 32u);
  EXPECT_EQ(s.field(1).kind, FieldKind::kSymbol);
  EXPECT_EQ(s.field(1).width_bits, 64u);

  // Annotation order defines the query order: shares, price, stock.
  ASSERT_EQ(s.query_order().size(), 3u);
  EXPECT_EQ(s.field(s.query_order()[0]).name, "shares");
  EXPECT_EQ(s.field(s.query_order()[1]).name, "price");
  EXPECT_EQ(s.field(s.query_order()[2]).name, "stock");
  EXPECT_EQ(s.field(s.query_order()[2]).hint, MatchHint::kExact);
  EXPECT_EQ(s.field(s.query_order()[0]).hint, MatchHint::kRange);

  ASSERT_EQ(s.state_vars().size(), 2u);
  EXPECT_EQ(s.state_var(0).name, "my_counter");
  EXPECT_EQ(s.state_var(0).func, StateFunc::kCount);
  EXPECT_EQ(s.state_var(0).window_us, 100u);
  EXPECT_EQ(s.state_var(1).name, "avg_price");
  EXPECT_EQ(s.state_var(1).func, StateFunc::kAvg);
  EXPECT_EQ(s.state_var(1).src_field, s.resolve_field("price"));
}

TEST(SpecParser, FieldResolution) {
  Schema s = make_itch_schema();
  EXPECT_TRUE(s.resolve_field("add_order.stock").has_value());
  EXPECT_TRUE(s.resolve_field("stock").has_value());
  EXPECT_FALSE(s.resolve_field("nope").has_value());
  EXPECT_FALSE(s.resolve_field("wrong.stock").has_value());
  EXPECT_TRUE(s.resolve_state_var("my_counter").has_value());
  EXPECT_TRUE(s.resolve_macro(StateFunc::kAvg, "price").has_value());
  EXPECT_FALSE(s.resolve_macro(StateFunc::kSum, "price").has_value());
}

TEST(SpecParser, AmbiguousBareNameRejected) {
  auto r = parse_spec(R"(
    header_type a_t { fields { x: 8; } }
    header_type b_t { fields { x: 8; } }
    header a_t a;
    header b_t b;
    @query_field(a.x)
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_FALSE(r.value().resolve_field("x").has_value());  // ambiguous
  EXPECT_TRUE(r.value().resolve_field("a.x").has_value());
}

TEST(SpecParser, MultipleInstancesOfOneType) {
  auto r = parse_spec(R"(
    header_type pair_t { fields { v: 16; } }
    header pair_t first;
    header pair_t second;
    @query_field(first.v)
    @query_field(second.v)
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().fields().size(), 2u);
  EXPECT_EQ(r.value().query_order().size(), 2u);
}

TEST(SpecParser, Errors) {
  // Unknown annotation.
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 8; } }\n"
                          "header t h;\n@bogus(h.x)")
                   .ok());
  // Field width out of range.
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 0; } }").ok());
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 65; } }").ok());
  // Unknown header type in instance.
  EXPECT_FALSE(parse_spec("header nope h;").ok());
  // Duplicate header_type.
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 8; } }\n"
                          "header_type t { fields { y: 8; } }\nheader t h;")
                   .ok());
  // Annotation on unknown field.
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 8; } }\n"
                          "header t h;\n@query_field(h.nope)")
                   .ok());
  // Symbol field must be exact.
  EXPECT_FALSE(parse_spec("header_type t { fields { s: 64 (symbol); } }\n"
                          "header t h;\n@query_field(h.s)")
                   .ok());
  // Duplicate state variable.
  EXPECT_FALSE(parse_spec("header_type t { fields { x: 8; } }\nheader t h;\n"
                          "@query_counter(c, 10)\n@query_counter(c, 20)")
                   .ok());
  // No headers at all.
  EXPECT_FALSE(parse_spec("// nothing").ok());
  // Garbage top-level token.
  EXPECT_FALSE(parse_spec("banana").ok());
}

TEST(SpecParser, ErrorsCarryLocation) {
  auto r = parse_spec("header_type t {\n  fields {\n    x: 99;\n  }\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().line, 3);
}

TEST(Schema, FieldUmax) {
  Schema s;
  s.add_header("t", "h");
  auto f8 = s.add_field("a", 8);
  auto f64 = s.add_field("b", 64);
  EXPECT_EQ(s.field(f8).umax(), 255u);
  EXPECT_EQ(s.field(f64).umax(), ~0ULL);
  EXPECT_THROW(s.add_field("bad", 0), std::invalid_argument);
}

TEST(Schema, AddFieldRequiresHeader) {
  Schema s;
  EXPECT_THROW(s.add_field("x", 8), std::logic_error);
}

}  // namespace
