// pcap trace writer/reader: round trips, byte-order tolerance, truncation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "proto/packet.hpp"
#include "proto/pcap.hpp"
#include "switchsim/switch.hpp"
#include "spec/itch_spec.hpp"
#include "workload/feed.hpp"

namespace {

using namespace camus;

std::vector<std::uint8_t> sample_frame(const std::string& stock) {
  proto::ItchAddOrder msg;
  msg.stock = stock;
  msg.shares = 5;
  msg.price = 7;
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  return proto::encode_market_data_packet(eth, 1, 2, mold, {msg});
}

TEST(Pcap, RoundTrip) {
  proto::PcapWriter w;
  const auto f1 = sample_frame("AAPL");
  const auto f2 = sample_frame("GOOGL");
  w.add(1500000, f1);      // t = 1.5s
  w.add(2750001, f2);
  EXPECT_EQ(w.packet_count(), 2u);

  auto parsed = proto::parse_pcap(w.bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].timestamp_us, 1500000u);
  EXPECT_EQ((*parsed)[1].timestamp_us, 2750001u);
  EXPECT_EQ((*parsed)[0].frame, f1);
  EXPECT_EQ((*parsed)[1].frame, f2);

  // Frames decode back to the original messages.
  auto pkt = proto::decode_market_data_packet((*parsed)[1].frame);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->itch.add_orders[0].stock, "GOOGL");
}

TEST(Pcap, GlobalHeaderFields) {
  proto::PcapWriter w(1234);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 24u);
  // Magic, little-endian.
  EXPECT_EQ(b[0], 0xd4);
  EXPECT_EQ(b[1], 0xc3);
  EXPECT_EQ(b[2], 0xb2);
  EXPECT_EQ(b[3], 0xa1);
  // Snaplen at offset 16.
  EXPECT_EQ(b[16], 1234 & 0xff);
  // Linktype 1 at offset 20.
  EXPECT_EQ(b[20], 1);
}

TEST(Pcap, SnaplenTruncatesButKeepsOrigLen) {
  proto::PcapWriter w(10);
  const auto f = sample_frame("MSFT");
  w.add(0, f);
  auto parsed = proto::parse_pcap(w.bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].frame.size(), 10u);
}

TEST(Pcap, RejectsBadMagicAndTolleratesTruncation) {
  EXPECT_FALSE(proto::parse_pcap(std::vector<std::uint8_t>(10, 0)).has_value());
  std::vector<std::uint8_t> bad(24, 0);
  EXPECT_FALSE(proto::parse_pcap(bad).has_value());

  proto::PcapWriter w;
  w.add(0, sample_frame("A"));
  w.add(0, sample_frame("B"));
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 5);  // cut into the last record
  auto parsed = proto::parse_pcap(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);  // trailing record dropped
}

TEST(Pcap, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "camus_test_trace.pcap";
  proto::PcapWriter w;
  w.add(42, sample_frame("NVDA"));
  ASSERT_TRUE(w.write_file(path.string()));
  auto parsed = proto::read_pcap_file(path.string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].timestamp_us, 42u);
  std::filesystem::remove(path);
  EXPECT_FALSE(proto::read_pcap_file("/nonexistent/x.pcap").has_value());
}

TEST(Pcap, FeedExportReplaysThroughSwitch) {
  // Generate a feed, export to pcap, replay the capture through a switch.
  auto schema = spec::make_itch_schema();
  workload::FeedParams fp;
  fp.seed = 12;
  fp.n_messages = 500;
  auto feed = workload::generate_feed(fp);

  proto::PcapWriter w;
  proto::EthernetHeader eth;
  std::uint64_t seq = 1;
  for (const auto& fm : feed.messages) {
    proto::MoldUdp64Header mold;
    mold.sequence = seq++;
    w.add(fm.t_us,
          proto::encode_market_data_packet(eth, 1, 2, mold, {fm.msg}));
  }

  auto parsed = proto::parse_pcap(w.bytes());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), feed.messages.size());

  auto sw = switchsim::Switch::make_broadcast(schema, {1});
  for (const auto& p : *parsed) (void)sw.process(p.frame, p.timestamp_us);
  EXPECT_EQ(sw.counters().rx_frames, feed.messages.size());
  EXPECT_EQ(sw.counters().parse_errors, 0u);
}

}  // namespace
