// DNF normalization: equivalence with tree evaluation, unsatisfiable-term
// elimination, canonical per-subject constraints, blowup guard.
#include <gtest/gtest.h>

#include "lang/dnf.hpp"
#include "lang/parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus;
using lang::BoundCond;
using lang::BoundCondPtr;
using lang::BoundPredicate;
using lang::RelOp;
using lang::Subject;

spec::Schema small_schema() {
  spec::Schema s;
  s.add_header("m_t", "m");
  auto a = s.add_field("a", 4);  // tiny domains: exhaustive checking
  auto b = s.add_field("b", 4);
  auto c = s.add_field("c", 4);
  s.mark_queryable(a, spec::MatchHint::kRange);
  s.mark_queryable(b, spec::MatchHint::kRange);
  s.mark_queryable(c, spec::MatchHint::kRange);
  return s;
}

TEST(Dnf, SimpleConjunctionCanonicalizes) {
  const auto schema = small_schema();
  // a > 2 and a < 9 and b == 5  ->  one term, a in [3,8], b == 5.
  auto cond = BoundCond::make_and(
      BoundCond::make_and(
          BoundCond::make_atom({Subject::field(0), RelOp::kGt, 2}),
          BoundCond::make_atom({Subject::field(0), RelOp::kLt, 9})),
      BoundCond::make_atom({Subject::field(1), RelOp::kEq, 5}));
  auto dnf = lang::to_dnf(cond, schema);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf.value().size(), 1u);
  const auto& t = dnf.value()[0];
  EXPECT_EQ(t.constraints.at(Subject::field(0)), util::IntervalSet::range(3, 8));
  EXPECT_EQ(t.constraints.at(Subject::field(1)), util::IntervalSet::point(5));
}

TEST(Dnf, DropsUnsatisfiableTerms) {
  const auto schema = small_schema();
  // (a < 3 and a > 10) or b == 5 : first term unsat.
  auto cond = BoundCond::make_or(
      BoundCond::make_and(
          BoundCond::make_atom({Subject::field(0), RelOp::kLt, 3}),
          BoundCond::make_atom({Subject::field(0), RelOp::kGt, 10})),
      BoundCond::make_atom({Subject::field(1), RelOp::kEq, 5}));
  auto dnf = lang::to_dnf(cond, schema);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf.value().size(), 1u);
  EXPECT_TRUE(dnf.value()[0].constraints.count(Subject::field(1)));
}

TEST(Dnf, TautologyYieldsTrueTerm) {
  const auto schema = small_schema();
  // a < 8 or a >= 8 (via not a < 8).
  auto lt = BoundCond::make_atom({Subject::field(0), RelOp::kLt, 8});
  auto cond = BoundCond::make_or(lt, BoundCond::make_not(lt));
  auto dnf = lang::to_dnf(cond, schema);
  ASSERT_TRUE(dnf.ok());
  // Both terms survive; at least one evaluator path must make it true for
  // all values — verified by the property test below. Here check shape:
  EXPECT_EQ(dnf.value().size(), 2u);
}

TEST(Dnf, ConstantsFold) {
  const auto schema = small_schema();
  auto dtrue = lang::to_dnf(BoundCond::make_const(true), schema);
  ASSERT_TRUE(dtrue.ok());
  ASSERT_EQ(dtrue.value().size(), 1u);
  EXPECT_TRUE(dtrue.value()[0].is_true());
  auto dfalse = lang::to_dnf(BoundCond::make_const(false), schema);
  ASSERT_TRUE(dfalse.ok());
  EXPECT_TRUE(dfalse.value().empty());
}

TEST(Dnf, BlowupGuard) {
  const auto schema = small_schema();
  // (a==0 or a==1) and (b==0 or b==1) and (c==0 or c==1) = 8 terms.
  auto or2 = [&](Subject s) {
    return BoundCond::make_or(
        BoundCond::make_atom({s, RelOp::kEq, 0}),
        BoundCond::make_atom({s, RelOp::kEq, 1}));
  };
  auto cond = BoundCond::make_and(
      BoundCond::make_and(or2(Subject::field(0)), or2(Subject::field(1))),
      or2(Subject::field(2)));
  auto ok = lang::to_dnf(cond, schema, 8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 8u);
  EXPECT_FALSE(lang::to_dnf(cond, schema, 7).ok());
}

TEST(Dnf, PredicateValuesRespectDomain) {
  using util::IntervalSet;
  EXPECT_EQ(lang::predicate_values(RelOp::kGt, 10, true, 15),
            IntervalSet::range(11, 15));
  EXPECT_EQ(lang::predicate_values(RelOp::kGt, 10, false, 15),
            IntervalSet::range(0, 10));
  EXPECT_EQ(lang::predicate_values(RelOp::kLt, 3, true, 15),
            IntervalSet::range(0, 2));
  EXPECT_EQ(lang::predicate_values(RelOp::kEq, 7, false, 15),
            IntervalSet::range(0, 6).unite(IntervalSet::range(8, 15)));
}

// Property: DNF evaluation == tree evaluation, exhaustively over the tiny
// 3x16-value domain, on random condition trees.
class DnfEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnfEquivalence, ExhaustiveOverTinyDomain) {
  util::Rng rng(GetParam());
  const auto schema = small_schema();

  std::function<BoundCondPtr(int)> random_cond = [&](int depth) {
    if (depth == 0 || rng.chance(0.35)) {
      BoundPredicate p;
      p.subject = Subject::field(
          static_cast<std::uint32_t>(rng.uniform(0, 2)));
      const auto roll = rng.uniform(0, 2);
      p.op = roll == 0 ? RelOp::kEq : roll == 1 ? RelOp::kLt : RelOp::kGt;
      p.value = rng.uniform(0, 15);
      return BoundCond::make_atom(p);
    }
    switch (rng.uniform(0, 2)) {
      case 0:
        return BoundCond::make_and(random_cond(depth - 1),
                                   random_cond(depth - 1));
      case 1:
        return BoundCond::make_or(random_cond(depth - 1),
                                  random_cond(depth - 1));
      default:
        return BoundCond::make_not(random_cond(depth - 1));
    }
  };

  for (int trial = 0; trial < 30; ++trial) {
    const BoundCondPtr cond = random_cond(4);
    auto dnf = lang::to_dnf(cond, schema);
    ASSERT_TRUE(dnf.ok());

    lang::Env env;
    env.fields = {0, 0, 0};
    for (std::uint64_t a = 0; a <= 15; ++a) {
      for (std::uint64_t b = 0; b <= 15; ++b) {
        for (std::uint64_t c = 0; c <= 15; c += 3) {
          env.fields = {a, b, c};
          const bool tree = lang::eval_cond(*cond, env);
          bool flat = false;
          for (const auto& term : dnf.value())
            flat = flat || lang::eval_conjunction(term, env);
          ASSERT_EQ(tree, flat)
              << cond->to_string() << " at a=" << a << " b=" << b
              << " c=" << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
