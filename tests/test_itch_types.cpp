// Extended ITCH message types (order-executed, trade, cancel): round
// trips, mixed-payload framing, and the switch's behaviour on mixed feeds.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"

namespace {

using namespace camus;
using namespace camus::proto;

TEST(ItchTypes, OrderExecutedRoundTrip) {
  ItchOrderExecuted m;
  m.stock_locate = 7;
  m.order_ref = 0xabcdef;
  m.executed_shares = 250;
  m.match_number = 0x1234567890ULL;
  const auto bytes = encode_itch_message(m);
  EXPECT_EQ(bytes.size(), ItchOrderExecuted::kSize);
  ItchOrderExecuted out;
  Reader r(bytes);
  ASSERT_TRUE(out.decode(r));
  EXPECT_EQ(out.order_ref, m.order_ref);
  EXPECT_EQ(out.executed_shares, 250u);
  EXPECT_EQ(out.match_number, m.match_number);
}

TEST(ItchTypes, TradeRoundTrip) {
  ItchTrade m;
  m.stock = "NVDA";
  m.price = 777;
  m.shares = 10;
  m.side = 'S';
  m.match_number = 42;
  const auto bytes = encode_itch_message(m);
  EXPECT_EQ(bytes.size(), ItchTrade::kSize);
  ItchTrade out;
  Reader r(bytes);
  ASSERT_TRUE(out.decode(r));
  EXPECT_EQ(out.stock, "NVDA");
  EXPECT_EQ(out.price, 777u);
  EXPECT_EQ(out.side, 'S');
}

TEST(ItchTypes, CancelRoundTrip) {
  ItchOrderCancel m;
  m.order_ref = 99;
  m.cancelled_shares = 5;
  const auto bytes = encode_itch_message(m);
  EXPECT_EQ(bytes.size(), ItchOrderCancel::kSize);
  ItchOrderCancel out;
  Reader r(bytes);
  ASSERT_TRUE(out.decode(r));
  EXPECT_EQ(out.order_ref, 99u);
  EXPECT_EQ(out.cancelled_shares, 5u);
}

TEST(ItchTypes, WrongTypeByteRejected) {
  ItchOrderExecuted m;
  auto bytes = encode_itch_message(m);
  bytes[0] = 'A';
  ItchOrderExecuted out;
  Reader r(bytes);
  EXPECT_FALSE(out.decode(r));
}

std::vector<std::uint8_t> mixed_payload() {
  ItchAddOrder add;
  add.stock = "GOOGL";
  add.shares = 100;
  add.price = 500;
  ItchOrderExecuted exec;
  ItchTrade trade;
  trade.stock = "MSFT";
  ItchOrderCancel cancel;
  MoldUdp64Header mold;
  mold.sequence = 3;
  return encode_itch_payload_raw(
      mold, {encode_itch_message(exec), encode_itch_message(add),
             encode_itch_message(trade), encode_itch_message(cancel)});
}

TEST(ItchTypes, MixedPayloadTallies) {
  auto pkt = decode_itch_payload(mixed_payload());
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->mold.message_count, 4u);
  ASSERT_EQ(pkt->add_orders.size(), 1u);
  EXPECT_EQ(pkt->add_orders[0].stock, "GOOGL");
  EXPECT_EQ(pkt->executed_messages, 1u);
  EXPECT_EQ(pkt->trade_messages, 1u);
  EXPECT_EQ(pkt->cancel_messages, 1u);
  EXPECT_EQ(pkt->skipped_messages, 0u);
}

TEST(ItchTypes, SwitchClassifiesAddOrderWithinMixedPacket) {
  // A packet whose FIRST message is not an add-order still classifies on
  // the first add-order present.
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(schema, "stock == GOOGL : fwd(1)");
  ASSERT_TRUE(c.ok());
  switchsim::Switch sw(schema, c.value().pipeline);

  Writer w;
  EthernetHeader eth;
  eth.encode(w);
  Ipv4Header ip;
  const auto payload = mixed_payload();
  ip.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize +
                                            UdpHeader::kSize + payload.size());
  ip.encode(w);
  UdpHeader udp;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);
  w.bytes(payload);

  const auto copies = sw.process(w.data(), 0);
  ASSERT_EQ(copies.size(), 1u);
  EXPECT_EQ(copies[0].port, 1);
}

}  // namespace
