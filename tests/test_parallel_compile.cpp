// Parallel sharded compilation: the threads>1 path must be semantically
// identical to the serial path (same forwarding decision for every packet),
// and the compile-phase telemetry must be populated and survive a JSON
// round-trip.
#include <gtest/gtest.h>

#include <set>

#include "compiler/compile.hpp"
#include "compiler/field_order.hpp"
#include "compiler/incremental.hpp"
#include "compiler/parallel.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "util/json.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

workload::ItchSubscriptions make_subs(std::size_t n) {
  workload::ItchSubsParams p;
  p.seed = 42;
  p.n_subscriptions = n;
  p.n_symbols = 20;
  p.n_hosts = 8;
  p.price_max = 1000;
  return workload::generate_itch_subscriptions(spec::make_itch_schema(), p);
}

std::vector<std::uint8_t> frame_for(const proto::ItchAddOrder& m) {
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  return proto::encode_market_data_packet(eth, 1, 2, mold, {m});
}

TEST(ShardPlan, PartitionsByPointConstrainedField) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(200);
  auto flat = lang::flatten_rules(subs.rules, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});

  const auto plan = compiler::plan_shards(flat.value(), order, 4);
  ASSERT_EQ(plan.shards.size(), 4u);
  // Every rule appears in exactly one shard.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& shard : plan.shards) {
    EXPECT_FALSE(shard.empty());
    total += shard.size();
    seen.insert(shard.begin(), shard.end());
  }
  EXPECT_EQ(total, flat.value().size());
  EXPECT_EQ(seen.size(), flat.value().size());
  // The workload point-constrains the stock symbol, so grouping found
  // more groups than shards (20 symbols into 4 bins).
  EXPECT_GT(plan.groups, 4u);
}

TEST(ShardPlan, DegeneratesGracefully) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(40);
  auto flat = lang::flatten_rules(subs.rules, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});
  // Too few rules to be worth sharding.
  EXPECT_TRUE(compiler::plan_shards(flat.value(), order, 64).shards.empty());
  EXPECT_TRUE(compiler::plan_shards(flat.value(), order, 1).shards.empty());
  EXPECT_TRUE(compiler::plan_shards({}, order, 4).shards.empty());
}

TEST(ParallelCompile, DifferentialAgainstSerial) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(300);

  compiler::CompileOptions serial_opts;
  serial_opts.threads = 1;
  auto serial = compiler::compile_rules(schema, subs.rules, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.error().to_string();
  EXPECT_EQ(serial.value().stats.threads_used, 1u);
  EXPECT_TRUE(serial.value().stats.shards.empty());

  compiler::CompileOptions par_opts;
  par_opts.threads = 4;
  auto par = compiler::compile_rules(schema, subs.rules, par_opts);
  ASSERT_TRUE(par.ok()) << par.error().to_string();
  EXPECT_EQ(par.value().stats.threads_used, 4u);
  EXPECT_EQ(par.value().stats.shards.size(), 4u);

  // Identical aggregate artifacts...
  EXPECT_EQ(par.value().stats.total_entries,
            serial.value().stats.total_entries);
  EXPECT_EQ(par.value().stats.multicast_groups,
            serial.value().stats.multicast_groups);
  EXPECT_EQ(par.value().stats.bdd_after_prune.node_count,
            serial.value().stats.bdd_after_prune.node_count);

  // ...and, decisively, the same forwarding decision for every packet of a
  // generated feed, via the switch simulator.
  switchsim::Switch sw_serial(schema, serial.value().pipeline);
  switchsim::Switch sw_par(schema, par.value().pipeline);

  workload::FeedParams fp;
  fp.seed = 7;
  fp.n_messages = 2000;
  fp.symbols = subs.symbols;
  fp.price_min = 0;
  fp.price_max = 1200;
  const auto feed = workload::generate_feed(fp);

  for (const auto& fm : feed.messages) {
    const auto frame = frame_for(fm.msg);
    const auto a = sw_serial.process(frame, fm.t_us);
    const auto b = sw_par.process(frame, fm.t_us);
    ASSERT_EQ(a.size(), b.size()) << "stock=" << fm.msg.stock;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].port, b[i].port) << "stock=" << fm.msg.stock;
  }
  const auto& cs = sw_serial.counters();
  const auto& cp = sw_par.counters();
  EXPECT_EQ(cs.rx_frames, cp.rx_frames);
  EXPECT_EQ(cs.matched, cp.matched);
  EXPECT_EQ(cs.dropped, cp.dropped);
  EXPECT_EQ(cs.tx_copies, cp.tx_copies);
  EXPECT_EQ(cs.multicast_frames, cp.multicast_frames);
}

TEST(ParallelCompile, AutoThreadsCompiles) {
  // threads = 0 resolves to hardware concurrency; whatever that is here,
  // the compile must succeed and produce a working pipeline.
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(100);
  compiler::CompileOptions opts;
  opts.threads = 0;
  auto c = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_GE(compiler::resolve_threads(0), 1u);
  EXPECT_GT(c.value().stats.total_entries, 0u);
}

TEST(CompileStats, PhaseTimesPopulated) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(150);
  auto c = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(c.ok());
  const auto& s = c.value().stats;
  EXPECT_EQ(s.rule_count, 150u);
  EXPECT_GT(s.dnf_terms, 0u);
  EXPECT_GT(s.t_total, 0.0);
  EXPECT_GT(s.t_build, 0.0);
  EXPECT_GT(s.t_tables, 0.0);
  EXPECT_GE(s.t_total,
            s.t_flatten + s.t_build + s.t_union + s.t_prune);
  EXPECT_GT(s.cache.unique_nodes, 0u);
  EXPECT_GT(s.cache.unite_res_probes, 0u);
  EXPECT_GT(s.cache.memo_hit_rate(), 0.0);
  // One stage entry per field table plus the leaf count.
  EXPECT_FALSE(s.tablegen.stage_entries.empty());
  EXPECT_GT(s.tablegen.leaf_entries, 0u);
}

TEST(CompileStats, JsonRoundTrips) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(150);
  compiler::CompileOptions opts;
  opts.threads = 3;
  auto c = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(c.ok());
  const auto& s = c.value().stats;

  auto parsed = util::json::parse(s.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& v = parsed.value();
  ASSERT_TRUE(v.is_object());

  EXPECT_EQ(v.member_u64("rules"), s.rule_count);
  EXPECT_EQ(v.member_u64("threads"), s.threads_used);
  EXPECT_EQ(v.member_u64("entries"), s.total_entries);
  EXPECT_EQ(v.member_u64("multicast_groups"), s.multicast_groups);

  const auto* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_DOUBLE_EQ(phases->member_num("total"), s.t_total);
  EXPECT_DOUBLE_EQ(phases->member_num("build"), s.t_build);
  EXPECT_DOUBLE_EQ(phases->member_num("union"), s.t_union);

  const auto* bdd = v.find("bdd");
  ASSERT_NE(bdd, nullptr);
  EXPECT_EQ(bdd->member_u64("nodes_after_prune"),
            s.bdd_after_prune.node_count);

  const auto* cache = v.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->member_u64("unite_probes"), s.cache.unite_probes);
  EXPECT_EQ(cache->member_u64("unique_nodes"), s.cache.unique_nodes);
  EXPECT_DOUBLE_EQ(cache->member_num("memo_hit_rate"),
                   s.cache.memo_hit_rate());

  const auto* stages = v.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_array());
  // Field tables plus the trailing leaf row.
  ASSERT_EQ(stages->array.size(), s.tablegen.stage_entries.size() + 1);
  for (std::size_t i = 0; i < s.tablegen.stage_entries.size(); ++i) {
    EXPECT_EQ(stages->array[i].find("table")->string,
              s.tablegen.stage_entries[i].table);
    EXPECT_EQ(stages->array[i].member_u64("entries"),
              s.tablegen.stage_entries[i].entries);
  }
  EXPECT_EQ(stages->array.back().find("table")->string, "leaf");
  EXPECT_EQ(stages->array.back().member_u64("entries"),
            s.tablegen.leaf_entries);

  const auto* shards = v.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array.size(), s.shards.size());
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    EXPECT_EQ(shards->array[i].member_u64("rules"), s.shards[i].rules);
    EXPECT_EQ(shards->array[i].member_u64("bdd_nodes"),
              s.shards[i].bdd_nodes);
  }
}

TEST(CompileStats, IncrementalCommitPopulatesStats) {
  compiler::IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  ASSERT_TRUE(inc.add_source("stock == MSFT and price > 100 : fwd(2)").ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok()) << delta.error().to_string();
  const auto& s = delta.value().stats;
  EXPECT_EQ(s.rule_count, 2u);
  EXPECT_EQ(s.dnf_terms, 2u);
  EXPECT_GT(s.t_total, 0.0);
  EXPECT_GT(s.total_entries, 0u);
  EXPECT_GT(s.cache.unique_nodes, 0u);
  EXPECT_FALSE(s.tablegen.stage_entries.empty());
  auto parsed = util::json::parse(s.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().member_u64("rules"), 2u);
}

}  // namespace
