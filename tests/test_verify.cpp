// The static verifier (camus::verify): diagnostics engine, BDD-exact
// subscription linting, compiled-pipeline checks, and the symbolic
// equivalence proof against the reference MTBDD.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "lang/parser.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"
#include "util/json.hpp"
#include "verify/verify.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;
using verify::LintCode;
using verify::Report;
using verify::Severity;

std::vector<lang::BoundRule> bind_all(const spec::Schema& schema,
                                      std::string_view text) {
  auto parsed = lang::parse_rules(text);
  EXPECT_TRUE(parsed.ok());
  auto bound = lang::bind_rules(parsed.value(), schema);
  EXPECT_TRUE(bound.ok()) << (bound.ok() ? "" : bound.error().to_string());
  return std::move(bound).take();
}

verify::SubscriptionLint lint(const spec::Schema& schema,
                              std::string_view text, Report& report,
                              verify::SubscriptionLintOptions opts = {}) {
  auto r = verify::lint_subscriptions(schema, bind_all(schema, text), report,
                                      opts);
  EXPECT_TRUE(r.ok());
  return std::move(r).take();
}

// ---------------------------------------------------------------------
// Diagnostics engine
// ---------------------------------------------------------------------

TEST(Diagnostics, SeveritiesCountsAndExitCodes) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.exit_code(), 0);
  r.add(LintCode::kRuleOverlap, "just a note");
  EXPECT_EQ(r.exit_code(), 0);
  r.add(LintCode::kRuleDuplicate, "a warning").rule = 3;
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_EQ(r.exit_code(/*warnings_as_errors=*/true), 1);
  r.add(LintCode::kShadowedEntry, "an error").table = "price";
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.exit_code(), 1);
  EXPECT_EQ(r.count(Severity::kNote), 1u);
  EXPECT_EQ(r.count(Severity::kWarning), 1u);
  EXPECT_EQ(r.count(Severity::kError), 1u);
  EXPECT_EQ(r.count(LintCode::kRuleDuplicate), 1u);
}

TEST(Diagnostics, TextAndJsonRendering) {
  Report r;
  auto& d = r.add(LintCode::kRuleSubsumed, "rule \"a\" subsumed");
  d.rule = 6;
  d.other_rule = 2;
  auto& p = r.add(LintCode::kShadowedEntry, "dead entry");
  p.table = "price";
  p.state = 3;
  p.entry = 1;

  const std::string text = r.to_text();
  EXPECT_NE(text.find("S004 warning"), std::string::npos);
  EXPECT_NE(text.find("[rule 7]"), std::string::npos);  // rendered 1-based
  EXPECT_NE(text.find("P001 error"), std::string::npos);
  EXPECT_NE(text.find("[price state 3 entry 1]"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos);

  const std::string json = r.to_json();
  auto parsed = util::json::parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const auto& doc = parsed.value();
  const auto* diags = doc.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->array.size(), 2u);
  ASSERT_NE(diags->array[0].find("code"), nullptr);
  EXPECT_EQ(diags->array[0].find("code")->string, "S004");
  EXPECT_EQ(diags->array[0].member_u64("rule"), 6u);  // 0-based in JSON
  ASSERT_NE(diags->array[1].find("table"), nullptr);
  EXPECT_EQ(diags->array[1].find("table")->string, "price");
  const auto* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->member_u64("errors"), 1u);
  EXPECT_EQ(summary->member_u64("warnings"), 1u);
}

// ---------------------------------------------------------------------
// Layer 1: subscription-set linting
// ---------------------------------------------------------------------

TEST(SubscriptionLint, UnsatisfiableDuplicateSameCondition) {
  auto schema = spec::make_itch_schema();
  Report report;
  lint(schema, R"(
    shares < 10 and shares > 20 : fwd(1)
    stock == GOOGL : fwd(2)
    stock == GOOGL : fwd(2)
    stock == GOOGL : fwd(3)
  )",
       report);
  EXPECT_EQ(report.count(LintCode::kRuleUnsatisfiable), 1u);
  EXPECT_EQ(report.count(LintCode::kRuleDuplicate), 1u);
  EXPECT_EQ(report.count(LintCode::kRuleSameCondition), 1u);
  EXPECT_TRUE(report.has_errors());  // S001 is an error
  // Provenance points at the duplicate pair.
  for (const auto& d : report.diagnostics()) {
    if (d.code == LintCode::kRuleDuplicate) {
      EXPECT_EQ(*d.rule, 2u);
      EXPECT_EQ(*d.other_rule, 1u);
    }
  }
}

TEST(SubscriptionLint, SubsumptionProvenByDnfPreFilter) {
  auto schema = spec::make_itch_schema();
  Report report;
  auto r = lint(schema, R"(
    stock == GOOGL and price > 100 : fwd(1)
    stock == GOOGL : fwd(1)
  )",
                report);
  // Single-term pair: the interval pre-filter settles it without a BDD.
  EXPECT_EQ(report.count(LintCode::kRuleSubsumed), 1u);
  EXPECT_EQ(r.stats.bdd_checks, 0u);
  EXPECT_GE(r.stats.dnf_proven, 1u);
  for (const auto& d : report.diagnostics()) {
    if (d.code == LintCode::kRuleSubsumed) {
      EXPECT_EQ(*d.rule, 0u);        // the narrow rule never fires alone
      EXPECT_EQ(*d.other_rule, 1u);  // the broad one carries its actions
    }
  }
}

TEST(SubscriptionLint, SubsumptionNeedsBddForMultiTerm) {
  auto schema = spec::make_itch_schema();
  // price in (10, 30) is covered by (price < 20) ∪ (15 < price < 40), but
  // by neither term alone — only the BDD-exact check can prove it.
  Report report;
  auto r = lint(schema, R"(
    price > 10 and price < 30 : fwd(1)
    price < 20 or (price > 15 and price < 40) : fwd(1)
  )",
                report);
  EXPECT_EQ(report.count(LintCode::kRuleSubsumed), 1u);
  EXPECT_GE(r.stats.bdd_checks, 1u);

  // With BDD escalation disabled the verdict is (soundly) missed.
  Report weak;
  verify::SubscriptionLintOptions opts;
  opts.bdd_exact = false;
  auto r2 = lint(schema, R"(
    price > 10 and price < 30 : fwd(1)
    price < 20 or (price > 15 and price < 40) : fwd(1)
  )",
                 weak, opts);
  EXPECT_EQ(weak.count(LintCode::kRuleSubsumed), 0u);
  EXPECT_EQ(r2.stats.bdd_checks, 0u);
}

TEST(SubscriptionLint, SubsumptionAcrossActionSupersets) {
  auto schema = spec::make_itch_schema();
  // Rule 1's packets always also match rule 2, and rule 2's action set
  // {1,2} is a strict superset of {1}: rule 1 never contributes anything.
  Report report;
  lint(schema, R"(
    stock == GOOGL and price > 50 : fwd(1)
    stock == GOOGL : fwd(1,2)
  )",
       report);
  EXPECT_EQ(report.count(LintCode::kRuleSubsumed), 1u);
}

TEST(SubscriptionLint, OverlapNotesAndCoverage) {
  auto schema = spec::make_itch_schema();
  Report report;
  auto r = lint(schema, R"(
    price > 100 : fwd(1)
    price < 200 : fwd(1)
  )",
                report);
  EXPECT_EQ(report.count(LintCode::kRuleOverlap), 1u);
  EXPECT_EQ(r.stats.overlap_pairs, 1u);

  // Coverage: the pair covers everything, so compiling and asking for a
  // hole finds none...
  auto compiled = compiler::compile_rules(
      schema, bind_all(schema, "price > 100 : fwd(1)\nprice < 200 : fwd(1)"));
  ASSERT_TRUE(compiled.ok());
  Report cov;
  auto hole = verify::check_coverage(*compiled.value().manager,
                                     compiled.value().root, schema, cov);
  EXPECT_FALSE(hole.has_value());
  EXPECT_EQ(cov.count(LintCode::kCoverageHole), 0u);

  // ...while a gap yields a concrete witness packet inside it.
  auto gappy = compiler::compile_rules(
      schema, bind_all(schema, "price > 100 : fwd(1)\nprice < 50 : fwd(1)"));
  ASSERT_TRUE(gappy.ok());
  Report gap;
  auto witness = verify::check_coverage(*gappy.value().manager,
                                        gappy.value().root, schema, gap);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(gap.count(LintCode::kCoverageHole), 1u);
  EXPECT_TRUE(gappy.value().manager->evaluate(gappy.value().root, *witness)
                  .is_drop());
}

TEST(SubscriptionLint, NegligibleSelectivityIgnoresPointConstraints) {
  auto schema = spec::make_itch_schema();
  Report report;
  verify::SubscriptionLintOptions opts;
  opts.negligible_selectivity = 1e-6;
  lint(schema, R"(
    stock == GOOGL : fwd(1)
    price > 10 and price < 13 : fwd(2)
  )",
       report, opts);
  // The exact ticker match is deliberate; the two-value price window on a
  // 32-bit field (~2^-31) is the accident S007 exists for.
  ASSERT_EQ(report.count(LintCode::kRuleNegligible), 1u);
  for (const auto& d : report.diagnostics())
    if (d.code == LintCode::kRuleNegligible) EXPECT_EQ(*d.rule, 1u);
}

TEST(SubscriptionLint, PairBudgetTruncatesLoudly) {
  auto schema = spec::make_itch_schema();
  Report report;
  verify::SubscriptionLintOptions opts;
  opts.max_pairs = 1;
  auto r = lint(schema, R"(
    price > 1 : fwd(1)
    price > 2 : fwd(1)
    price > 3 : fwd(1)
    price > 4 : fwd(1)
  )",
                report, opts);
  EXPECT_TRUE(r.stats.truncated);
  EXPECT_EQ(report.count(LintCode::kAnalysisTruncated), 1u);
}

TEST(SubscriptionLint, PreFilterPrimitivesAreExact) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    price > 100 and price < 200 : fwd(1)
    price > 50 : fwd(1)
    price < 50 : fwd(1)
  )");
  auto flat = lang::flatten_rules(rules, schema);
  ASSERT_TRUE(flat.ok());
  const auto& f = flat.value();
  EXPECT_TRUE(verify::term_implies(f[0].terms[0], f[1].terms[0]));
  EXPECT_FALSE(verify::term_implies(f[1].terms[0], f[0].terms[0]));
  EXPECT_TRUE(verify::term_intersects(f[0].terms[0], f[1].terms[0]));
  EXPECT_FALSE(verify::term_intersects(f[0].terms[0], f[2].terms[0]));
  EXPECT_EQ(verify::dnf_implies(f[0], f[1]), verify::PreVerdict::kProven);
  EXPECT_EQ(verify::dnf_implies(f[1], f[0]), verify::PreVerdict::kRefuted);
  EXPECT_TRUE(verify::dnf_intersects(f[0], f[1]));
  EXPECT_FALSE(verify::dnf_intersects(f[0], f[2]));
}

// ---------------------------------------------------------------------
// Layer 2: compiled-pipeline lint (handcrafted pipelines, exact codes)
// ---------------------------------------------------------------------

table::Pipeline one_table(table::Table t,
                          std::vector<table::LeafEntry> leaves) {
  table::Pipeline p;
  p.tables.push_back(std::move(t));
  for (auto& e : leaves) p.leaf.add_entry(std::move(e));
  p.finalize();
  return p;
}

lang::ActionSet fwd(std::uint16_t port) {
  lang::ActionSet a;
  a.add_port(port);
  return a;
}

TEST(PipelineLint, ShadowedDuplicateExactEntry) {
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kExact,
                 32);
  t.add_entry({0, table::ValueMatch::exact(5), 1});
  t.add_entry({0, table::ValueMatch::exact(5), 2});  // wins (last write)
  auto p = one_table(std::move(t), {{1, fwd(1), {}}, {2, fwd(2), {}}});
  Report report;
  auto stats = verify::lint_pipeline(p, report);
  EXPECT_EQ(report.count(LintCode::kShadowedEntry), 1u);
  EXPECT_EQ(stats.shadowed_entries, 1u);
  for (const auto& d : report.diagnostics()) {
    if (d.code == LintCode::kShadowedEntry) {
      EXPECT_EQ(*d.entry, 0u);  // the earlier duplicate is the dead one
      EXPECT_EQ(d.severity, Severity::kError);
    }
  }
}

TEST(PipelineLint, ShadowedRangeUnderExactPriority) {
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kRange,
                 32);
  t.add_entry({0, table::ValueMatch::exact(10), 1});
  t.add_entry({0, table::ValueMatch::exact(11), 1});
  t.add_entry({0, table::ValueMatch::range(10, 11), 2});  // fully eclipsed
  auto p = one_table(std::move(t), {{1, fwd(1), {}}, {2, fwd(2), {}}});
  Report report;
  verify::lint_pipeline(p, report);
  EXPECT_EQ(report.count(LintCode::kShadowedEntry), 1u);
}

TEST(PipelineLint, UnreachableStateEntries) {
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kExact,
                 32);
  t.add_entry({0, table::ValueMatch::exact(1), 1});
  t.add_entry({7, table::ValueMatch::exact(2), 1});  // state 7: never set
  auto p = one_table(std::move(t), {{1, fwd(1), {}}});
  Report report;
  auto stats = verify::lint_pipeline(p, report);
  EXPECT_EQ(report.count(LintCode::kUnreachableState), 1u);
  EXPECT_EQ(stats.unreachable_states, 1u);
}

TEST(PipelineLint, DeadWildcardDefault) {
  table::Table t("flag", lang::Subject::field(0), table::MatchKind::kRange,
                 8);
  t.add_entry({0, table::ValueMatch::range(0, 255), 1});  // whole domain
  t.add_entry({0, table::ValueMatch::any(), 2});          // can never fire
  auto p = one_table(std::move(t), {{1, fwd(1), {}}, {2, fwd(2), {}}});
  Report report;
  auto stats = verify::lint_pipeline(p, report);
  EXPECT_EQ(report.count(LintCode::kDeadDefault), 1u);
  EXPECT_EQ(stats.dead_defaults, 1u);
}

TEST(PipelineLint, DanglingTransitionHeuristic) {
  // State 9 is never defined downstream; with a single inbound reference
  // the verifier calls it likely corruption (warning), with several it
  // reads as the normal drop-sink encoding (note).
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kExact,
                 32);
  t.add_entry({0, table::ValueMatch::exact(1), 9});
  t.add_entry({0, table::ValueMatch::exact(2), 1});
  auto p = one_table(std::move(t), {{1, fwd(1), {}}});
  Report report;
  verify::lint_pipeline(p, report);
  ASSERT_EQ(report.count(LintCode::kDanglingTransition), 1u);
  for (const auto& d : report.diagnostics())
    if (d.code == LintCode::kDanglingTransition)
      EXPECT_EQ(d.severity, Severity::kWarning);

  table::Table t2("price", lang::Subject::field(0), table::MatchKind::kExact,
                  32);
  t2.add_entry({0, table::ValueMatch::exact(1), 9});
  t2.add_entry({0, table::ValueMatch::exact(2), 9});
  auto p2 = one_table(std::move(t2), {});
  Report report2;
  verify::lint_pipeline(p2, report2);
  // One diagnostic per dangling entry; both downgrade to notes.
  ASSERT_EQ(report2.count(LintCode::kDanglingTransition), 2u);
  for (const auto& d : report2.diagnostics())
    if (d.code == LintCode::kDanglingTransition)
      EXPECT_EQ(d.severity, Severity::kNote);
}

TEST(PipelineLint, StageAndPipelineBudgets) {
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kExact,
                 32);
  for (std::uint64_t v = 0; v < 5; ++v)
    t.add_entry({0, table::ValueMatch::exact(v), 1});
  auto p = one_table(std::move(t), {{1, fwd(1), {}}});
  verify::PipelineLintOptions opts;
  opts.budget.sram_entries_per_stage = 4;  // 5 exact entries won't fit
  Report report;
  auto stats = verify::lint_pipeline(p, report, opts);
  EXPECT_EQ(report.count(LintCode::kStageOverBudget), 1u);
  EXPECT_EQ(stats.stages_over_budget, 1u);

  verify::PipelineLintOptions tight;
  tight.budget.max_stages = 1;  // table + leaf = 2 stages
  Report report2;
  verify::lint_pipeline(p, report2, tight);
  EXPECT_EQ(report2.count(LintCode::kPipelineOverBudget), 1u);
}

TEST(PipelineLint, StructurallyInvalidPipeline) {
  table::Table t("price", lang::Subject::field(0), table::MatchKind::kRange,
                 32);
  t.add_entry({0, table::ValueMatch::range(0, 10), 1});
  t.add_entry({0, table::ValueMatch::range(5, 20), 2});  // overlap
  auto p = one_table(std::move(t), {{1, fwd(1), {}}});
  Report report;
  verify::lint_pipeline(p, report);
  EXPECT_EQ(report.count(LintCode::kStructureInvalid), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(PipelineLint, CleanCompiledPipelineHasNoErrors) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_rules(schema, bind_all(schema, R"(
    stock == GOOGL and price > 100 : fwd(1)
    stock == MSFT : fwd(2)
  )"));
  ASSERT_TRUE(compiled.ok());
  Report report;
  verify::lint_pipeline(compiled.value().pipeline, report);
  EXPECT_FALSE(report.has_errors()) << report.to_text();
}

// ---------------------------------------------------------------------
// Symbolic equivalence
// ---------------------------------------------------------------------

TEST(Equivalence, ProvesCompiledPipelineEquivalent) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_rules(schema, bind_all(schema, R"(
    stock == GOOGL and price > 100 : fwd(1)
    stock == MSFT and (price < 50 or price > 900) : fwd(2)
    shares > 1000 : fwd(3)
  )"));
  ASSERT_TRUE(compiled.ok());
  const auto& c = compiled.value();
  auto r = verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  EXPECT_TRUE(r.proven_equivalent()) << r.detail;
  EXPECT_GT(r.regions_checked, 0u);
}

TEST(Equivalence, DetectsSingleCorruptedEntry) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_rules(schema, bind_all(schema, R"(
    stock == GOOGL and price > 100 : fwd(1)
    stock == MSFT and price > 200 : fwd(2)
  )"));
  ASSERT_TRUE(compiled.ok());
  auto c = std::move(compiled).take();

  // Redirect one entry to a different successor: a reduced MTBDD's
  // distinct nodes compute distinct functions, so this must be caught.
  bool mutated = false;
  for (auto& t : c.pipeline.tables) {
    const auto& es = t.entries();
    for (std::size_t i = 0; i < es.size() && !mutated; ++i) {
      for (const auto& other : es) {
        if (other.next_state == es[i].next_state) continue;
        table::Entry e = es[i];
        e.next_state = other.next_state;
        t.set_entry(i, e);
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  c.pipeline.finalize();

  Report report;
  auto r = verify::verify_equivalence(*c.manager, c.root, c.pipeline, schema,
                                      report);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(report.count(LintCode::kNotEquivalent), 1u);
  // The counterexample is a real diverging packet, not a symbolic claim.
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_NE(c.pipeline.evaluate_actions(*r.counterexample),
            c.manager->evaluate(c.root, *r.counterexample));
}

TEST(Equivalence, CoversValueMappedPipelines) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 1;  // force maps even on tiny tables
  auto compiled = compiler::compile_rules(schema, bind_all(schema, R"(
    price > 100 and price < 300 : fwd(1)
    price > 250 : fwd(2)
    price < 10 : fwd(3)
  )"),
                                          opts);
  ASSERT_TRUE(compiled.ok());
  auto c = std::move(compiled).take();
  ASSERT_FALSE(c.pipeline.value_maps.empty());
  auto r = verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  EXPECT_TRUE(r.proven_equivalent()) << r.detail;

  // And corruption hiding behind the value map is still found: remap one
  // raw region onto another region's code. Distinct codes are
  // distinguished by the downstream table by construction, so this always
  // changes the computed function.
  auto& map = c.pipeline.value_maps.front();
  std::size_t victim = map.entries().size();
  for (std::size_t i = 0; i + 1 < map.entries().size(); ++i) {
    if (map.entries()[i].next_state != map.entries()[i + 1].next_state) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, map.entries().size());
  table::Entry e = map.entries()[victim];
  e.next_state = map.entries()[victim + 1].next_state;
  map.set_entry(victim, e);
  c.pipeline.finalize();
  auto bad = verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  ASSERT_TRUE(bad.completed) << bad.detail;
  EXPECT_FALSE(bad.equivalent);
}

TEST(Equivalence, BudgetExhaustionIsLoudNotWrong) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_rules(
      schema, bind_all(schema, "stock == GOOGL and price > 5 : fwd(1)"));
  ASSERT_TRUE(compiled.ok());
  const auto& c = compiled.value();
  verify::EquivalenceOptions opts;
  opts.max_pairs = 1;
  Report report;
  auto r = verify::verify_equivalence(*c.manager, c.root, c.pipeline, schema,
                                      report, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(report.count(LintCode::kVerifierBudget), 1u);
  EXPECT_EQ(report.count(LintCode::kNotEquivalent), 0u);
}

TEST(Equivalence, ItchWorkloadAtScale) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams params;
  params.n_subscriptions = 2000;
  auto subs = workload::generate_itch_subscriptions(schema, params);
  auto compiled = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(compiled.ok());
  const auto& c = compiled.value();
  auto r = verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  EXPECT_TRUE(r.proven_equivalent()) << r.detail;
}

// ---------------------------------------------------------------------
// verify_compiled umbrella
// ---------------------------------------------------------------------

TEST(VerifyCompiled, ControllerRejectPolicyKeepsLastGoodPipeline) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ctl.set_lint_policy(pubsub::LintPolicy::kReject);
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  ASSERT_TRUE(ctl.compile().ok()) << ctl.last_lint().to_text();
  ASSERT_EQ(ctl.compiled().value()->stats.rule_count, 1u);

  // An unsatisfiable subscription is an S001 error: the recompile is
  // rejected and the previous pipeline keeps serving.
  ASSERT_TRUE(ctl.subscribe(2, "shares < 10 and shares > 20").ok());
  auto r = ctl.compile();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("S001"), std::string::npos);
  EXPECT_TRUE(ctl.last_lint().has_errors());
  EXPECT_EQ(ctl.compiled().value()->stats.rule_count, 1u);  // previous good pipeline

  // kWarn records the same findings but accepts the pipeline.
  ctl.set_lint_policy(pubsub::LintPolicy::kWarn);
  ASSERT_TRUE(ctl.subscribe(3, "stock == MSFT").ok());
  ASSERT_TRUE(ctl.compile().ok());
  EXPECT_TRUE(ctl.last_lint().has_errors());
  EXPECT_EQ(ctl.compiled().value()->stats.rule_count, 3u);
}

TEST(VerifyCompiled, RunsBothLayers) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    shares < 10 and shares > 20 : fwd(1)
    stock == GOOGL : fwd(2)
  )");
  auto compiled = compiler::compile_rules(schema, rules);
  ASSERT_TRUE(compiled.ok());
  Report report;
  auto r = verify::verify_compiled(schema, rules, compiled.value(), report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(report.count(LintCode::kRuleUnsatisfiable), 1u);  // layer 1
  EXPECT_EQ(report.count(LintCode::kCoverageHole), 1u);       // BDD layer
  EXPECT_TRUE(r.value().equivalence.proven_equivalent());     // layer 2
}

}  // namespace
