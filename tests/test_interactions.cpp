// Cross-feature interactions: domain compression over state-variable
// tables, incremental compilation with compression enabled, stateful
// rules through serialized pipelines.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/serialize.hpp"
#include "util/intern.hpp"

namespace {

using namespace camus;

TEST(Interactions, CompressionOnStateVariableTable) {
  // Several thresholds on the windowed counter force a range table on a
  // state subject; compression must preserve the stateful semantics.
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 1;
  auto c = compiler::compile_source(schema, R"(
    stock == AAPL and my_counter > 2 : fwd(1)
    stock == AAPL and my_counter > 5 : fwd(2)
    stock == AAPL and my_counter > 8 : fwd(3)
    stock == AAPL : update(my_counter)
  )", opts);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  // The counter table was compressed onto a code domain.
  bool state_map = false;
  for (const auto& m : c.value().pipeline.value_maps)
    state_map |= m.subject().kind == lang::Subject::Kind::kState;
  EXPECT_TRUE(state_map);

  switchsim::Switch sw(schema, c.value().pipeline);
  lang::Env env;
  env.fields = {1, util::encode_symbol("AAPL"), 1};
  std::vector<std::size_t> port_counts;
  for (int i = 0; i < 10; ++i) {
    const auto& actions = sw.classify(env.fields, 10 + i);
    port_counts.push_back(actions.ports.size());
  }
  // Messages 1-3: counter 0,1,2 -> no match. 4-6: >2 -> fwd(1). 7-9: also
  // >5 -> 2 ports. 10: also >8 -> 3 ports.
  EXPECT_EQ(port_counts,
            (std::vector<std::size_t>{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}));
}

TEST(Interactions, IncrementalWithCompression) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 2;
  compiler::IncrementalCompiler inc(schema, opts);
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(inc.add_source("price > " + std::to_string(i * 100) +
                               " : fwd(" + std::to_string(i) + ")")
                    .ok());
  }
  auto first = inc.commit();
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_FALSE(inc.pipeline().value()->value_maps.empty());

  // A second commit with one more threshold still yields a valid,
  // consistent pipeline (compression regenerates the code domain).
  ASSERT_TRUE(inc.add_source("price > 450 : fwd(9)").ok());
  auto second = inc.commit();
  ASSERT_TRUE(second.ok());
  lang::Env env;
  env.fields = {0, 0, 460};
  env.states = {0, 0};
  const auto& actions = inc.pipeline().value()->evaluate_actions(env);
  // price 460 > 100..400 and > 450: ports 1-4 and 9.
  EXPECT_EQ(actions.ports, (std::vector<std::uint16_t>{1, 2, 3, 4, 9}));
}

TEST(Interactions, StatefulPipelineSurvivesSerialization) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(schema, R"(
    stock == AAPL and my_counter > 1 : fwd(1)
    stock == AAPL : update(my_counter)
  )");
  ASSERT_TRUE(c.ok());
  auto back = table::deserialize_pipeline(
      table::serialize_pipeline(c.value().pipeline));
  ASSERT_TRUE(back.ok());
  switchsim::Switch sw(schema, std::move(back).take());
  lang::Env env;
  env.fields = {1, util::encode_symbol("AAPL"), 1};
  EXPECT_TRUE(sw.classify(env.fields, 10).ports.empty());
  EXPECT_TRUE(sw.classify(env.fields, 20).ports.empty());
  EXPECT_EQ(sw.classify(env.fields, 30).ports,
            (std::vector<std::uint16_t>{1}));
}

}  // namespace
