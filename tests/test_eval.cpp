// Unit tests for the brute-force AST oracle (lang/eval.hpp) — the ground
// truth every fuzzing oracle is compared against, so it gets its own
// direct tests: operator precedence, negation over ranges, the
// missing-attribute semantics (Siena-style: a predicate over an absent
// subject is false, so its negation is true), and a differential run
// against baseline::NaiveMatcher on the Figure-5c ITCH workload.
#include <gtest/gtest.h>

#include "baseline/matcher.hpp"
#include "lang/dnf.hpp"
#include "lang/eval.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

class EvalTest : public ::testing::Test {
 protected:
  spec::Schema schema_ = spec::make_itch_schema();

  lang::BoundCondPtr bind(const std::string& cond_src) {
    auto parsed = lang::parse_condition(cond_src);
    EXPECT_TRUE(parsed.ok()) << cond_src;
    lang::Rule r;
    r.cond = std::move(parsed).take();
    auto bound = lang::bind_rule(r, schema_);
    EXPECT_TRUE(bound.ok()) << cond_src << ": "
                            << (bound.ok() ? "" : bound.error().to_string());
    return bound.value().cond;
  }

  // Env over the ITCH schema: shares (field 0), stock (field 1, symbol),
  // price (field 2).
  static lang::Env env(std::uint64_t shares, const std::string& stock,
                       std::uint64_t price) {
    lang::Env e;
    e.fields = {shares, util::encode_symbol(stock), price};
    return e;
  }

  bool eval(const std::string& cond_src, const lang::Env& e) {
    auto c = bind(cond_src);
    EXPECT_TRUE(c) << cond_src;
    return lang::brute_eval_cond(*c, e);
  }
};

TEST_F(EvalTest, AtomComparisons) {
  const lang::Env e = env(500, "GOOGL", 100);
  EXPECT_TRUE(eval("price == 100", e));
  EXPECT_FALSE(eval("price == 101", e));
  EXPECT_TRUE(eval("price < 101", e));
  EXPECT_FALSE(eval("price < 100", e));
  EXPECT_TRUE(eval("price > 99", e));
  EXPECT_FALSE(eval("price > 100", e));
  EXPECT_TRUE(eval("price <= 100", e));
  EXPECT_TRUE(eval("price >= 100", e));
  EXPECT_TRUE(eval("price != 99", e));
  EXPECT_FALSE(eval("price != 100", e));
  EXPECT_TRUE(eval("stock == GOOGL", e));
  EXPECT_FALSE(eval("stock == AAPL", e));
  EXPECT_TRUE(eval("stock != AAPL", e));
}

TEST_F(EvalTest, PrecedenceAndBindsTighterThanOr) {
  // a or b and c  ==  a or (b and c): true when only a holds, false when
  // only b holds.
  const std::string c = "price == 1 or price > 10 and shares == 7";
  EXPECT_TRUE(eval(c, env(0, "A", 1)));     // a alone
  EXPECT_FALSE(eval(c, env(0, "A", 11)));   // b alone
  EXPECT_TRUE(eval(c, env(7, "A", 11)));    // b and c
  // If precedence were (a or b) and c, env(0,_,1) would be false.
}

TEST_F(EvalTest, NegationBindsTighterThanAnd) {
  // !a and b  ==  (!a) and b.
  const std::string c = "!price == 5 and shares == 7";
  EXPECT_TRUE(eval(c, env(7, "A", 6)));
  EXPECT_FALSE(eval(c, env(7, "A", 5)));
  EXPECT_FALSE(eval(c, env(8, "A", 6)));
}

TEST_F(EvalTest, NegationOverRanges) {
  // !(price > lo and price < hi) is the complement on the whole domain,
  // endpoints included.
  const std::string c = "!(price > 10 and price < 20)";
  EXPECT_TRUE(eval(c, env(0, "A", 10)));
  EXPECT_FALSE(eval(c, env(0, "A", 11)));
  EXPECT_FALSE(eval(c, env(0, "A", 19)));
  EXPECT_TRUE(eval(c, env(0, "A", 20)));
  EXPECT_TRUE(eval(c, env(0, "A", 0)));

  // De Morgan: !(a or b) == !a and !b, checked pointwise.
  for (std::uint64_t p : {0ULL, 5ULL, 10ULL, 15ULL, 100ULL}) {
    EXPECT_EQ(eval("!(price < 10 or price > 14)", env(0, "A", p)),
              eval("!(price < 10) and !(price > 14)", env(0, "A", p)))
        << "price=" << p;
  }

  // Double negation is the identity.
  for (std::uint64_t p : {0ULL, 10ULL, 11ULL, 19ULL, 20ULL}) {
    EXPECT_EQ(eval("!(!(price < 15))", env(0, "A", p)),
              eval("price < 15", env(0, "A", p)))
        << "price=" << p;
  }
}

TEST_F(EvalTest, MissingAttributeIsFalseAndNegationTrue) {
  // Env with only shares and stock: price (field 2) is absent. Any
  // comparison over an absent subject is false; a negation above it is
  // therefore true (Siena semantics), keeping the evaluator total over
  // arbitrary environments.
  lang::Env e;
  e.fields = {500, util::encode_symbol("GOOGL")};

  EXPECT_FALSE(eval("price == 0", e));
  EXPECT_FALSE(eval("price < 100", e));
  EXPECT_TRUE(eval("!(price == 0)", e));
  // Out-of-domain comparisons fold to constants at BIND time (price is a
  // 32-bit field, so `< 2^64-1` is vacuously true over its domain) — the
  // fold wins over missing-attribute falsity, by design.
  EXPECT_TRUE(eval("price < 18446744073709551615", e));
  EXPECT_TRUE(eval("!(price == 0) and stock == GOOGL", e));
  EXPECT_FALSE(eval("price > 0 or price < 1", e));
  EXPECT_TRUE(eval("!(price > 0 or price < 1)", e));

  // State variables follow the same rule: empty state vector.
  EXPECT_FALSE(eval("my_counter > 0", e));
  EXPECT_TRUE(eval("!(my_counter > 0)", e));

  auto c = bind("price == 5");
  EXPECT_FALSE(lang::env_has_subject(e, c->atom.subject));
}

TEST_F(EvalTest, RuleMergeUnionsActions) {
  auto rules = lang::parse_rules(
      "price > 10 : fwd(1)\n"
      "price > 20 : fwd(2); update(my_counter)\n"
      "price > 99999 : fwd(7)\n");
  ASSERT_TRUE(rules.ok());
  auto bound = lang::bind_rules(rules.value(), schema_);
  ASSERT_TRUE(bound.ok());

  const lang::ActionSet at25 =
      lang::brute_eval_rules(bound.value(), env(0, "A", 25));
  EXPECT_EQ(at25.ports, (std::vector<std::uint16_t>{1, 2}));
  EXPECT_EQ(at25.state_updates.size(), 1u);

  const lang::ActionSet at15 =
      lang::brute_eval_rules(bound.value(), env(0, "A", 15));
  EXPECT_EQ(at15.ports, (std::vector<std::uint16_t>{1}));
  EXPECT_TRUE(at15.state_updates.empty());

  EXPECT_TRUE(lang::brute_eval_rules(bound.value(), env(0, "A", 5)).is_drop());
}

// Differential gate: on the Figure-5c ITCH workload the brute-force
// evaluator and the DNF-based NaiveMatcher are independent implementations
// of the same semantics — they must agree on every probe.
TEST_F(EvalTest, AgreesWithNaiveMatcherOnItchWorkload) {
  workload::ItchSubsParams params;
  params.seed = 7;
  params.n_subscriptions = 300;
  params.n_symbols = 20;
  params.price_max = 1000;
  const auto subs = workload::generate_itch_subscriptions(schema_, params);
  ASSERT_FALSE(subs.rules.empty());

  auto flat = lang::flatten_rules(subs.rules, schema_);
  ASSERT_TRUE(flat.ok());
  const baseline::NaiveMatcher naive(flat.value());

  util::Rng rng(99);
  const auto symbols = workload::itch_symbols(params.n_symbols + 2);
  std::size_t matched = 0;
  for (int i = 0; i < 2000; ++i) {
    lang::Env e;
    e.fields = {rng.uniform(0, 1000),
                util::encode_symbol(symbols[rng.uniform(0, symbols.size() - 1)]),
                rng.uniform(0, params.price_max + 50)};
    e.states = {rng.uniform(0, 200), rng.uniform(0, 2000)};
    const lang::ActionSet brute = lang::brute_eval_rules(subs.rules, e);
    const lang::ActionSet got = naive.match(e);
    ASSERT_EQ(got, brute) << "probe " << i << ": naive=" << got.to_string()
                          << " brute=" << brute.to_string();
    if (!brute.is_drop()) ++matched;
  }
  // The workload must actually exercise both outcomes.
  EXPECT_GT(matched, 0u);
  EXPECT_LT(matched, 2000u);
}

}  // namespace
