// Incremental compilation: semantics must match batch compilation; small
// changes must produce small deltas; state ids must stay stable.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;
using compiler::IncrementalCompiler;

lang::Env itch_env(std::uint64_t shares, const std::string& stock,
                   std::uint64_t price) {
  lang::Env env;
  env.fields = {shares, util::encode_symbol(stock), price};
  env.states = {0, 0};
  return env;
}

TEST(Incremental, FirstCommitIsAllAdds) {
  IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  ASSERT_TRUE(inc.add_source("stock == MSFT : fwd(2)").ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok()) << delta.error().to_string();
  EXPECT_EQ(delta.value().reused_entries, 0u);
  EXPECT_EQ(delta.value().adds(), delta.value().total_entries);
  EXPECT_EQ(delta.value().removes(), 0u);
}

TEST(Incremental, MatchesBatchCompilation) {
  auto schema = spec::make_itch_schema();
  const std::vector<std::string> sources = {
      "stock == GOOGL : fwd(1)",
      "stock == MSFT and price > 100 : fwd(2)",
      "shares > 500 or price < 10 : fwd(3)",
      "!(stock == AAPL) and shares < 50 : fwd(4)",
  };

  IncrementalCompiler inc(spec::make_itch_schema());
  std::vector<lang::BoundRule> batch_rules;
  for (const auto& s : sources) {
    ASSERT_TRUE(inc.add_source(s).ok()) << s;
    auto parsed = lang::parse_rule(s);
    ASSERT_TRUE(parsed.ok());
    auto bound = lang::bind_rule(parsed.value(), schema);
    ASSERT_TRUE(bound.ok());
    batch_rules.push_back(std::move(bound).take());
  }
  ASSERT_TRUE(inc.commit().ok());
  auto batch = compiler::compile_rules(schema, batch_rules);
  ASSERT_TRUE(batch.ok());

  util::Rng rng(17);
  const std::vector<std::string> syms = {"GOOGL", "MSFT", "AAPL", "X"};
  for (int trial = 0; trial < 500; ++trial) {
    const auto env = itch_env(rng.uniform(0, 1000), rng.pick(syms),
                              rng.uniform(0, 200));
    EXPECT_EQ(inc.pipeline().value()->evaluate_actions(env),
              batch.value().pipeline.evaluate_actions(env))
        << trial;
  }
}

TEST(Incremental, SmallChangeSmallDelta) {
  auto schema = spec::make_itch_schema();
  // Exact-match field first: a new-symbol subscription then only touches
  // its own branch. With a range field at the root, a new threshold
  // legitimately reshapes the root component and churns it.
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;
  IncrementalCompiler inc(spec::make_itch_schema(), opts);
  workload::ItchSubsParams p;
  p.seed = 5;
  p.n_subscriptions = 500;
  p.n_symbols = 50;
  p.n_hosts = 50;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  for (auto& r : subs.rules) inc.add(std::move(r));
  auto first = inc.commit();
  ASSERT_TRUE(first.ok());
  const std::size_t total = first.value().total_entries;
  ASSERT_GT(total, 100u);

  // Adding one subscription for a brand-new symbol must touch only a
  // handful of entries.
  auto id = inc.add_source("stock == ZZZZ and price > 42 : fwd(7)");
  ASSERT_TRUE(id.ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_GT(delta.value().reused_entries, total * 9 / 10);
  EXPECT_LT(delta.value().ops.size(), 20u);
  EXPECT_GT(delta.value().adds(), 0u);

  // Removing it again restores the original table contents.
  ASSERT_TRUE(inc.remove(id.value()));
  auto delta2 = inc.commit();
  ASSERT_TRUE(delta2.ok());
  EXPECT_EQ(delta2.value().total_entries, total);
  EXPECT_EQ(delta2.value().adds(), 0u);
  EXPECT_GT(delta2.value().removes(), 0u);
}

TEST(Incremental, NoChangeYieldsEmptyDelta) {
  IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  ASSERT_TRUE(inc.commit().ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta.value().ops.empty());
  EXPECT_EQ(delta.value().reused_entries, delta.value().total_entries);
}

TEST(Incremental, RemoveUnknownIdReturnsFalse) {
  IncrementalCompiler inc(spec::make_itch_schema());
  EXPECT_FALSE(inc.remove(99));
}

TEST(Incremental, RejectsBadSource) {
  IncrementalCompiler inc(spec::make_itch_schema());
  EXPECT_FALSE(inc.add_source("nosuch == 5 : fwd(1)").ok());
  EXPECT_FALSE(inc.add_source("stock == : fwd(1)").ok());
  EXPECT_EQ(inc.subscription_count(), 0u);
}

TEST(Incremental, PipelineBeforeCommitIsE122) {
  IncrementalCompiler inc(spec::make_itch_schema());
  auto p = inc.pipeline();
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error().code, "E122");
}

TEST(Incremental, EmptyCommitDropsEverything) {
  IncrementalCompiler inc(spec::make_itch_schema());
  auto id = inc.add_source("stock == GOOGL : fwd(1)");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(inc.commit().ok());
  ASSERT_TRUE(inc.remove(id.value()));
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().total_entries, 0u);
  const auto env = itch_env(1, "GOOGL", 1);
  EXPECT_TRUE(inc.pipeline().value()->evaluate_actions(env).is_drop());
}

TEST(Incremental, SwitchReprogramKeepsRegisters) {
  auto schema = spec::make_itch_schema();
  IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(
      inc.add_source("stock == AAPL : fwd(1); update(my_counter)").ok());
  ASSERT_TRUE(inc.commit().ok());
  switchsim::Switch sw(schema, *inc.pipeline().value());

  const auto env = itch_env(1, "AAPL", 1);
  (void)sw.classify(env.fields, 10);
  (void)sw.classify(env.fields, 20);
  EXPECT_EQ(sw.registers().read(0, 50), 2u);

  // Add a rule, reprogram: counter state survives the table update.
  ASSERT_TRUE(inc.add_source("stock == MSFT : fwd(2)").ok());
  ASSERT_TRUE(inc.commit().ok());
  sw.reprogram(*inc.pipeline().value());
  EXPECT_EQ(sw.registers().read(0, 50), 2u);
  EXPECT_EQ(sw.classify(itch_env(1, "MSFT", 1).fields, 60).ports,
            (std::vector<std::uint16_t>{2}));
  // Another AAPL message keeps counting where the old pipeline left off.
  (void)sw.classify(env.fields, 70);
  EXPECT_EQ(sw.registers().read(0, 70), 3u);
}

TEST(Incremental, OpToStringFormats) {
  IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta.value().ops.empty());
  for (const auto& op : delta.value().ops) {
    EXPECT_EQ(op.to_string().substr(0, 4), "add ");
  }
}

// Property: a random sequence of adds/removes with commits in between is
// always equivalent to batch-compiling the surviving rule set.
class IncrementalChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalChurn, AlwaysMatchesBatch) {
  util::Rng rng(GetParam());
  auto schema = spec::make_itch_schema();
  IncrementalCompiler inc(spec::make_itch_schema());

  std::map<IncrementalCompiler::SubscriptionId, lang::BoundRule> alive;
  const std::vector<std::string> syms = {"AA", "BB", "CC", "DD", "EE"};

  for (int round = 0; round < 6; ++round) {
    // Random adds.
    const std::size_t n_adds = 1 + rng.uniform(0, 4);
    for (std::size_t i = 0; i < n_adds; ++i) {
      const std::string text =
          "stock == " + rng.pick(syms) + " and price > " +
          std::to_string(rng.uniform(0, 100)) + " : fwd(" +
          std::to_string(1 + rng.uniform(0, 9)) + ")";
      auto parsed = lang::parse_rule(text);
      ASSERT_TRUE(parsed.ok());
      auto bound = lang::bind_rule(parsed.value(), schema);
      ASSERT_TRUE(bound.ok());
      const auto id = inc.add(bound.value());
      alive.emplace(id, std::move(bound).take());
    }
    // Random removes.
    while (!alive.empty() && rng.chance(0.3)) {
      auto it = alive.begin();
      std::advance(it, rng.uniform(0, alive.size() - 1));
      ASSERT_TRUE(inc.remove(it->first));
      alive.erase(it);
    }

    ASSERT_TRUE(inc.commit().ok());
    std::vector<lang::BoundRule> batch_rules;
    for (const auto& [id, r] : alive) batch_rules.push_back(r);
    auto batch = compiler::compile_rules(schema, batch_rules);
    ASSERT_TRUE(batch.ok());

    for (int trial = 0; trial < 100; ++trial) {
      const auto env = itch_env(rng.uniform(0, 10), rng.pick(syms),
                                rng.uniform(0, 120));
      ASSERT_EQ(inc.pipeline().value()->evaluate_actions(env),
                batch.value().pipeline.evaluate_actions(env))
          << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurn,
                         ::testing::Values(61, 62, 63, 64));

// --- Partition-fallback diagnostic (I130) ---------------------------------
// The persistent-manager path has no partitioned variant; when the options
// ask for partitioned output (or the diff base came from a partitioned
// batch compile) the commit must SAY so instead of silently emitting a
// structurally different pipeline.

TEST(IncrementalPartitionFallback, ForcedPartitionRequestSurfacesI130) {
  compiler::CompileOptions opts;
  opts.partition = compiler::PartitionMode::kForce;
  IncrementalCompiler inc(spec::make_itch_schema(), opts);
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  auto d = inc.commit();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().stats.partition_groups, 0u);
  EXPECT_NE(d.value().stats.partition_fallback.find("I130"),
            std::string::npos)
      << d.value().stats.partition_fallback;
  // The diagnostic rides the telemetry everywhere stats go.
  EXPECT_NE(d.value().stats.to_json().find("I130"), std::string::npos);
  EXPECT_NE(d.value().stats.to_string().find("I130"), std::string::npos);
}

TEST(IncrementalPartitionFallback, AutoBelowThresholdStaysSilent) {
  compiler::CompileOptions opts;
  opts.partition = compiler::PartitionMode::kAuto;  // min_rules default 4096
  IncrementalCompiler inc(spec::make_itch_schema(), opts);
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  auto d = inc.commit();
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().stats.partition_fallback.empty())
      << d.value().stats.partition_fallback;
}

TEST(IncrementalPartitionFallback, PartitionedBaseSurfacesOnceThenClears) {
  IncrementalCompiler inc(spec::make_itch_schema());
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  inc.note_partitioned_base(true);
  auto first = inc.commit();
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first.value().stats.partition_fallback.find("I130"),
            std::string::npos);
  // The base is now the commit's own monolithic output: no more warning.
  ASSERT_TRUE(inc.add_source("stock == MSFT : fwd(2)").ok());
  auto second = inc.commit();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().stats.partition_fallback.empty());
}

}  // namespace
