// Compile-at-scale paths: symbol-partitioned compilation (partition.*),
// entry interning (compress.*), work-balanced shard packing, the
// cost-model layout search (explore.*), and the memory telemetry — each
// proven against the monolithic compile and the brute-force evaluator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "compiler/compile.hpp"
#include "compiler/explore.hpp"
#include "compiler/field_order.hpp"
#include "compiler/parallel.hpp"
#include "compiler/partition.hpp"
#include "lang/eval.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "table/serialize.hpp"
#include "util/intern.hpp"
#include "verify/equivalence.hpp"
#include "workload/fuzz.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

workload::ItchSubscriptions make_subs(std::size_t n, std::size_t symbols = 20,
                                      std::size_t hosts = 8) {
  workload::ItchSubsParams p;
  p.seed = 42;
  p.n_subscriptions = n;
  p.n_symbols = symbols;
  p.n_hosts = hosts;
  p.price_max = 1000;
  return workload::generate_itch_subscriptions(spec::make_itch_schema(), p);
}

std::vector<lang::BoundRule> parse_bound(const spec::Schema& schema,
                                         const std::string& src) {
  auto parsed = lang::parse_rules(src);
  EXPECT_TRUE(parsed.ok()) << parsed.error().to_string();
  auto bound = lang::bind_rules(parsed.value(), schema);
  EXPECT_TRUE(bound.ok()) << bound.error().to_string();
  return bound.value();
}

// Sweep a deterministic grid of environments through both pipelines and
// the brute-force AST evaluator.
void expect_same_classification(const spec::Schema& schema,
                                const std::vector<lang::BoundRule>& rules,
                                const table::Pipeline& a,
                                const table::Pipeline& b) {
  const auto stock = schema.resolve_field("stock");
  const auto price = schema.resolve_field("price");
  const auto shares = schema.resolve_field("shares");
  ASSERT_TRUE(stock && price && shares);
  for (std::size_t sym = 0; sym < 24; ++sym) {
    for (std::uint64_t pr : {0ull, 1ull, 99ull, 500ull, 501ull, 999ull,
                             100000ull}) {
      lang::Env env;
      env.fields.assign(schema.fields().size(), 0);
      env.states.assign(schema.state_vars().size(), 0);
      env.fields[*stock] =
          util::encode_symbol("STK" + std::to_string(sym));
      env.fields[*price] = pr;
      env.fields[*shares] = pr * 3;
      const lang::ActionSet want = lang::brute_eval_rules(rules, env);
      EXPECT_EQ(a.evaluate_actions(env), want)
          << "pipeline A diverges at sym=" << sym << " price=" << pr;
      EXPECT_EQ(b.evaluate_actions(env), want)
          << "pipeline B diverges at sym=" << sym << " price=" << pr;
    }
  }
}

// --- partition planning ------------------------------------------------

TEST(PartitionPlan, FindsDominantSubjectAndSlicesRules) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(400);
  auto flat = lang::flatten_rules(subs.rules, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});

  const auto plan = compiler::plan_partition(flat.value(), order);
  ASSERT_TRUE(plan.subject.has_value());
  EXPECT_EQ(plan.pinned_rules, flat.value().size());  // every rule pins stock
  EXPECT_EQ(plan.values.size(), plan.groups.size());
  EXPECT_GE(plan.values.size(), 2u);
  EXPECT_TRUE(plan.catch_all.empty());
  EXPECT_TRUE(std::is_sorted(plan.values.begin(), plan.values.end()));
  std::size_t sliced = 0;
  for (const auto& g : plan.groups) {
    EXPECT_FALSE(g.empty());
    sliced += g.size();
    // The pin was stripped: no term in a value shard constrains stock.
    for (const auto& r : g)
      for (const auto& t : r.terms)
        EXPECT_EQ(t.constraints.count(*plan.subject), 0u);
  }
  EXPECT_EQ(sliced, flat.value().size());
}

TEST(PartitionPlan, SpecializesCatchAllsIntoEveryValueShard) {
  auto schema = spec::make_itch_schema();
  auto bound = parse_bound(schema,
                           "stock == AAPL and price > 10 : fwd(1)\n"
                           "stock == MSFT and price > 20 : fwd(2)\n"
                           "stock == AAPL and shares > 5 : fwd(3)\n"
                           "price > 900 : fwd(4)\n"
                           "stock != AAPL and price > 50 : fwd(5)\n");
  auto flat = lang::flatten_rules(bound, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});
  const auto plan = compiler::plan_partition(flat.value(), order);
  ASSERT_TRUE(plan.subject.has_value());
  EXPECT_EQ(plan.values.size(), 2u);  // AAPL, MSFT
  EXPECT_EQ(plan.pinned_rules, 3u);
  // The two catch-alls ride in the default shard unchanged...
  EXPECT_EQ(plan.catch_all.size(), 2u);
  // ...and were specialized into each value shard: "price > 900" into
  // both; "stock != AAPL and price > 50" only where AAPL is excluded.
  const std::size_t aapl =
      plan.values[0] == util::encode_symbol("AAPL") ? 0 : 1;
  const std::size_t msft = 1 - aapl;
  EXPECT_EQ(plan.groups[aapl].size(), 2u + 1u);  // 2 pinned + price>900
  EXPECT_EQ(plan.groups[msft].size(), 1u + 2u);  // 1 pinned + both
}

TEST(PartitionPlan, DegeneratesWithoutPointConstraints) {
  auto schema = spec::make_itch_schema();
  auto bound = parse_bound(schema,
                           "price > 10 : fwd(1)\n"
                           "shares > 20 : fwd(2)\n"
                           "price < 5 and shares < 3 : fwd(3)\n");
  auto flat = lang::flatten_rules(bound, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});
  const auto plan = compiler::plan_partition(flat.value(), order);
  EXPECT_FALSE(plan.subject.has_value());
  compiler::CompileOptions force;
  force.partition = compiler::PartitionMode::kForce;
  EXPECT_FALSE(
      compiler::partition_applies(plan, force, flat.value().size()));
  // And compile_rules falls back to the monolithic path without error.
  auto compiled = compiler::compile_rules(schema, bound, force);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  EXPECT_EQ(compiled.value().stats.partition_groups, 0u);
  EXPECT_NE(compiled.value().manager, nullptr);
}

// --- partitioned compile vs monolithic ---------------------------------

TEST(PartitionedCompile, SymbolicallyEquivalentToMonolithicReference) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(500);
  compiler::CompileOptions opts;
  opts.partition = compiler::PartitionMode::kForce;
  opts.partition_min_rules = 0;
  opts.partition_reference = true;  // keep the monolithic MTBDD
  auto compiled = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const compiler::Compiled& c = compiled.value();
  ASSERT_GT(c.stats.partition_groups, 1u);
  ASSERT_NE(c.manager, nullptr);

  const auto eq =
      verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  EXPECT_TRUE(eq.completed) << eq.detail;
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

TEST(PartitionedCompile, DifferentialAgainstMonolithicAndOracle) {
  auto schema = spec::make_itch_schema();
  auto bound = parse_bound(schema,
                           "stock == STK0 and price > 100 : fwd(1)\n"
                           "stock == STK0 and price > 500 : fwd(2)\n"
                           "stock == STK1 and price > 100 : fwd(3)\n"
                           "stock == STK2 and shares >= 30 : fwd(4)\n"
                           "stock == STK3 : fwd(5)\n"
                           "price > 500 : fwd(6)\n"
                           "stock != STK1 and price > 999 : fwd(7)\n");
  auto mono = compiler::compile_rules(schema, bound, {});
  ASSERT_TRUE(mono.ok());
  compiler::CompileOptions popts;
  popts.partition = compiler::PartitionMode::kForce;
  popts.partition_min_rules = 0;
  auto part = compiler::compile_rules(schema, bound, popts);
  ASSERT_TRUE(part.ok()) << part.error().to_string();
  EXPECT_GT(part.value().stats.partition_groups, 1u);
  // Partitioned path skips the union MTBDD entirely.
  EXPECT_EQ(part.value().manager, nullptr);
  expect_same_classification(schema, bound, mono.value().pipeline,
                             part.value().pipeline);
}

TEST(PartitionedCompile, DeterministicAcrossThreadCounts) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(300);
  compiler::CompileOptions base;
  base.partition = compiler::PartitionMode::kForce;
  base.partition_min_rules = 0;
  compiler::CompileOptions t1 = base, t4 = base;
  t1.threads = 1;
  t4.threads = 4;
  auto a = compiler::compile_rules(schema, subs.rules, t1);
  auto b = compiler::compile_rules(schema, subs.rules, t4);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(table::serialize_pipeline(a.value().pipeline),
            table::serialize_pipeline(b.value().pipeline));
}

TEST(PartitionedCompile, AutoModeGatesOnRuleCount) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(200);
  compiler::CompileOptions opts;
  opts.partition = compiler::PartitionMode::kAuto;
  opts.partition_min_rules = 100000;  // way above the set size
  auto compiled = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value().stats.partition_groups, 0u);  // monolithic
  opts.partition_min_rules = 10;
  auto again = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again.value().stats.partition_groups, 1u);
}

// --- entry interning ---------------------------------------------------

TEST(InternEntries, CollapsesIsomorphicShardChains) {
  // Per-host thresholds are identical across symbols (round-robin
  // generator), so every value shard compiles to an isomorphic price
  // chain; interning must collapse them to ~one chain.
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(2000, 50, 8);
  compiler::CompileOptions popts;
  popts.partition = compiler::PartitionMode::kForce;
  popts.partition_min_rules = 0;
  auto plain = compiler::compile_rules(schema, subs.rules, popts);
  ASSERT_TRUE(plain.ok());
  compiler::CompileOptions iopts = popts;
  iopts.intern_entries = true;
  auto interned = compiler::compile_rules(schema, subs.rules, iopts);
  ASSERT_TRUE(interned.ok());

  const auto& st = interned.value().stats;
  EXPECT_TRUE(st.interned);
  EXPECT_LT(st.intern.states_after, st.intern.states_before);
  EXPECT_LT(st.intern.entries_after, st.intern.entries_before);
  // The 50 isomorphic per-symbol chains must fold into far fewer states:
  // at least a 5x reduction on this workload (observed: ~50x).
  EXPECT_LT(st.intern.states_after * 5, st.intern.states_before);
  EXPECT_EQ(st.total_entries, st.intern.entries_after);

  expect_same_classification(schema, subs.rules, plain.value().pipeline,
                             interned.value().pipeline);
}

TEST(InternEntries, PropertyFuzzedRuleSetsClassifyIdentically) {
  auto schema = spec::make_itch_schema();
  workload::FuzzParams fp;
  fp.seed = 2026;
  const workload::GrammarFuzzer fuzzer(schema, fp);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto s = fuzzer.sample(i);
    if (s.bound.empty()) continue;
    auto plain = compiler::compile_rules(schema, s.bound, {});
    compiler::CompileOptions iopts;
    iopts.intern_entries = true;
    auto interned = compiler::compile_rules(schema, s.bound, iopts);
    ASSERT_TRUE(plain.ok() && interned.ok()) << "sample " << i;
    EXPECT_LE(interned.value().stats.intern.entries_after,
              interned.value().stats.intern.entries_before);
    for (const auto& p : s.probes) {
      lang::Env env;
      env.fields = p.fields;
      env.states.assign(schema.state_vars().size(), 0);
      EXPECT_EQ(plain.value().pipeline.evaluate_actions(env),
                interned.value().pipeline.evaluate_actions(env))
          << "sample " << i;
    }
  }
}

TEST(InternEntries, InternedPartitionedPipelineStillVerifies) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(600);
  compiler::CompileOptions opts;
  opts.partition = compiler::PartitionMode::kForce;
  opts.partition_min_rules = 0;
  opts.partition_reference = true;
  opts.intern_entries = true;
  auto compiled = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(compiled.ok());
  const compiler::Compiled& c = compiled.value();
  ASSERT_NE(c.manager, nullptr);
  const auto eq =
      verify::check_equivalence(*c.manager, c.root, c.pipeline, schema);
  EXPECT_TRUE(eq.proven_equivalent()) << eq.detail;
}

// --- S1: work-balanced shard packing -----------------------------------

TEST(ShardPlanBalance, PacksByEstimatedWorkNotRuleCount) {
  auto schema = spec::make_itch_schema();
  // Symbol STK0 gets few, very heavy rules; STK1..STK7 get many trivial
  // ones. Count-based packing would pair heavy groups together.
  std::string src;
  for (int i = 0; i < 8; ++i)
    src += "stock == STK0 and price > " + std::to_string(10 + i) +
           " and shares > 1 and price < 900 and shares < 500 and "
           "price != 77 : fwd(1)\n";
  for (int s = 1; s < 8; ++s)
    for (int i = 0; i < 8; ++i)
      src += "stock == STK" + std::to_string(s) + " : fwd(" +
             std::to_string(s * 10 + i) + ")\n";
  auto bound = parse_bound(schema, src);
  auto flat = lang::flatten_rules(bound, schema);
  ASSERT_TRUE(flat.ok());
  bdd::VarOrder order =
      compiler::choose_order(schema, flat.value(), bdd::OrderHeuristic{});
  const auto plan = compiler::plan_shards(flat.value(), order, 4);
  ASSERT_EQ(plan.shards.size(), 4u);

  std::vector<std::size_t> work(plan.shards.size(), 0);
  for (std::size_t i = 0; i < plan.shards.size(); ++i)
    for (std::size_t ri : plan.shards[i])
      work[i] += compiler::rule_work(flat.value()[ri]);
  const std::size_t wmax = *std::max_element(work.begin(), work.end());
  std::size_t total = 0;
  for (std::size_t w : work) total += w;
  // LPT over group work: no shard may exceed the ideal share by more than
  // the heaviest single group (STK0's 8 heavy rules).
  std::size_t heaviest_group = 0;
  std::map<std::uint64_t, std::size_t> group_work;
  for (const auto& r : flat.value()) {
    auto v = compiler::point_constrained_value(
        r, lang::Subject::field(*schema.resolve_field("stock")));
    ASSERT_TRUE(v.has_value());
    group_work[*v] += compiler::rule_work(r);
  }
  for (const auto& [v, w] : group_work)
    heaviest_group = std::max(heaviest_group, w);
  EXPECT_LE(wmax, total / plan.shards.size() + heaviest_group);
}

TEST(ShardPlanBalance, RuleWorkCountsPredicates) {
  auto schema = spec::make_itch_schema();
  auto bound = parse_bound(schema,
                           "stock == AAPL : fwd(1)\n"
                           "stock == AAPL and price > 1 and shares > 2 and "
                           "price < 9 : fwd(2)\n");
  auto flat = lang::flatten_rules(bound, schema);
  ASSERT_TRUE(flat.ok());
  EXPECT_LT(compiler::rule_work(flat.value()[0]),
            compiler::rule_work(flat.value()[1]));
}

// --- cost-model exploration --------------------------------------------

TEST(Explore, PicksBestScoredLayoutAndCompilesWithIt) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(800);
  compiler::ExploreParams params;
  params.sample_rules = 200;
  auto res = compiler::explore(schema, subs.rules, params);
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  const auto& r = res.value();
  EXPECT_EQ(r.sampled, 200u);
  EXPECT_EQ(r.total_rules, 800u);
  // 4 order probes + the layout grid.
  EXPECT_GE(r.candidates.size(), 8u);
  EXPECT_FALSE(r.best_label.empty());
  double min_cost = 1e300;
  for (const auto& c : r.candidates)
    if (c.ok) min_cost = std::min(min_cost, c.cost);
  EXPECT_DOUBLE_EQ(r.best_cost, min_cost);

  // The winning options must drive a successful, equivalent full compile.
  auto mono = compiler::compile_rules(schema, subs.rules, {});
  auto best = compiler::compile_rules(schema, subs.rules, r.best);
  ASSERT_TRUE(mono.ok() && best.ok());
  expect_same_classification(schema, subs.rules, mono.value().pipeline,
                             best.value().pipeline);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"best\""), std::string::npos);
}

TEST(Explore, ErrorsOnEmptyRuleSet) {
  auto schema = spec::make_itch_schema();
  EXPECT_FALSE(compiler::explore(schema, {}, {}).ok());
}

// --- S2: memory telemetry ----------------------------------------------

TEST(MemStats, PopulatedOnBothCompilePaths) {
  auto schema = spec::make_itch_schema();
  auto subs = make_subs(300);
  auto mono = compiler::compile_rules(schema, subs.rules, {});
  ASSERT_TRUE(mono.ok());
  const auto& ms = mono.value().stats.mem;
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(ms.peak_rss, 0u);
#endif
  EXPECT_GT(ms.bdd_bytes, 0u);

  compiler::CompileOptions popts;
  popts.partition = compiler::PartitionMode::kForce;
  popts.partition_min_rules = 0;
  auto part = compiler::compile_rules(schema, subs.rules, popts);
  ASSERT_TRUE(part.ok());
  EXPECT_GT(part.value().stats.mem.bdd_bytes, 0u);
  // Partitioned: bdd_bytes tracks the *largest shard*, which must be far
  // below the monolithic manager for a 20-symbol partition.
  EXPECT_LT(part.value().stats.mem.bdd_bytes, ms.bdd_bytes);

  const std::string json = mono.value().stats.to_json();
  EXPECT_NE(json.find("\"mem\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss\""), std::string::npos);
  EXPECT_NE(json.find("\"partition\""), std::string::npos);
  EXPECT_NE(json.find("\"intern\""), std::string::npos);
}

}  // namespace
