// Churn correctness (ISSUE 5 satellite): the live update path —
// IncrementalCompiler commit -> TwoPhaseInstaller::apply_delta ->
// Switch::apply_delta — validated the way Wong et al. validate switch
// compilers: differential execution against a from-scratch oracle. After
// every commit in a seeded 500-op churn sequence, the incrementally
// patched switch and a freshly compiled switch must produce bit-identical
// per-port output on the same 10K-message feed.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "pubsub/controller.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "workload/churn.hpp"
#include "workload/feed.hpp"

namespace {

using namespace camus;

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

// Digest of the full per-port egress stream: every TxPacket's port and
// exact frame bytes, in emission order. Bit-identical output <=> equal
// digests (collision-negligible for a differential test).
std::uint64_t egress_digest(switchsim::Switch& sw,
                            std::span<const switchsim::Switch::Frame> frames) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto out = sw.process_batch(frames);
  for (const auto& pkt : out) {
    h = fnv_step(h, pkt.port);
    h = fnv_step(h, pkt.frame.size());
    for (const std::uint8_t b : pkt.frame) h = fnv_step(h, b);
  }
  return h;
}

std::vector<switchsim::Switch::Frame> as_frames(
    const std::vector<workload::PackedFrame>& packed) {
  std::vector<switchsim::Switch::Frame> frames;
  frames.reserve(packed.size());
  for (const auto& pf : packed)
    frames.push_back({std::span<const std::uint8_t>(pf.bytes), pf.t_us});
  return frames;
}

// The acceptance-criteria test: 500 seeded churn ops, differential
// switchsim after every commit over a 10K-message feed.
TEST(ChurnDifferential, IncrementalMatchesFromScratchPerCommit) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;

  workload::ChurnParams cp;
  cp.seed = 7;
  cp.subs.seed = 11;
  cp.subs.n_subscriptions = 40;
  cp.subs.n_symbols = 20;
  cp.subs.n_hosts = 8;
  workload::ChurnGenerator churn(schema, cp);

  // Slot -> rule is the oracle's view of the live set; slot -> id maps the
  // same ops onto the incremental compiler. Both are driven by one op
  // stream (the generator's slot contract).
  std::map<std::size_t, lang::BoundRule> live;
  std::map<std::size_t, compiler::IncrementalCompiler::SubscriptionId> ids;
  compiler::IncrementalCompiler inc(schema, opts);
  for (std::size_t slot = 0; slot < churn.base().size(); ++slot) {
    live[slot] = churn.base()[slot];
    ids[slot] = inc.add(churn.base()[slot]);
  }
  ASSERT_TRUE(inc.commit().ok());

  switchsim::Switch sw_inc(schema, *inc.pipeline().value());
  pubsub::TwoPhaseInstaller installer(sw_inc);

  workload::FeedParams fp;
  fp.seed = 13;
  fp.n_messages = 10000;
  fp.symbols = churn.symbols();
  fp.watched_symbol = churn.symbols().front();
  const auto packed = workload::pack_feed_frames(workload::generate_feed(fp));
  const auto frames = as_frames(packed);

  constexpr std::size_t kOps = 500;

  for (std::size_t i = 0; i < kOps; ++i) {
    auto op = churn.next();
    if (op.subscribe) {
      live[op.slot] = op.rule;
      ids[op.slot] = inc.add(std::move(op.rule));
    } else {
      ASSERT_TRUE(inc.remove(ids.at(op.slot))) << "op " << i;
      live.erase(op.slot);
      ids.erase(op.slot);
    }

    auto delta = inc.commit();
    ASSERT_TRUE(delta.ok()) << "op " << i << ": "
                            << delta.error().to_string();
    auto report = installer.apply_delta(delta.value().ops);
    ASSERT_TRUE(report.committed) << "op " << i << ": " << report.error;

    // From-scratch oracle over the identical live set.
    std::vector<lang::BoundRule> rules;
    rules.reserve(live.size());
    for (const auto& [slot, rule] : live) rules.push_back(rule);
    auto oracle = compiler::compile_rules(schema, rules, opts);
    ASSERT_TRUE(oracle.ok()) << "op " << i;
    switchsim::Switch sw_ref(schema, std::move(oracle).take().pipeline);

    EXPECT_EQ(egress_digest(sw_inc, frames), egress_digest(sw_ref, frames))
        << "divergence after op " << i << " ("
        << (op.subscribe ? "subscribe" : "unsubscribe") << " slot "
        << op.slot << ", " << live.size() << " live)";
  }
  EXPECT_EQ(inc.subscription_count(), live.size());
}

TEST(ChurnDelta, NoOpCommitIsEmpty) {
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  auto r1 = inc.add_source("stock == GOOGL : fwd(1)");
  auto r2 = inc.add_source("stock == MSFT and price > 100 : fwd(2)");
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(inc.commit().ok());

  auto noop = inc.commit();
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop.value().ops.empty());
  EXPECT_EQ(noop.value().adds(), 0u);
  EXPECT_EQ(noop.value().removes(), 0u);
  EXPECT_EQ(noop.value().modifies(), 0u);
  EXPECT_DOUBLE_EQ(noop.value().reuse_fraction(), 1.0);
}

TEST(ChurnDelta, RemoveUnknownIdReturnsFalse) {
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  auto id = inc.add_source("stock == GOOGL : fwd(1)");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(inc.remove(id.value() + 1000));
  EXPECT_TRUE(inc.remove(id.value()));
  EXPECT_FALSE(inc.remove(id.value()));  // already gone
  // Removing the only pending rule before any commit yields an empty
  // pipeline, not an error.
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(inc.subscription_count(), 0u);
}

TEST(ChurnDelta, ReAddAfterRemoveRestoresBehaviour) {
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  auto volatile_id = inc.add_source("stock == MSFT and price > 500 : fwd(2)");
  ASSERT_TRUE(volatile_id.ok());
  ASSERT_TRUE(inc.commit().ok());
  const table::Pipeline before = *inc.pipeline().value();

  ASSERT_TRUE(inc.remove(volatile_id.value()));
  auto removal = inc.commit();
  ASSERT_TRUE(removal.ok());
  EXPECT_GT(removal.value().removes(), 0u);

  ASSERT_TRUE(inc.add_source("stock == MSFT and price > 500 : fwd(2)").ok());
  auto readd = inc.commit();
  ASSERT_TRUE(readd.ok());
  EXPECT_GT(readd.value().adds(), 0u);

  // Behaviourally identical to the pre-remove pipeline (state numbering
  // may differ, so compare egress, not serialized bytes).
  workload::FeedParams fp;
  fp.seed = 3;
  fp.n_messages = 2000;
  const auto packed = workload::pack_feed_frames(workload::generate_feed(fp));
  const auto frames = as_frames(packed);
  switchsim::Switch sw_before(schema, before);
  switchsim::Switch sw_after(schema, *inc.pipeline().value());
  EXPECT_EQ(egress_digest(sw_before, frames), egress_digest(sw_after, frames));
}

// apply_ops is strict: every op must land exactly, with U0xx codes naming
// the desync. Each case patches a fresh scratch copy (apply_ops may leave
// a partial patch behind on error, by contract).
TEST(ChurnDelta, StrictApplyDiagnostics) {
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  ASSERT_TRUE(inc.add_source("price > 700 : fwd(2)").ok());
  auto first = inc.commit();
  ASSERT_TRUE(first.ok());
  const auto& ops = first.value().ops;

  const table::EntryOp* field_op = nullptr;
  const table::EntryOp* leaf_op = nullptr;
  for (const auto& op : ops) {
    if (op.is_leaf() && !leaf_op) leaf_op = &op;
    if (!op.is_leaf() && !field_op) field_op = &op;
  }
  ASSERT_NE(field_op, nullptr);
  ASSERT_NE(leaf_op, nullptr);

  auto expect_code = [&](std::vector<table::EntryOp> bad,
                         const std::string& code) {
    table::Pipeline scratch = *inc.pipeline().value();
    auto res = table::apply_ops(scratch, bad);
    ASSERT_FALSE(res.ok()) << code;
    EXPECT_EQ(res.error().code, code) << res.error().to_string();
  };

  {  // U001: unknown table
    table::EntryOp op = *field_op;
    op.table = "tbl_nonexistent";
    expect_code({op}, "U001");
  }
  {  // U002: remove with no matching entry
    table::EntryOp op = *field_op;
    op.kind = table::EntryOp::Kind::kRemove;
    op.next_state = op.next_state + 4242;
    expect_code({op}, "U002");
  }
  {  // U003: duplicate add of an installed field entry
    expect_code({*field_op}, "U003");
  }
  {  // U004: modify is leaf-only
    table::EntryOp op = *field_op;
    op.kind = table::EntryOp::Kind::kModify;
    expect_code({op}, "U004");
  }
  {  // U005: leaf modify of an absent state
    table::EntryOp op = *leaf_op;
    op.kind = table::EntryOp::Kind::kModify;
    op.state = op.state + 4242;
    expect_code({op}, "U005");
  }
  {  // U006: leaf add over an existing state
    expect_code({*leaf_op}, "U006");
  }

  // And the ok path: applying the inverse of a fresh add round-trips.
  table::Pipeline scratch = *inc.pipeline().value();
  table::EntryOp del = *field_op;
  del.kind = table::EntryOp::Kind::kRemove;
  table::EntryOp add = *field_op;
  auto res = table::apply_ops(scratch, std::vector<table::EntryOp>{del, add});
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  EXPECT_EQ(res.value().adds, 1u);
  EXPECT_EQ(res.value().removes, 1u);
}

TEST(ChurnDelta, SerializeOpsRoundTrip) {
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  ASSERT_TRUE(inc.add_source("stock == GOOGL : fwd(1)").ok());
  auto ga = inc.add_source("stock == GOOGL and price > 900 : fwd(3)");
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(inc.commit().ok());
  // A second commit with an action change produces a mixed delta (adds,
  // removes, and a leaf modify where only the ActionSet changed).
  ASSERT_TRUE(inc.remove(ga.value()));
  ASSERT_TRUE(inc.add_source("stock == GOOGL and price > 900 : fwd(4)").ok());
  auto delta = inc.commit();
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta.value().ops.empty());

  const std::string wire = table::serialize_ops(delta.value().ops);
  auto parsed = table::deserialize_ops(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), delta.value().ops);

  // Tampered header and truncated body are rejected.
  EXPECT_FALSE(table::deserialize_ops("camus-delta v9\nend\n").ok());
  EXPECT_FALSE(
      table::deserialize_ops(wire.substr(0, wire.size() / 2)).ok());
}

// The controller-level path: subscribe/unsubscribe mark deltas, commit()
// flows them out, and a batch compile() interoperates with later commits.
TEST(ControllerChurn, CommitFlowsDeltas) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  ASSERT_TRUE(ctl.subscribe(2, "stock == MSFT and price > 250").ok());

  auto first = ctl.commit();
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_GT(first.value().adds(), 0u);
  EXPECT_EQ(first.value().removes(), 0u);
  EXPECT_TRUE(ctl.has_compiled());

  // A no-op commit ships nothing.
  auto noop = ctl.commit();
  ASSERT_TRUE(noop.ok());
  EXPECT_TRUE(noop.value().ops.empty());

  // One more subscriber: the delta is a strict subset of the pipeline.
  ASSERT_TRUE(ctl.subscribe(3, "stock == AAPL and price > 100").ok());
  auto second = ctl.commit();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value().adds(), 0u);
  EXPECT_LT(second.value().ops.size(), second.value().total_entries);
  EXPECT_GT(second.value().reuse_fraction(), 0.0);

  // Disconnect: the delta carries the removals.
  EXPECT_EQ(ctl.unsubscribe(3), 1u);
  auto third = ctl.commit();
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third.value().removes(), 0u);

  // Batch compile() re-seeds the diff base; a later commit still works.
  ASSERT_TRUE(ctl.compile().ok());
  ASSERT_TRUE(ctl.subscribe(4, "stock == INTC").ok());
  auto fourth = ctl.commit();
  ASSERT_TRUE(fourth.ok());
  EXPECT_GT(fourth.value().adds(), 0u);
  ASSERT_TRUE(ctl.compiled().ok());
  EXPECT_EQ(ctl.compiled().value()->stats.rule_count, 3u);
}

}  // namespace
