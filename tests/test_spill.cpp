// Graceful degradation (ISSUE 4): when the compiled pipeline exceeds the
// switch's resource budget, the controller spills the lowest-priority
// subscriptions to end-host software filtering instead of rejecting the
// install. The split must be provably complete — for every message, the
// union of switch-matched and host-matched actions equals the unsplit BDD
// semantics — and the two-phase installer must never leave the switch on a
// half-programmed pipeline, even when the control channel drops and
// corrupts chunks mid-update.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baseline/matcher.hpp"
#include "compiler/compile.hpp"
#include "fault/plan.hpp"
#include "pubsub/controller.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/extract.hpp"
#include "switchsim/switch.hpp"
#include "util/rng.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

// The per-host-threshold workload deduplicates aggressively (that is the
// paper's point), so per-subscription random thresholds are used here to
// make the pipeline genuinely expensive and force a spill.
pubsub::Controller make_controller(spec::Schema schema, std::size_t n_rules,
                                   std::uint64_t seed,
                                   std::vector<std::string>* symbols) {
  workload::ItchSubsParams sp;
  sp.seed = seed;
  sp.n_subscriptions = n_rules;
  sp.n_symbols = 60;
  sp.n_hosts = 12;
  sp.per_host_threshold = false;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  if (symbols) *symbols = subs.symbols;
  pubsub::Controller ctl(std::move(schema));
  // Priorities cycle 0..4 so the spill boundary lands mid-set.
  int i = 0;
  for (const auto& r : subs.rules) ctl.subscribe(r, i++ % 5);
  return ctl;
}

TEST(Spill, GenerousBudgetDoesNotDegrade) {
  auto schema = spec::make_itch_schema();
  auto ctl = make_controller(schema, 100, 1, nullptr);
  auto split = ctl.compile_with_budget(table::ResourceBudget{});
  ASSERT_TRUE(split.ok()) << split.error().to_string();
  EXPECT_FALSE(split.value().degraded());
  EXPECT_EQ(split.value().hw_rules.size(), 100u);
  EXPECT_TRUE(split.value().spilled.empty());
  EXPECT_TRUE(split.value().spilled_flat.empty());
}

TEST(Spill, TightBudgetSpillsLowestPriorityFirst) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 2;
  sp.n_subscriptions = 300;
  sp.n_symbols = 60;
  sp.n_hosts = 12;
  sp.per_host_threshold = false;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  pubsub::Controller ctl(schema);
  std::vector<int> priorities;
  for (std::size_t i = 0; i < subs.rules.size(); ++i) {
    priorities.push_back(static_cast<int>(i % 5));
    ctl.subscribe(subs.rules[i], priorities.back());
  }

  // Size the budget off the full compile so the test tracks the compiler:
  // allow roughly half the full pipeline's TCAM/SRAM needs. fits() checks
  // totals against per_stage * max_stages, so divide by the stage count.
  ASSERT_TRUE(ctl.compile().ok());
  const auto full = ctl.compiled().value()->pipeline.resources();
  table::ResourceBudget budget;
  budget.max_stages = full.stages;
  budget.sram_entries_per_stage = 1 + full.sram_entries / (2 * full.stages);
  budget.tcam_entries_per_stage = 1 + full.tcam_entries / (2 * full.stages);

  auto split_r = ctl.compile_with_budget(budget);
  ASSERT_TRUE(split_r.ok()) << split_r.error().to_string();
  const auto& split = split_r.value();
  ASSERT_TRUE(split.degraded());
  EXPECT_EQ(split.hw_rules.size() + split.spilled.size(), 300u);
  EXPECT_TRUE(budget.fits(split.usage));
  // Binary search: O(log n) prefix compiles, not one per rule.
  EXPECT_LE(split.compile_probes, 12u);

  EXPECT_FALSE(split.hw_rules.empty());
  EXPECT_FALSE(split.spilled.empty());

  // hw_rules must be exactly the top-k prefix of the (priority desc,
  // insertion asc) ranking — no spilled rule may outrank a hardware rule.
  std::vector<std::size_t> ranked(subs.rules.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) ranked[i] = i;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return priorities[a] > priorities[b];
                   });
  // Rule identity: the controller copies BoundRules, so the shared
  // condition pointer identifies the original subscription.
  for (std::size_t i = 0; i < split.hw_rules.size(); ++i)
    EXPECT_EQ(split.hw_rules[i].cond.get(),
              subs.rules[ranked[i]].cond.get())
        << "hardware slot " << i;
  for (std::size_t i = 0; i < split.spilled.size(); ++i)
    EXPECT_EQ(split.spilled[i].cond.get(),
              subs.rules[ranked[split.hw_rules.size() + i]].cond.get())
        << "spilled slot " << i;
}

// The completeness proof: hardware ∪ host == unsplit BDD, bit for bit,
// over 100K+ replayed messages and randomized register states.
TEST(Spill, SplitSemanticsAreComplete) {
  auto schema = spec::make_itch_schema();
  std::vector<std::string> symbols;
  auto ctl = make_controller(schema, 300, 3, &symbols);

  ASSERT_TRUE(ctl.compile().ok());
  auto unsplit = ctl.compiled().value()->pipeline;  // the full BDD semantics
  unsplit.finalize();
  const auto full = unsplit.resources();

  table::ResourceBudget budget;
  budget.max_stages = full.stages;
  budget.sram_entries_per_stage = 1 + full.sram_entries / (2 * full.stages);
  budget.tcam_entries_per_stage = 1 + full.tcam_entries / (2 * full.stages);
  auto split_r = ctl.compile_with_budget(budget);
  ASSERT_TRUE(split_r.ok()) << split_r.error().to_string();
  const auto& split = split_r.value();
  ASSERT_TRUE(split.degraded());

  table::Pipeline hw = split.hardware.pipeline;
  hw.finalize();
  baseline::NaiveMatcher host(split.spilled_flat);
  EXPECT_EQ(host.rule_count(), split.spilled.size());

  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.n_messages = 110000;
  fp.symbols = symbols;
  fp.watched_fraction = 0.05;
  auto feed = workload::generate_feed(fp);
  ASSERT_GE(feed.messages.size(), 100000u);

  switchsim::ItchFieldExtractor ex(schema);
  util::Rng state_rng(99);
  const std::size_t n_states = schema.state_vars().size();

  lang::Env env;
  std::uint64_t mismatches = 0;
  std::uint64_t union_digest = 0xcbf29ce484222325ULL;
  std::uint64_t full_digest = 0xcbf29ce484222325ULL;
  auto fold = [](std::uint64_t h, const lang::ActionSet& a) {
    for (const auto p : a.ports) h = (h ^ p) * 0x100000001b3ULL;
    h = (h ^ 0xfe) * 0x100000001b3ULL;
    for (const auto u : a.state_updates) h = (h ^ u) * 0x100000001b3ULL;
    return h;
  };
  for (const auto& fm : feed.messages) {
    env.fields = ex.extract(fm.msg);
    // Randomized register state: completeness must hold on the whole
    // semantic domain, not just the zero-state slice.
    env.states.clear();
    for (std::size_t s = 0; s < n_states; ++s)
      env.states.push_back(state_rng.uniform(0, 2000));

    const lang::ActionSet& want = unsplit.evaluate_actions(env);
    lang::ActionSet got = hw.evaluate_actions(env);  // switch-delivered
    got.merge(host.match(env));                      // ∪ host-filtered
    mismatches += !(got == want);
    union_digest = fold(union_digest, got);
    full_digest = fold(full_digest, want);
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(union_digest, full_digest);
}

// ------------------------------------------------- TwoPhaseInstaller

table::Pipeline compile_set(const spec::Schema& schema, std::uint64_t seed,
                            std::size_t n_rules) {
  workload::ItchSubsParams sp;
  sp.seed = seed;
  sp.n_subscriptions = n_rules;
  sp.n_symbols = 30;
  sp.n_hosts = 6;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  return compiler::compile_rules(schema, subs.rules).take().pipeline;
}

TEST(TwoPhaseInstall, CleanChannelCommits) {
  auto schema = spec::make_itch_schema();
  auto p1 = compile_set(schema, 1, 40);
  auto p2 = compile_set(schema, 2, 60);

  switchsim::Switch sw(schema, p1);
  pubsub::TwoPhaseInstaller installer(sw);
  const auto before = installer.active();
  ASSERT_TRUE(before);

  const auto report = installer.install(p2);
  EXPECT_TRUE(report.committed) << report.error;
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.chunk_retransmits, 0u);
  EXPECT_EQ(installer.commits(), 1u);
  // The switch and the reader snapshot both moved to p2.
  EXPECT_EQ(sw.pipeline().total_entries(), p2.total_entries());
  EXPECT_EQ(installer.active()->total_entries(), p2.total_entries());
}

TEST(TwoPhaseInstall, RollbackRestoresLastGood) {
  auto schema = spec::make_itch_schema();
  auto p1 = compile_set(schema, 1, 40);
  auto p2 = compile_set(schema, 2, 60);
  switchsim::Switch sw(schema, p1);
  pubsub::TwoPhaseInstaller installer(sw);

  ASSERT_TRUE(installer.install(p2).committed);
  ASSERT_TRUE(installer.rollback());
  EXPECT_EQ(sw.pipeline().total_entries(), p1.total_entries());
  EXPECT_EQ(installer.active()->total_entries(), p1.total_entries());
}

TEST(TwoPhaseInstall, LossyChannelRetriesAndCommits) {
  auto schema = spec::make_itch_schema();
  auto p1 = compile_set(schema, 1, 40);
  auto p2 = compile_set(schema, 2, 60);
  switchsim::Switch sw(schema, p1);
  pubsub::TwoPhaseInstaller installer(sw);

  fault::FaultSpec spec;
  spec.drop = 0.2;
  spec.corrupt = 0.1;
  spec.corrupt_max_bits = 4;
  const fault::Plan plan(spec, 31);

  const auto report = installer.install(p2, &plan);
  EXPECT_TRUE(report.committed) << report.error;
  EXPECT_GT(report.chunk_retransmits, 0u);  // the channel really did hurt
  EXPECT_EQ(sw.pipeline().total_entries(), p2.total_entries());
}

TEST(TwoPhaseInstall, DeadChannelAbortsWithSwitchUntouched) {
  auto schema = spec::make_itch_schema();
  auto p1 = compile_set(schema, 1, 40);
  auto p2 = compile_set(schema, 2, 60);
  switchsim::Switch sw(schema, p1);
  pubsub::TwoPhaseInstaller installer(sw);
  const auto before = installer.active();

  fault::FaultSpec spec;
  spec.drop = 1.0;  // mid-update link failure: nothing gets through
  const fault::Plan plan(spec, 7);

  const auto report = installer.install(p2, &plan, 512, 2, 3);
  EXPECT_FALSE(report.committed);
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(report.attempts, 2u);
  // Rollback semantics: the switch still runs p1 and readers still see
  // the last-good snapshot.
  EXPECT_EQ(sw.pipeline().total_entries(), p1.total_entries());
  EXPECT_EQ(installer.active().get(), before.get());
  EXPECT_EQ(installer.commits(), 0u);
}

// A faulted install campaign is exactly reproducible from the plan seed.
TEST(TwoPhaseInstall, FaultedInstallIsDeterministic) {
  auto schema = spec::make_itch_schema();
  auto p1 = compile_set(schema, 1, 40);
  auto p2 = compile_set(schema, 2, 60);
  fault::FaultSpec spec;
  spec.drop = 0.3;
  spec.corrupt = 0.15;
  const fault::Plan plan(spec, 12345);

  switchsim::Switch sw_a(schema, p1), sw_b(schema, p1);
  pubsub::TwoPhaseInstaller ia(sw_a), ib(sw_b);
  const auto ra = ia.install(p2, &plan);
  const auto rb = ib.install(p2, &plan);
  EXPECT_EQ(ra.committed, rb.committed);
  EXPECT_EQ(ra.attempts, rb.attempts);
  EXPECT_EQ(ra.chunk_sends, rb.chunk_sends);
  EXPECT_EQ(ra.chunk_retransmits, rb.chunk_retransmits);
}

}  // namespace
