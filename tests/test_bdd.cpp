// Multi-terminal BDD: reductions, ordering invariants, union semantics,
// semantic pruning (reduction iii).
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "lang/parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus;
using bdd::BddManager;
using bdd::DomainMap;
using bdd::NodeRef;
using bdd::VarOrder;
using lang::ActionSet;
using lang::BoundPredicate;
using lang::Conjunction;
using lang::RelOp;
using lang::Subject;
using util::IntervalSet;

spec::Schema two_field_schema(std::uint32_t wa = 8, std::uint32_t wb = 8) {
  spec::Schema s;
  s.add_header("t", "h");
  auto a = s.add_field("a", wa);
  auto b = s.add_field("b", wb);
  s.mark_queryable(a, spec::MatchHint::kRange);
  s.mark_queryable(b, spec::MatchHint::kRange);
  return s;
}

BddManager make_manager(const spec::Schema& s) {
  std::vector<Subject> order;
  for (auto f : s.query_order()) order.push_back(Subject::field(f));
  return BddManager(VarOrder(order), DomainMap(s));
}

ActionSet fwd(std::initializer_list<std::uint16_t> ports) {
  ActionSet a;
  for (auto p : ports) a.add_port(p);
  return a;
}

TEST(VarOrderTest, RankAndComparison) {
  VarOrder order({Subject::field(3), Subject::field(1), Subject::state(0)});
  EXPECT_EQ(order.rank(Subject::field(3)), 0u);
  EXPECT_EQ(order.rank(Subject::field(1)), 1u);
  EXPECT_EQ(order.rank(Subject::state(0)), 2u);
  EXPECT_THROW(order.rank(Subject::field(0)), std::out_of_range);
  EXPECT_FALSE(order.contains(Subject::field(2)));

  // Same subject: by value, then Lt < Eq < Gt.
  EXPECT_TRUE(order.less({Subject::field(3), RelOp::kEq, 5},
                         {Subject::field(3), RelOp::kEq, 6}));
  EXPECT_TRUE(order.less({Subject::field(3), RelOp::kLt, 5},
                         {Subject::field(3), RelOp::kEq, 5}));
  EXPECT_TRUE(order.less({Subject::field(3), RelOp::kEq, 5},
                         {Subject::field(3), RelOp::kGt, 5}));
  // Cross subject: rank dominates.
  EXPECT_TRUE(order.less({Subject::field(3), RelOp::kGt, 200},
                         {Subject::field(1), RelOp::kLt, 1}));
  EXPECT_THROW(VarOrder({Subject::field(1), Subject::field(1)}),
               std::invalid_argument);
}

TEST(Bdd, TerminalInterning) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  EXPECT_EQ(mgr.terminal(ActionSet{}), mgr.drop());
  const NodeRef t1 = mgr.terminal(fwd({1, 2}));
  const NodeRef t2 = mgr.terminal(fwd({2, 1}));
  EXPECT_EQ(t1, t2);  // canonical sorted ports
  EXPECT_NE(t1, mgr.terminal(fwd({1})));
  EXPECT_EQ(mgr.terminal_actions(t1).ports,
            (std::vector<std::uint16_t>{1, 2}));
}

TEST(Bdd, MkReductions) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  const auto v = mgr.var_for({Subject::field(0), RelOp::kLt, 10});
  const NodeRef t = mgr.terminal(fwd({1}));

  // Reduction (ii): lo == hi collapses.
  EXPECT_EQ(mgr.mk(v, t, t), t);
  // Reduction (i): structural sharing.
  const NodeRef n1 = mgr.mk(v, mgr.drop(), t);
  const NodeRef n2 = mgr.mk(v, mgr.drop(), t);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(mgr.node_table_size(), 1u);
}

TEST(Bdd, MkEnforcesVariableOrder) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  const auto va = mgr.var_for({Subject::field(0), RelOp::kLt, 10});
  const auto vb = mgr.var_for({Subject::field(1), RelOp::kLt, 10});
  const NodeRef t = mgr.terminal(fwd({1}));
  const NodeRef nb = mgr.mk(vb, mgr.drop(), t);
  // b-node below a-node: fine.
  EXPECT_NO_THROW(mgr.mk(va, mgr.drop(), nb));
  // a-node below b-node: order violation.
  const NodeRef na = mgr.mk(va, mgr.drop(), t);
  EXPECT_THROW(mgr.mk(vb, mgr.drop(), na), std::logic_error);
}

TEST(Bdd, VarForRejectsUnknownSubject) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  EXPECT_THROW(mgr.var_for({Subject::state(5), RelOp::kEq, 1}),
               std::invalid_argument);
}

TEST(Bdd, ConjunctionEvaluation) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  Conjunction conj;
  conj.constraints[Subject::field(0)] = IntervalSet::range(10, 20);
  conj.constraints[Subject::field(1)] =
      IntervalSet::point(3).unite(IntervalSet::point(7));
  const NodeRef root = mgr.build_conjunction(conj, fwd({4}));

  lang::Env env;
  for (std::uint64_t a = 0; a <= 255; a += 5) {
    for (std::uint64_t b = 0; b <= 10; ++b) {
      env.fields = {a, b};
      const bool expect = a >= 10 && a <= 20 && (b == 3 || b == 7);
      EXPECT_EQ(!mgr.evaluate(root, env).is_drop(), expect)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Bdd, ConjunctionEdgeDomains) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  // Constraint touching both domain edges: [0, 5] u [250, 255].
  Conjunction conj;
  conj.constraints[Subject::field(0)] =
      IntervalSet::range(0, 5).unite(IntervalSet::range(250, 255));
  const NodeRef root = mgr.build_conjunction(conj, fwd({1}));
  lang::Env env;
  for (std::uint64_t a : {0ULL, 5ULL, 6ULL, 249ULL, 250ULL, 255ULL}) {
    env.fields = {a, 0};
    EXPECT_EQ(!mgr.evaluate(root, env).is_drop(), a <= 5 || a >= 250) << a;
  }
}

TEST(Bdd, UnionMergesActionSets) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  Conjunction c1, c2;
  c1.constraints[Subject::field(0)] = IntervalSet::range(0, 100);
  c2.constraints[Subject::field(0)] = IntervalSet::range(50, 150);
  const NodeRef u = mgr.unite(mgr.build_conjunction(c1, fwd({1})),
                              mgr.build_conjunction(c2, fwd({2})));
  lang::Env env;
  env.fields = {75, 0};
  EXPECT_EQ(mgr.evaluate(u, env).ports, (std::vector<std::uint16_t>{1, 2}));
  env.fields = {25, 0};
  EXPECT_EQ(mgr.evaluate(u, env).ports, (std::vector<std::uint16_t>{1}));
  env.fields = {125, 0};
  EXPECT_EQ(mgr.evaluate(u, env).ports, (std::vector<std::uint16_t>{2}));
  env.fields = {200, 0};
  EXPECT_TRUE(mgr.evaluate(u, env).is_drop());
}

TEST(Bdd, SemanticUnionPrunesImpliedPredicates) {
  // Two threshold rules on one field: the syntactic union keeps the
  // impossible "x > 100 true but x > 50 false" path; the semantic union
  // must not.
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  Conjunction c1, c2;
  c1.constraints[Subject::field(0)] = IntervalSet::greater_than(50, 255);
  c2.constraints[Subject::field(0)] = IntervalSet::greater_than(100, 255);
  const NodeRef r1 = mgr.build_conjunction(c1, fwd({1}));
  const NodeRef r2 = mgr.build_conjunction(c2, fwd({2}));

  const NodeRef syntactic = mgr.unite(r1, r2, /*semantic=*/false);
  const NodeRef semantic = mgr.unite(r1, r2, /*semantic=*/true);

  // Same function...
  lang::Env env;
  for (std::uint64_t x = 0; x <= 255; ++x) {
    env.fields = {x, 0};
    EXPECT_EQ(mgr.evaluate(syntactic, env), mgr.evaluate(semantic, env)) << x;
  }
  // ...but the semantic result is no larger, and pruning the syntactic
  // one reaches the same node count.
  const auto s_stats = mgr.stats(syntactic);
  const auto p_stats = mgr.stats(mgr.prune(syntactic));
  const auto m_stats = mgr.stats(semantic);
  EXPECT_LE(m_stats.node_count, s_stats.node_count);
  EXPECT_EQ(p_stats.node_count, m_stats.node_count);
}

TEST(Bdd, PruneRemovesImpliedNodes) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  // Hand-build: Lt(50) -> hi: Lt(80)-node (implied true under x < 50).
  const auto v50 = mgr.var_for({Subject::field(0), RelOp::kLt, 50});
  const auto v80 = mgr.var_for({Subject::field(0), RelOp::kLt, 80});
  const NodeRef t1 = mgr.terminal(fwd({1}));
  const NodeRef inner = mgr.mk(v80, mgr.drop(), t1);  // x<80 ? t1 : drop
  const NodeRef root = mgr.mk(v50, mgr.drop(), inner);
  const NodeRef pruned = mgr.prune(root);

  // Pruned form is a single Lt(50) test straight to t1.
  const auto st = mgr.stats(pruned);
  EXPECT_EQ(st.node_count, 1u);
  lang::Env env;
  for (std::uint64_t x : {0ULL, 49ULL, 50ULL, 100ULL}) {
    env.fields = {x, 0};
    EXPECT_EQ(mgr.evaluate(pruned, env), mgr.evaluate(root, env)) << x;
  }
}

TEST(Bdd, UniteAllEmptyAndSingle) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  EXPECT_EQ(mgr.unite_all({}), mgr.drop());
  Conjunction c;
  c.constraints[Subject::field(0)] = IntervalSet::point(5);
  const NodeRef r = mgr.build_conjunction(c, fwd({1}));
  EXPECT_EQ(mgr.unite_all({r}), r);
}

TEST(Bdd, StatsAndDot) {
  auto schema = two_field_schema();
  auto mgr = make_manager(schema);
  Conjunction c;
  c.constraints[Subject::field(0)] = IntervalSet::range(10, 20);
  c.constraints[Subject::field(1)] = IntervalSet::point(3);
  const NodeRef root = mgr.build_conjunction(c, fwd({1, 2}));

  const auto st = mgr.stats(root);
  EXPECT_EQ(st.nodes_per_subject.at(Subject::field(0)), 2u);  // Lt+Gt chain
  EXPECT_EQ(st.nodes_per_subject.at(Subject::field(1)), 1u);  // Eq
  EXPECT_EQ(st.terminal_count, 2u);  // fwd(1,2) and drop

  const std::string dot = mgr.to_dot(root, &schema);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a < 10"), std::string::npos);
  EXPECT_NE(dot.find("fwd(1,2)"), std::string::npos);
}

// Property: union of N random single-conjunction rules computes the same
// function as direct per-rule evaluation, for both syntactic and semantic
// unions, with and without a final prune.
struct UnionParams {
  std::uint64_t seed;
  bool semantic;
};

class BddUnionEquivalence : public ::testing::TestWithParam<UnionParams> {};

TEST_P(BddUnionEquivalence, MatchesDirectEvaluation) {
  const auto p = GetParam();
  util::Rng rng(p.seed);
  auto schema = two_field_schema(6, 6);  // 64-value domains
  auto mgr = make_manager(schema);

  struct RuleModel {
    Conjunction conj;
    ActionSet actions;
  };
  std::vector<RuleModel> rules;
  std::vector<NodeRef> roots;
  const std::size_t n = 2 + rng.uniform(0, 10);
  for (std::size_t i = 0; i < n; ++i) {
    RuleModel rm;
    for (std::uint32_t f = 0; f < 2; ++f) {
      if (rng.chance(0.3)) continue;
      IntervalSet s;
      switch (rng.uniform(0, 2)) {
        case 0: s = IntervalSet::point(rng.uniform(0, 63)); break;
        case 1: s = IntervalSet::less_than(rng.uniform(1, 63)); break;
        default: s = IntervalSet::greater_than(rng.uniform(0, 62), 63); break;
      }
      if (rng.chance(0.3)) s = s.complement(63);
      if (s.is_empty() || s.is_all(63)) continue;
      rm.conj.constraints[Subject::field(f)] = s;
    }
    rm.actions.add_port(static_cast<std::uint16_t>(1 + rng.uniform(0, 5)));
    roots.push_back(mgr.build_conjunction(rm.conj, rm.actions));
    rules.push_back(std::move(rm));
  }

  NodeRef u = mgr.unite_all(roots, p.semantic);
  if (rng.chance(0.5)) u = mgr.prune(u);

  lang::Env env;
  for (std::uint64_t a = 0; a <= 63; ++a) {
    for (std::uint64_t b = 0; b <= 63; ++b) {
      env.fields = {a, b};
      ActionSet expect;
      for (const auto& rm : rules)
        if (lang::eval_conjunction(rm.conj, env)) expect.merge(rm.actions);
      ASSERT_EQ(mgr.evaluate(u, env), expect) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BddUnionEquivalence,
    ::testing::Values(UnionParams{1, true}, UnionParams{2, true},
                      UnionParams{3, false}, UnionParams{4, false},
                      UnionParams{5, true}, UnionParams{6, false},
                      UnionParams{7, true}, UnionParams{8, false}));

}  // namespace

namespace cache_tests {

using namespace camus;
using bdd::BddManager;
using bdd::DomainMap;
using bdd::NodeRef;
using bdd::VarOrder;
using lang::Subject;

TEST(BddCaches, ClearCachesPreservesNodesAndSemantics) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("x", 8);
  s.mark_queryable(f, spec::MatchHint::kRange);
  BddManager mgr(VarOrder({Subject::field(f)}), DomainMap(s));

  lang::Conjunction c1, c2;
  c1.constraints[Subject::field(f)] = util::IntervalSet::range(0, 99);
  c2.constraints[Subject::field(f)] = util::IntervalSet::range(50, 200);
  lang::ActionSet a1, a2;
  a1.add_port(1);
  a2.add_port(2);
  const NodeRef r1 = mgr.build_conjunction(c1, a1);
  const NodeRef r2 = mgr.build_conjunction(c2, a2);
  const NodeRef u1 = mgr.unite(r1, r2);
  const std::size_t nodes_before = mgr.node_table_size();

  mgr.clear_caches();
  // Recomputing after a cache clear yields the identical hash-consed node.
  const NodeRef u2 = mgr.unite(r1, r2);
  EXPECT_EQ(u1, u2);
  EXPECT_EQ(mgr.node_table_size(), nodes_before);

  lang::Env env;
  for (std::uint64_t x : {0ULL, 49ULL, 75ULL, 150ULL, 250ULL}) {
    env.fields = {x};
    EXPECT_EQ(mgr.evaluate(u1, env), mgr.evaluate(u2, env)) << x;
  }
}

TEST(BddCaches, TerminalCountGrowsOnlyForDistinctSets) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("x", 8);
  s.mark_queryable(f, spec::MatchHint::kRange);
  BddManager mgr(VarOrder({Subject::field(f)}), DomainMap(s));
  const std::size_t base = mgr.terminal_count();  // drop terminal
  lang::ActionSet a;
  a.add_port(3);
  (void)mgr.terminal(a);
  (void)mgr.terminal(a);
  EXPECT_EQ(mgr.terminal_count(), base + 1);
}

}  // namespace cache_tests
