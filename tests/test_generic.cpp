// Generic bit-packed application payloads: arbitrary user-defined packet
// formats flowing through the switch as real frames.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "proto/generic.hpp"
#include "spec/spec_parser.hpp"
#include "switchsim/switch.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus;

TEST(BitPacking, WriterReaderRoundTrip) {
  proto::BitWriter w;
  w.put(0b101, 3);
  w.put(0xffff, 16);
  w.put(1, 1);
  w.put(0x123456789abcdef0ULL, 64);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), (3 + 16 + 1 + 64 + 7) / 8u);

  proto::BitReader r(bytes);
  std::uint64_t v = 0;
  ASSERT_TRUE(r.get(3, &v));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.get(16, &v));
  EXPECT_EQ(v, 0xffffu);
  ASSERT_TRUE(r.get(1, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(r.get(64, &v));
  EXPECT_EQ(v, 0x123456789abcdef0ULL);
  EXPECT_FALSE(r.get(8, &v));  // exhausted (only padding bits remain)
}

TEST(BitPacking, MasksExcessBits) {
  proto::BitWriter w;
  w.put(0xff, 4);  // only low 4 bits kept
  const auto bytes = w.take();
  proto::BitReader r(bytes);
  std::uint64_t v = 0;
  ASSERT_TRUE(r.get(4, &v));
  EXPECT_EQ(v, 0xfu);
}

class BitPackingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitPackingProperty, RandomFieldSequences) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> fields;
    proto::BitWriter w;
    const std::size_t n = 1 + rng.uniform(0, 15);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t bits = static_cast<std::uint32_t>(
          rng.uniform(1, 64));
      const std::uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
      const std::uint64_t v = rng.next() & mask;
      fields.emplace_back(v, bits);
      w.put(v, bits);
    }
    const auto bytes = w.take();
    proto::BitReader r(bytes);
    for (const auto& [v, bits] : fields) {
      std::uint64_t got = 0;
      ASSERT_TRUE(r.get(bits, &got));
      ASSERT_EQ(got, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitPackingProperty,
                         ::testing::Values(71, 72, 73));

spec::Schema lb_schema() {
  auto r = spec::parse_spec(R"(
    header_type flow_t {
        fields { src: 32; dst: 32; dport: 16; proto: 8; }
    }
    header flow_t flow;
    @query_field(flow.src)
    @query_field_exact(flow.dst)
    @query_field_exact(flow.dport)
  )");
  EXPECT_TRUE(r.ok());
  return std::move(r).take();
}

TEST(GenericPacket, PayloadAndFrameRoundTrip) {
  auto schema = lb_schema();
  const std::vector<std::uint64_t> fields = {0xc0a80101, 0x0a000064, 443, 6};
  const auto payload = proto::encode_app_payload(schema, fields);
  EXPECT_EQ(payload.size(), (32 + 32 + 16 + 8) / 8u);
  auto decoded = proto::decode_app_payload(schema, payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, fields);

  const auto frame = proto::encode_generic_packet(schema, fields);
  auto decoded2 = proto::decode_generic_packet(schema, frame);
  ASSERT_TRUE(decoded2.has_value());
  EXPECT_EQ(*decoded2, fields);
}

TEST(GenericPacket, RejectsTruncation) {
  auto schema = lb_schema();
  const auto frame =
      proto::encode_generic_packet(schema, {1, 2, 3, 4});
  for (std::size_t cut = 1; cut < frame.size(); cut += 5) {
    std::vector<std::uint8_t> trunc(frame.begin(), frame.end() - cut);
    EXPECT_FALSE(proto::decode_generic_packet(schema, trunc).has_value());
  }
}

TEST(GenericPacket, SubByteWidthsRoundTrip) {
  auto r = spec::parse_spec(R"(
    header_type odd_t { fields { a: 3; b: 13; c: 20; d: 1; } }
    header odd_t odd;
    @query_field(odd.a)
    @query_field(odd.b)
    @query_field(odd.c)
    @query_field(odd.d)
  )");
  ASSERT_TRUE(r.ok());
  const auto& schema = r.value();
  const std::vector<std::uint64_t> fields = {5, 8000, 999999, 1};
  auto decoded = proto::decode_app_payload(
      schema, proto::encode_app_payload(schema, fields));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, fields);
}

TEST(GenericSwitch, LoadBalancerOverRealFrames) {
  auto schema = lb_schema();
  auto compiled = compiler::compile_source(schema, R"(
    flow.dst == 10.0.0.100 and dport == 80 and src < 128.0.0.0 : fwd(1)
    flow.dst == 10.0.0.100 and dport == 80 and src >= 128.0.0.0 : fwd(2)
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  switchsim::Switch sw(schema, compiled.value().pipeline);

  auto route = [&](std::uint32_t client, std::uint16_t port) {
    const auto frame = proto::encode_generic_packet(
        schema, {client, 0x0a000064, port, 6});
    auto copies = sw.process_generic(frame, 0);
    return copies.empty() ? 0 : copies[0].port;
  };
  EXPECT_EQ(route(0x01020304, 80), 1);  // low client space
  EXPECT_EQ(route(0xc0a80101, 80), 2);  // high client space
  EXPECT_EQ(route(0x01020304, 443), 0); // wrong port: dropped
  EXPECT_EQ(sw.counters().rx_frames, 3u);
  EXPECT_EQ(sw.counters().dropped, 1u);

  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_TRUE(sw.process_generic(junk, 0).empty());
  EXPECT_EQ(sw.counters().parse_errors, 1u);
}

}  // namespace
