// Software matchers: naive and counting-index implementations must agree
// with each other and with the compiled pipeline.
#include <gtest/gtest.h>

#include "baseline/matcher.hpp"
#include "compiler/compile.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/siena.hpp"

namespace {

using namespace camus;

TEST(NaiveMatcher, UnionOfMatchingRules) {
  workload::SienaParams p;
  p.n_subscriptions = 5;
  auto w = workload::generate_siena(p);
  auto flat = lang::flatten_rules(w.rules, w.schema);
  ASSERT_TRUE(flat.ok());
  baseline::NaiveMatcher m(flat.value());
  EXPECT_EQ(m.rule_count(), 5u);
}

TEST(CountingMatcher, HandlesAlwaysTrueRules) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("x", 8);
  s.mark_queryable(f, spec::MatchHint::kRange);

  // "x >= 0" folds to true: matches everything.
  std::vector<lang::FlatRule> rules(1);
  rules[0].terms.push_back(lang::Conjunction{});
  rules[0].actions.add_port(9);
  baseline::CountingMatcher cm(rules, s);
  lang::Env env;
  env.fields = {123};
  EXPECT_EQ(cm.match(env).ports, (std::vector<std::uint16_t>{9}));
}

class MatcherEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherEquivalence, NaiveCountingAndPipelineAgree) {
  util::Rng rng(GetParam());
  workload::SienaParams p;
  p.seed = GetParam();
  p.n_subscriptions = 30;
  p.predicates_per_subscription = 2;
  p.n_symbols = 8;
  p.numeric_max = 50;
  auto w = workload::generate_siena(p);

  auto flat = lang::flatten_rules(w.rules, w.schema);
  ASSERT_TRUE(flat.ok());
  baseline::NaiveMatcher naive(flat.value());
  baseline::CountingMatcher counting(flat.value(), w.schema);
  auto compiled = compiler::compile_rules(w.schema, w.rules);
  ASSERT_TRUE(compiled.ok());

  lang::Env env;
  for (int trial = 0; trial < 500; ++trial) {
    env.fields.clear();
    for (const auto& f : w.schema.fields()) {
      if (f.kind == spec::FieldKind::kSymbol) {
        env.fields.push_back(
            util::encode_symbol(rng.pick(w.symbols)));
      } else {
        env.fields.push_back(rng.uniform(0, p.numeric_max));
      }
    }
    const auto expected = naive.match(env);
    EXPECT_EQ(counting.match(env), expected) << trial;
    EXPECT_EQ(compiled.value().pipeline.evaluate_actions(env), expected)
        << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
