// Table IR: lookup semantics, multicast groups, TCAM cost model, budgets.
#include <gtest/gtest.h>

#include "table/pipeline.hpp"
#include "table/table.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus::table;
using camus::lang::Subject;

TEST(ValueMatchTest, Semantics) {
  EXPECT_TRUE(ValueMatch::any().matches(0));
  EXPECT_TRUE(ValueMatch::any().matches(~0ULL));
  EXPECT_TRUE(ValueMatch::exact(5).matches(5));
  EXPECT_FALSE(ValueMatch::exact(5).matches(6));
  EXPECT_TRUE(ValueMatch::range(3, 7).matches(3));
  EXPECT_TRUE(ValueMatch::range(3, 7).matches(7));
  EXPECT_FALSE(ValueMatch::range(3, 7).matches(8));
  EXPECT_EQ(ValueMatch::any().to_string(), "*");
  EXPECT_EQ(ValueMatch::exact(5).to_string(), "5");
  EXPECT_EQ(ValueMatch::range(1, 2).to_string(), "[1,2]");
}

TEST(TableTest, LookupPrecedence) {
  Table t("t", Subject::field(0), MatchKind::kRange, 16);
  t.add_entry({1, ValueMatch::exact(10), 100});
  t.add_entry({1, ValueMatch::range(0, 50), 200});
  t.add_entry({1, ValueMatch::any(), 300});
  // Range entries must be disjoint; exact(10) and range [0,50] coexist
  // because exact wins first.
  t.finalize();

  EXPECT_EQ(t.lookup(1, 10), std::optional<StateId>(100));  // exact first
  EXPECT_EQ(t.lookup(1, 20), std::optional<StateId>(200));  // range
  EXPECT_EQ(t.lookup(1, 60), std::optional<StateId>(300));  // wildcard
  EXPECT_EQ(t.lookup(2, 10), std::nullopt);                 // unknown state
}

TEST(TableTest, RangeBinarySearch) {
  Table t("t", Subject::field(0), MatchKind::kRange, 16);
  t.add_entry({0, ValueMatch::range(10, 19), 1});
  t.add_entry({0, ValueMatch::range(30, 39), 2});
  t.add_entry({0, ValueMatch::range(20, 29), 3});
  t.finalize();
  EXPECT_EQ(t.lookup(0, 15), std::optional<StateId>(1));
  EXPECT_EQ(t.lookup(0, 25), std::optional<StateId>(3));
  EXPECT_EQ(t.lookup(0, 35), std::optional<StateId>(2));
  EXPECT_EQ(t.lookup(0, 9), std::nullopt);
  EXPECT_EQ(t.lookup(0, 40), std::nullopt);
}

TEST(TableTest, OverlappingRangesRejectedByValidate) {
  Table t("t", Subject::field(0), MatchKind::kRange, 16);
  t.add_entry({0, ValueMatch::range(10, 20), 1});
  t.add_entry({0, ValueMatch::range(15, 25), 2});
  auto r = t.validate();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("overlapping"), std::string::npos);

  Table ok("t", Subject::field(0), MatchKind::kRange, 16);
  ok.add_entry({0, ValueMatch::range(10, 20), 1});
  ok.add_entry({0, ValueMatch::range(21, 25), 2});
  ok.add_entry({1, ValueMatch::range(15, 25), 2});  // other state: disjoint
  EXPECT_TRUE(ok.validate().ok());
}

TEST(TableTest, LookupBeforeFinalizeIndexesLazily) {
  Table t("t", Subject::field(0), MatchKind::kExact, 16);
  t.add_entry({0, ValueMatch::exact(1), 1});
  EXPECT_FALSE(t.finalized());
  EXPECT_EQ(t.lookup(0, 1), std::optional<StateId>(1));
  EXPECT_TRUE(t.finalized());
  // Adding an entry invalidates the index; lookup rebuilds it.
  t.add_entry({0, ValueMatch::exact(2), 7});
  EXPECT_FALSE(t.finalized());
  EXPECT_EQ(t.lookup(0, 2), std::optional<StateId>(7));
}

TEST(MulticastGroupsTest, InternDeduplicates) {
  MulticastGroups g;
  const auto a = g.intern({1, 2, 3});
  const auto b = g.intern({1, 2, 3});
  const auto c = g.intern({1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.ports(a), (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(LeafTableTest, LookupAndMiss) {
  LeafTable leaf;
  LeafEntry e;
  e.state = 7;
  e.actions.add_port(3);
  leaf.add_entry(e);
  ASSERT_NE(leaf.lookup(7), nullptr);
  EXPECT_EQ(leaf.lookup(7)->actions.ports,
            (std::vector<std::uint16_t>{3}));
  EXPECT_EQ(leaf.lookup(8), nullptr);
}

TEST(TcamExpansion, KnownCases) {
  // Full domain: one wildcard entry.
  EXPECT_EQ(tcam_entries_for_range(0, 255, 8), 1u);
  // Single point: one entry.
  EXPECT_EQ(tcam_entries_for_range(7, 7, 8), 1u);
  // Aligned power-of-two block: one entry.
  EXPECT_EQ(tcam_entries_for_range(16, 31, 8), 1u);
  // Classic worst-ish case [1, 254] on 8 bits: 14 entries.
  EXPECT_EQ(tcam_entries_for_range(1, 254, 8), 14u);
  // Empty.
  EXPECT_EQ(tcam_entries_for_range(5, 4, 8), 0u);
  // Clipped to width.
  EXPECT_EQ(tcam_entries_for_range(0, 1000, 8), 1u);
  EXPECT_EQ(tcam_entries_for_range(300, 1000, 8), 0u);
}

TEST(TcamExpansion, CoversExactlyTheRange) {
  // Cross-check the greedy cover against brute force on random ranges:
  // count entries and verify the bound O(2w - 2).
  camus::util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t lo = rng.uniform(0, 255);
    const std::uint64_t hi = rng.uniform(lo, 255);
    const std::uint64_t n = tcam_entries_for_range(lo, hi, 8);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 14u);  // 2*8 - 2
  }
  EXPECT_EQ(tcam_entries_for_range(0, ~0ULL, 64), 1u);
}

TEST(Resources, TableAccounting) {
  Table exact("e", Subject::field(0), MatchKind::kExact, 32);
  exact.add_entry({0, ValueMatch::exact(1), 1});
  exact.add_entry({0, ValueMatch::exact(2), 2});
  exact.add_entry({0, ValueMatch::any(), 3});
  const auto eu = exact.resources();
  EXPECT_EQ(eu.sram_entries, 2u);
  EXPECT_EQ(eu.tcam_entries, 1u);  // wildcard fallback
  EXPECT_EQ(eu.logical_entries, 3u);

  Table range("r", Subject::field(0), MatchKind::kRange, 8);
  range.add_entry({0, ValueMatch::range(1, 254), 1});  // 14 TCAM entries
  range.add_entry({0, ValueMatch::exact(0), 2});       // 1 TCAM (point)
  const auto ru = range.resources();
  EXPECT_EQ(ru.sram_entries, 0u);
  EXPECT_EQ(ru.tcam_entries, 15u);
}

TEST(Resources, BudgetFits) {
  ResourceBudget budget;
  ResourceUsage ok;
  ok.stages = 3;
  ok.sram_entries = 1000;
  ok.tcam_entries = 1000;
  ok.multicast_groups = 10;
  EXPECT_TRUE(budget.fits(ok));

  ResourceUsage too_many_stages = ok;
  too_many_stages.stages = 99;
  EXPECT_FALSE(budget.fits(too_many_stages));

  ResourceUsage too_much_tcam = ok;
  too_much_tcam.tcam_entries = budget.tcam_entries_per_stage * 13;
  EXPECT_FALSE(budget.fits(too_much_tcam));
}

TEST(PipelineTest, MissKeepsStateThroughStages) {
  // A packet whose state has no entry in an intermediate table must pass
  // through unchanged (the paper's field-skipping behaviour).
  Pipeline pipe;
  Table t1("f0", Subject::field(0), MatchKind::kRange, 8);
  t1.add_entry({0, ValueMatch::range(0, 9), 5});
  Table t2("f1", Subject::field(1), MatchKind::kRange, 8);
  t2.add_entry({5, ValueMatch::range(0, 9), 6});
  pipe.tables.push_back(std::move(t1));
  pipe.tables.push_back(std::move(t2));
  LeafEntry leaf;
  leaf.state = 6;
  leaf.actions.add_port(1);
  pipe.leaf.add_entry(leaf);
  pipe.finalize();

  camus::lang::Env env;
  env.fields = {5, 5};
  EXPECT_EQ(pipe.evaluate_actions(env).ports,
            (std::vector<std::uint16_t>{1}));
  env.fields = {50, 5};  // miss in t1: state stays 0, t2 misses, leaf drops
  EXPECT_TRUE(pipe.evaluate_actions(env).is_drop());
  env.fields = {5, 50};  // t1 hits, t2 misses -> state 5, leaf miss
  EXPECT_TRUE(pipe.evaluate_actions(env).is_drop());
}

}  // namespace
