// Camus pub/sub runtime: controller, publisher/subscriber endpoints.
#include <gtest/gtest.h>

#include "pubsub/controller.hpp"
#include "pubsub/endpoints.hpp"
#include "spec/itch_spec.hpp"

namespace {

using namespace camus;

proto::ItchAddOrder order(std::string stock, std::uint32_t price = 100) {
  proto::ItchAddOrder m;
  m.stock = std::move(stock);
  m.price = price;
  m.shares = 10;
  return m;
}

TEST(Controller, SubscribeInterestOnlyForm) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(3, "stock == GOOGL").ok());
  ASSERT_TRUE(ctl.subscribe(4, "stock == GOOGL : fwd(4)").ok());
  EXPECT_EQ(ctl.subscription_count(), 2u);

  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok()) << sw.error().to_string();
  pubsub::Publisher pub;
  const auto copies = sw.value().process(pub.publish(order("GOOGL")), 0);
  std::vector<std::uint16_t> ports;
  for (const auto& c : copies) ports.push_back(c.port);
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{3, 4}));
}

TEST(Controller, RejectsBadRules) {
  pubsub::Controller ctl(spec::make_itch_schema());
  EXPECT_FALSE(ctl.subscribe(1, "nosuchfield == 5").ok());
  EXPECT_FALSE(ctl.subscribe(1, "stock == ").ok());
  EXPECT_EQ(ctl.subscription_count(), 0u);
}

TEST(Controller, RecompilesOnChange) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == AAPL").ok());
  ASSERT_TRUE(ctl.compile().ok());
  const auto entries1 = ctl.compiled().value()->stats.total_entries;
  ASSERT_TRUE(ctl.subscribe(2, "stock == MSFT and price > 100").ok());
  ASSERT_TRUE(ctl.compile().ok());
  EXPECT_GT(ctl.compiled().value()->stats.total_entries, entries1);
}

TEST(Controller, EmitsP4AndControlPlane) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL and price > 500").ok());
  ASSERT_TRUE(ctl.compile().ok());

  const std::string p4 = ctl.p4_program();
  EXPECT_NE(p4.find("parser CamusParser"), std::string::npos);
  EXPECT_NE(p4.find("table tbl_add_order_stock"), std::string::npos);
  EXPECT_NE(p4.find("register"), std::string::npos);
  EXPECT_NE(p4.find("V1Switch"), std::string::npos);

  const std::string rules = ctl.control_plane_rules().value();
  EXPECT_NE(rules.find("table_add tbl_add_order_stock"), std::string::npos);
  EXPECT_NE(rules.find("table_add tbl_leaf"), std::string::npos);
}

TEST(Controller, CompiledBeforeCompileIsDiagnosed) {
  pubsub::Controller ctl(spec::make_itch_schema());
  auto c = ctl.compiled();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, "E120");
  auto rules = ctl.control_plane_rules();
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.error().code, "E121");
}

TEST(Controller, ClearResets) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == AAPL").ok());
  ctl.clear();
  EXPECT_EQ(ctl.subscription_count(), 0u);
  ASSERT_TRUE(ctl.compile().ok());  // empty rule set compiles to drop-all
  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok());
  pubsub::Publisher pub;
  EXPECT_TRUE(sw.value().process(pub.publish(order("AAPL")), 0).empty());
}

TEST(Publisher, SequencesMoldUdp) {
  pubsub::Publisher pub;
  const auto f1 = pub.publish(order("A"));
  const auto f2 = pub.publish_batch({order("B"), order("C")});
  const auto f3 = pub.publish(order("D"));
  auto p1 = proto::decode_market_data_packet(f1);
  auto p2 = proto::decode_market_data_packet(f2);
  auto p3 = proto::decode_market_data_packet(f3);
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(p1->itch.mold.sequence, 1u);
  EXPECT_EQ(p2->itch.mold.sequence, 2u);
  EXPECT_EQ(p2->itch.add_orders.size(), 2u);
  EXPECT_EQ(p3->itch.mold.sequence, 4u);
}

TEST(Subscriber, TracksSymbolsAndGaps) {
  pubsub::Publisher pub;
  pubsub::Subscriber sub(1);
  const auto f1 = pub.publish(order("GOOGL"));
  const auto f2 = pub.publish(order("AAPL"));   // dropped by the "switch"
  const auto f3 = pub.publish(order("GOOGL"));

  EXPECT_TRUE(sub.deliver(f1));
  EXPECT_TRUE(sub.deliver(f3));  // skipping f2 creates a gap
  EXPECT_EQ(sub.received(), 2u);
  EXPECT_EQ(sub.per_symbol().at("GOOGL"), 2u);
  EXPECT_EQ(sub.sequence_gaps(), 1u);

  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_FALSE(sub.deliver(junk));
  EXPECT_EQ(sub.malformed(), 1u);
}

}  // namespace

namespace unsubscribe_tests {

using namespace camus;

TEST(Controller, UnsubscribeRemovesPortRules) {
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  ASSERT_TRUE(ctl.subscribe(1, "stock == AAPL").ok());
  ASSERT_TRUE(ctl.subscribe(2, "stock == MSFT").ok());
  ASSERT_TRUE(ctl.subscribe(3, "stock == NVDA : fwd(3); fwd(4)").ok());
  EXPECT_EQ(ctl.unsubscribe(1), 2u);
  EXPECT_EQ(ctl.subscription_count(), 2u);
  // Port 3's rule also forwards to 4: kept.
  EXPECT_EQ(ctl.unsubscribe(3), 0u);
  EXPECT_EQ(ctl.unsubscribe(99), 0u);

  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok());
  pubsub::Publisher pub;
  proto::ItchAddOrder m;
  m.stock = "GOOGL";
  EXPECT_TRUE(sw.value().process(pub.publish(m), 0).empty());
  m.stock = "MSFT";
  EXPECT_EQ(sw.value().process(pub.publish(m), 0).size(), 1u);
}

}  // namespace unsubscribe_tests
