// Journal framing, crash/torn-tail semantics, snapshot compaction, and the
// hardened chunk channel (explicit headers, CRC, dup/reorder rejection).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pubsub/install.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace {

using camus::pubsub::ChunkHeader;
using camus::pubsub::ChunkReceiver;
using camus::pubsub::encode_chunk;
using camus::pubsub::kChunkHeaderBytes;
using camus::util::Journal;
using camus::util::MemStorage;
using camus::util::Record;
using camus::util::RecordType;

std::span<const std::uint8_t> as_span(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

// --- CRC-32 ---------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(camus::util::crc32(std::string_view("123456789")), 0xCBF43926u);
}

TEST(Crc32, SeedChains) {
  const std::string all = "hello world";
  const std::uint32_t whole = camus::util::crc32(std::string_view(all));
  const std::uint32_t part =
      camus::util::crc32(std::string_view("world"),
                         camus::util::crc32(std::string_view("hello ")));
  EXPECT_EQ(whole, part);
}

// --- MemStorage crash model ----------------------------------------------

TEST(MemStorage, CrashDiscardsUnsyncedBytes) {
  MemStorage st;
  ASSERT_TRUE(st.append("durable").ok());
  ASSERT_TRUE(st.sync().ok());
  ASSERT_TRUE(st.append("volatile").ok());
  EXPECT_EQ(st.size(), 15u);
  EXPECT_EQ(st.synced_size(), 7u);

  st.crash();
  EXPECT_EQ(st.load().value(), "durable");
}

TEST(MemStorage, CrashKeepsTornTail) {
  MemStorage st;
  ASSERT_TRUE(st.append("durable").ok());
  ASSERT_TRUE(st.sync().ok());
  ASSERT_TRUE(st.append("lost-write").ok());
  st.crash(4);
  EXPECT_EQ(st.load().value(), "durablelost");
}

TEST(MemStorage, ReplaceIsDurable) {
  MemStorage st;
  ASSERT_TRUE(st.append("old").ok());
  ASSERT_TRUE(st.sync().ok());
  ASSERT_TRUE(st.replace("new contents").ok());
  st.crash();
  EXPECT_EQ(st.load().value(), "new contents");
}

// --- Journal framing and replay ------------------------------------------

TEST(Journal, RoundTripsRecords) {
  MemStorage st;
  Journal j(st);
  ASSERT_TRUE(j.append(RecordType::kEpoch, "1").ok());
  ASSERT_TRUE(j.append(RecordType::kSubscribe, "3 0 stock == IBM : fwd(3)").ok());
  ASSERT_TRUE(j.append(RecordType::kCommit, "1 12345").ok());

  auto replay = j.replay();
  ASSERT_TRUE(replay.ok());
  const auto& r = replay.value();
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, RecordType::kEpoch);
  EXPECT_EQ(r.records[1].payload, "3 0 stock == IBM : fwd(3)");
  EXPECT_EQ(r.records[2].type, RecordType::kCommit);
  EXPECT_EQ(r.torn_bytes, 0u);
  // record_ends marks one boundary per record, ending at the stream size.
  ASSERT_EQ(r.record_ends.size(), 3u);
  EXPECT_EQ(r.record_ends.back(), r.bytes_replayed);
}

TEST(Journal, AppendSurvivesCrash) {
  MemStorage st;
  Journal j(st);
  ASSERT_TRUE(j.append(RecordType::kSubscribe, "synced").ok());
  st.crash();  // append() synced, so the record must survive
  auto replay = j.replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].payload, "synced");
}

TEST(Journal, TornTailAtEofIsTolerated) {
  MemStorage st;
  Journal j(st);
  ASSERT_TRUE(j.append(RecordType::kSubscribe, "whole record").ok());
  const std::string frame =
      Journal::frame(RecordType::kCommit, "half-written record");
  // A crash mid-write leaves a prefix of the next frame.
  ASSERT_TRUE(st.append(frame.substr(0, frame.size() / 2)).ok());
  ASSERT_TRUE(st.sync().ok());

  auto replay = j.replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().torn_bytes, frame.size() / 2);
}

TEST(Journal, EveryTornPrefixOfTheLastRecordReplays) {
  // The torn tail can cut at ANY byte of the last frame — all of them must
  // replay to exactly the preceding records.
  const std::string head = Journal::frame(RecordType::kEpoch, "7");
  const std::string tail = Journal::frame(RecordType::kCommit, "1 999");
  for (std::size_t cut = 0; cut < tail.size(); ++cut) {
    auto replay = Journal::replay_bytes(head + tail.substr(0, cut));
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    EXPECT_EQ(replay.value().records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(replay.value().torn_bytes, cut) << "cut=" << cut;
  }
}

TEST(Journal, MidLogBadMagicIsJ001) {
  std::string bytes = Journal::frame(RecordType::kEpoch, "1") +
                      Journal::frame(RecordType::kCommit, "1 42");
  bytes[0] ^= 0xFF;  // corrupt the FIRST record's magic — not a torn tail
  auto replay = Journal::replay_bytes(bytes);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "J001");
}

TEST(Journal, MidLogCrcMismatchIsJ002) {
  const std::string first = Journal::frame(RecordType::kSubscribe, "payload");
  std::string bytes = first + Journal::frame(RecordType::kCommit, "1 42");
  bytes[first.size() - 2] ^= 0x01;  // flip a payload byte of record 1
  auto replay = Journal::replay_bytes(bytes);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "J002");
}

TEST(Journal, CompactReplacesHistoryWithSnapshot) {
  MemStorage st;
  Journal j(st);
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(
        j.append(RecordType::kSubscribe, "sub " + std::to_string(i)).ok());
  const std::size_t before = st.size();

  const Record snap{RecordType::kSnapshot, "epoch 3\nsub 1 0 x"};
  ASSERT_TRUE(j.compact(std::span<const Record>(&snap, 1)).ok());
  EXPECT_LT(st.size(), before);

  auto replay = j.replay();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0], snap);
}

// --- Chunk channel --------------------------------------------------------

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

TEST(ChunkChannel, HappyPathAssembles) {
  const auto p0 = payload_of('a', 8);
  const auto p1 = payload_of('b', 8);
  const auto p2 = payload_of('c', 4);
  ChunkReceiver rx(/*epoch=*/5, /*xfer_id=*/9, /*total=*/3,
                   /*chunk_bytes=*/8, /*image_bytes=*/20);
  auto send = [&](std::uint32_t idx, const std::vector<std::uint8_t>& p) {
    ChunkHeader h{5, 9, idx, 3, static_cast<std::uint32_t>(p.size())};
    return rx.receive(as_span(encode_chunk(h, as_span(p))));
  };
  EXPECT_EQ(send(0, p0).value(), 0u);
  EXPECT_EQ(send(1, p1).value(), 1u);
  EXPECT_EQ(send(2, p2).value(), 2u);
  ASSERT_TRUE(rx.complete());
  const auto image = rx.assemble();
  ASSERT_EQ(image.size(), 20u);
  EXPECT_EQ(image[0], 'a');
  EXPECT_EQ(image[8], 'b');
  EXPECT_EQ(image[16], 'c');
}

TEST(ChunkChannel, ReorderedChunksSlotCorrectly) {
  const auto p = payload_of('x', 6);
  ChunkReceiver rx(1, 1, 2, 6, 12);
  ChunkHeader h1{1, 1, 1, 2, 6};
  ChunkHeader h0{1, 1, 0, 2, 6};
  EXPECT_TRUE(rx.receive(as_span(encode_chunk(h1, as_span(p)))).ok());
  EXPECT_FALSE(rx.complete());
  EXPECT_TRUE(rx.has(1));
  EXPECT_FALSE(rx.has(0));
  EXPECT_TRUE(rx.receive(as_span(encode_chunk(h0, as_span(p)))).ok());
  EXPECT_TRUE(rx.complete());
}

TEST(ChunkChannel, ShortFrameIsC001) {
  ChunkReceiver rx(1, 1, 1, 8, 8);
  std::vector<std::uint8_t> wire(kChunkHeaderBytes - 1, 0);
  auto r = rx.receive(as_span(wire));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "C001");
}

TEST(ChunkChannel, BadMagicIsC001) {
  const auto p = payload_of('q', 8);
  ChunkReceiver rx(1, 1, 1, 8, 8);
  auto wire = encode_chunk(ChunkHeader{1, 1, 0, 1, 8}, as_span(p));
  wire[0] ^= 0xFF;
  auto r = rx.receive(as_span(wire));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "C001");
}

TEST(ChunkChannel, CorruptionIsC002EverywhereInTheFrame) {
  // A bit flip at ANY byte past the magic must be caught by the CRC.
  const auto p = payload_of('z', 16);
  for (std::size_t at = 2; at < kChunkHeaderBytes + 16; ++at) {
    ChunkReceiver rx(3, 4, 1, 16, 16);
    auto wire = encode_chunk(ChunkHeader{3, 4, 0, 1, 16}, as_span(p));
    wire[at] ^= 0x10;
    auto r = rx.receive(as_span(wire));
    ASSERT_FALSE(r.ok()) << "at=" << at;
    // Header damage may surface as C001 (length disagreement), C003
    // (epoch/xfer no longer match), or C005 (index now out of range)
    // before the CRC check — but NEVER as an accepted chunk.
    EXPECT_TRUE(r.error().code == "C002" || r.error().code == "C001" ||
                r.error().code == "C003" || r.error().code == "C005")
        << "at=" << at << " code=" << r.error().code;
  }
}

TEST(ChunkChannel, StrayEpochOrTransferIsC003) {
  const auto p = payload_of('s', 8);
  ChunkReceiver rx(/*epoch=*/2, /*xfer_id=*/10, 1, 8, 8);
  auto stale_epoch = encode_chunk(ChunkHeader{1, 10, 0, 1, 8}, as_span(p));
  auto stale_xfer = encode_chunk(ChunkHeader{2, 9, 0, 1, 8}, as_span(p));
  EXPECT_EQ(rx.receive(as_span(stale_epoch)).error().code, "C003");
  EXPECT_EQ(rx.receive(as_span(stale_xfer)).error().code, "C003");
  EXPECT_EQ(rx.filled(), 0u);
}

TEST(ChunkChannel, DuplicateOfAcceptedChunkIsC004) {
  const auto p = payload_of('d', 8);
  ChunkReceiver rx(1, 1, 2, 8, 16);
  const auto wire = encode_chunk(ChunkHeader{1, 1, 0, 2, 8}, as_span(p));
  ASSERT_TRUE(rx.receive(as_span(wire)).ok());
  auto dup = rx.receive(as_span(wire));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, "C004");
  EXPECT_EQ(rx.filled(), 1u);  // the slot was not double-counted
}

TEST(ChunkChannel, IndexOutOfRangeIsC005) {
  const auto p = payload_of('i', 8);
  ChunkReceiver rx(1, 1, 2, 8, 16);
  auto bad_idx = encode_chunk(ChunkHeader{1, 1, 7, 2, 8}, as_span(p));
  auto bad_total = encode_chunk(ChunkHeader{1, 1, 0, 5, 8}, as_span(p));
  EXPECT_EQ(rx.receive(as_span(bad_idx)).error().code, "C005");
  EXPECT_EQ(rx.receive(as_span(bad_total)).error().code, "C005");
}

TEST(ChunkChannel, FuzzedFramesNeverCrashOrMiscount) {
  // Random mutations of valid frames: the receiver must reject cleanly or
  // accept the untouched frame — and assemble the exact image regardless.
  camus::util::Rng rng(0xC0FFEE);
  std::vector<std::uint8_t> image(100);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.next());

  ChunkReceiver rx(7, 7, 7, 16, image.size());
  for (std::uint32_t c = 0; c < 7; ++c) {
    const std::size_t off = c * 16;
    const std::size_t len = std::min<std::size_t>(16, image.size() - off);
    const std::span<const std::uint8_t> payload(image.data() + off, len);
    ChunkHeader h{7, 7, c, 7, static_cast<std::uint32_t>(len)};
    const auto good = encode_chunk(h, payload);
    // A few mutated copies first (all must be rejected)...
    for (int m = 0; m < 8; ++m) {
      auto bad = good;
      bad[rng.uniform(0, bad.size() - 1)] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(0, 254));
      auto r = rx.receive(as_span(bad));
      if (r.ok()) {
        // Astronomically unlikely (CRC collision); tolerate only an exact
        // re-accept of the same index.
        EXPECT_EQ(r.value(), c);
      }
    }
    // ...then the real one.
    auto r = rx.receive(as_span(good));
    EXPECT_TRUE(r.ok() || r.error().code == "C004");
  }
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(rx.assemble(), image);
}

}  // namespace
