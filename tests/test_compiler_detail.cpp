// Compiler internals: Algorithm 1 structure, match-kind selection,
// wildcard fallback, drop-entry emission, field ordering heuristics,
// domain compression, P4 emission.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/compress.hpp"
#include "compiler/field_order.hpp"
#include "compiler/p4gen.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

spec::Schema fig3_schema() {
  spec::Schema s;
  s.add_header("trade_t", "trade");
  auto shares = s.add_field("shares", 32);
  auto stock = s.add_field("stock", 64, spec::FieldKind::kSymbol);
  s.mark_queryable(shares, spec::MatchHint::kRange);
  s.mark_queryable(stock, spec::MatchHint::kExact);
  return s;
}

constexpr std::string_view kFig3Rules = R"(
  shares > 100 and stock == MSFT : fwd(2)
  shares > 100 : fwd(1)
  shares < 60 and stock == AAPL : fwd(3)
)";

TEST(Algorithm1, DropEntriesMatchFigure4Shape) {
  const auto schema = fig3_schema();
  compiler::CompileOptions opts;
  opts.emit_drop_entries = true;
  auto c = compiler::compile_source(schema, kFig3Rules, opts);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  const auto& pipe = c.value().pipeline;

  // Figure 4: shares table has 3 rows (<60, >100, middle-band drop).
  ASSERT_EQ(pipe.tables.size(), 2u);
  EXPECT_EQ(pipe.tables[0].entries().size(), 3u);
  // Stock table: 2 states x (1 symbol + 1 fallback) = 4 rows.
  EXPECT_EQ(pipe.tables[1].entries().size(), 4u);
  // Leaf: fwd(3), fwd(1,2), fwd(1), drop = 4 rows.
  EXPECT_EQ(pipe.leaf.entries().size(), 4u);

  // The rendering mentions the wildcard rows.
  const std::string rendered = pipe.to_string();
  EXPECT_NE(rendered.find("*"), std::string::npos);
  EXPECT_NE(rendered.find("drop()"), std::string::npos);
  EXPECT_NE(rendered.find("fwd(1,2)"), std::string::npos);
}

TEST(Algorithm1, MinimalModeOmitsDropEntries) {
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema, kFig3Rules);
  ASSERT_TRUE(c.ok());
  const auto& pipe = c.value().pipeline;
  EXPECT_EQ(pipe.tables[0].entries().size(), 2u);  // no middle-band row
  EXPECT_EQ(pipe.leaf.entries().size(), 3u);       // no drop row
  // Stock table: state(AAPL-node): 1 exact entry; state(MSFT-node):
  // MSFT->fwd(1,2) plus wildcard->fwd(1).
  EXPECT_EQ(pipe.tables[1].entries().size(), 3u);
}

TEST(Algorithm1, WildcardFallbackForNegation) {
  // !(stock == AAPL): the complement set would need 2 interval entries;
  // the wildcard fallback encodes it in 1 plus the point.
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema,
                                    "!(stock == AAPL) : fwd(1)");
  ASSERT_TRUE(c.ok());
  const auto& t = c.value().pipeline.tables[0];
  EXPECT_EQ(t.subject().id, 1u);  // only the stock table exists
  ASSERT_EQ(t.entries().size(), 2u);
  bool has_any = false, has_exact = false;
  for (const auto& e : t.entries()) {
    has_any |= e.match.kind == table::ValueMatch::Kind::kAny;
    has_exact |= e.match.kind == table::ValueMatch::Kind::kExact;
  }
  EXPECT_TRUE(has_any);
  EXPECT_TRUE(has_exact);

  lang::Env env;
  env.fields = {0, util::encode_symbol("MSFT")};
  EXPECT_FALSE(c.value().pipeline.evaluate_actions(env).is_drop());
  env.fields = {0, util::encode_symbol("AAPL")};
  EXPECT_TRUE(c.value().pipeline.evaluate_actions(env).is_drop());
}

TEST(Algorithm1, ExactHintYieldsExactTable) {
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema, kFig3Rules);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().pipeline.tables[1].kind(), table::MatchKind::kExact);
  EXPECT_EQ(c.value().pipeline.tables[1].width_bits(), 64u);
}

TEST(Algorithm1, ExactOptimizationOnRangeHintedField) {
  // Only equality predicates on a range-hinted field: the optimizer
  // promotes the table to exact (SRAM) unless disabled.
  const auto schema = fig3_schema();
  auto c1 = compiler::compile_source(schema,
                                     "shares == 5 : fwd(1)\n"
                                     "shares == 9 : fwd(2)");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value().pipeline.tables[0].kind(), table::MatchKind::kExact);

  compiler::CompileOptions opts;
  opts.exact_match_optimization = false;
  auto c2 = compiler::compile_source(schema,
                                     "shares == 5 : fwd(1)\n"
                                     "shares == 9 : fwd(2)",
                                     opts);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2.value().pipeline.tables[0].kind(), table::MatchKind::kRange);
  // TCAM cost differs, semantics do not.
  EXPECT_GT(c2.value().pipeline.resources().tcam_entries,
            c1.value().pipeline.resources().tcam_entries);
}

TEST(Algorithm1, RootOnLaterFieldPassesThroughEarlierTables) {
  // A rule predicating only on stock: the shares component is empty and
  // the pipeline starts at the stock component.
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema, "stock == NVDA : fwd(7)");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().pipeline.tables.size(), 1u);
  EXPECT_EQ(c.value().pipeline.tables[0].name(), "trade.stock");
  lang::Env env;
  env.fields = {12345, util::encode_symbol("NVDA")};
  EXPECT_EQ(c.value().pipeline.evaluate_actions(env).ports,
            (std::vector<std::uint16_t>{7}));
}

TEST(Algorithm1, TautologyCompilesToLeafOnly) {
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema,
                                    "shares < 60 or shares >= 60 : fwd(9)");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.value().pipeline.tables.empty());
  lang::Env env;
  env.fields = {0, 0};
  EXPECT_EQ(c.value().pipeline.evaluate_actions(env).ports,
            (std::vector<std::uint16_t>{9}));
}

TEST(Algorithm1, ContradictionCompilesToDropAll) {
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema,
                                    "shares < 60 and shares > 100 : fwd(9)");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.value().pipeline.tables.empty());
  EXPECT_TRUE(c.value().pipeline.leaf.entries().empty());
  lang::Env env;
  env.fields = {80, 0};
  EXPECT_TRUE(c.value().pipeline.evaluate_actions(env).is_drop());
}

TEST(Algorithm1, StatsArepopulated) {
  const auto schema = fig3_schema();
  auto c = compiler::compile_source(schema, kFig3Rules);
  ASSERT_TRUE(c.ok());
  const auto& st = c.value().stats;
  EXPECT_EQ(st.rule_count, 3u);
  EXPECT_EQ(st.dnf_terms, 3u);
  EXPECT_EQ(st.tablegen.components, 2u);
  EXPECT_GE(st.tablegen.in_nodes, 3u);
  EXPECT_GT(st.tablegen.paths_enumerated, 0u);
  EXPECT_GT(st.bdd_after_prune.node_count, 0u);
  EXPECT_EQ(st.total_entries, c.value().pipeline.total_entries());
  EXPECT_FALSE(st.to_string().empty());
}

// ---- field ordering ---------------------------------------------------

TEST(FieldOrder, HeuristicsReorderSubjects) {
  auto schema = spec::make_itch_schema();  // order: shares, price, stock
  std::vector<lang::FlatRule> no_rules;

  auto declared = compiler::choose_order(schema, no_rules,
                                         bdd::OrderHeuristic::kDeclared);
  ASSERT_EQ(declared.subjects().size(), 5u);  // 3 fields + 2 state vars
  EXPECT_EQ(declared.subjects()[0], lang::Subject::field(0));

  auto exact_first = compiler::choose_order(
      schema, no_rules, bdd::OrderHeuristic::kExactFirst);
  EXPECT_EQ(exact_first.subjects()[0],
            lang::Subject::field(*schema.resolve_field("stock")));
}

TEST(FieldOrder, SelectivityUsesRuleConstants) {
  auto schema = spec::make_itch_schema();
  // Many distinct price constants, one stock constant.
  std::string rules_text;
  for (int i = 1; i <= 10; ++i)
    rules_text += "stock == GOOGL and price > " + std::to_string(i * 7) +
                  " : fwd(1)\n";
  auto parsed = lang::parse_rules(rules_text);
  ASSERT_TRUE(parsed.ok());
  auto bound = lang::bind_rules(parsed.value(), schema);
  ASSERT_TRUE(bound.ok());
  auto flat = lang::flatten_rules(bound.value(), schema);
  ASSERT_TRUE(flat.ok());

  auto asc = compiler::choose_order(schema, flat.value(),
                                    bdd::OrderHeuristic::kSelectivityAsc);
  auto desc = compiler::choose_order(schema, flat.value(),
                                     bdd::OrderHeuristic::kSelectivityDesc);
  const auto price = lang::Subject::field(*schema.resolve_field("price"));
  EXPECT_NE(asc.rank(price), desc.rank(price));
  EXPECT_GT(asc.rank(price), desc.rank(price));
}

TEST(FieldOrder, AllHeuristicsPreserveSemantics) {
  auto schema = spec::make_itch_schema();
  const std::string rules = R"(
    stock == GOOGL and price > 100 : fwd(1)
    shares < 50 or price > 900 : fwd(2)
    stock == MSFT and shares > 10 : fwd(3)
  )";
  std::vector<table::Pipeline> pipes;
  for (auto h : {bdd::OrderHeuristic::kDeclared,
                 bdd::OrderHeuristic::kExactFirst,
                 bdd::OrderHeuristic::kSelectivityAsc,
                 bdd::OrderHeuristic::kSelectivityDesc}) {
    compiler::CompileOptions opts;
    opts.order = h;
    auto c = compiler::compile_source(schema, rules, opts);
    ASSERT_TRUE(c.ok());
    pipes.push_back(std::move(c.value().pipeline));
  }
  util::Rng rng(77);
  lang::Env env;
  env.states = {0, 0};
  const std::vector<std::string> syms = {"GOOGL", "MSFT", "X"};
  for (int trial = 0; trial < 300; ++trial) {
    env.fields = {rng.uniform(0, 100), util::encode_symbol(rng.pick(syms)),
                  rng.uniform(0, 1000)};
    const auto& expect = pipes[0].evaluate_actions(env);
    for (std::size_t i = 1; i < pipes.size(); ++i)
      ASSERT_EQ(pipes[i].evaluate_actions(env), expect) << trial << " " << i;
  }
}

// ---- domain compression -------------------------------------------------

TEST(Compression, BuildsValueMapAndShrinksKey) {
  auto schema = spec::make_itch_schema();
  std::string rules;
  for (int i = 1; i <= 6; ++i)
    rules += "price > " + std::to_string(i * 100) + " : fwd(" +
             std::to_string(i) + ")\n";
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 2;
  auto c = compiler::compile_source(schema, rules, opts);
  ASSERT_TRUE(c.ok());
  const auto& pipe = c.value().pipeline;
  ASSERT_EQ(pipe.value_maps.size(), 1u);
  EXPECT_EQ(pipe.value_maps[0].name(), "add_order.price_map");
  // 6 thresholds -> 7 regions -> 3-bit code domain.
  EXPECT_EQ(pipe.value_maps[0].entries().size(), 7u);
  EXPECT_LE(pipe.tables[0].width_bits(), 8u);
}

TEST(Compression, SkipsWideTablesAndSmallTables) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_max_regions = 3;
  auto c = compiler::compile_source(schema,
                                    "price > 100 : fwd(1)\n"
                                    "price > 200 : fwd(2)\n"
                                    "price > 300 : fwd(3)\n"
                                    "price > 400 : fwd(4)\n",
                                    opts);
  ASSERT_TRUE(c.ok());
  // 5 regions > max 3: not compressed.
  EXPECT_TRUE(c.value().pipeline.value_maps.empty());

  opts.compression_max_regions = 256;
  opts.compression_min_entries = 100;
  auto c2 = compiler::compile_source(schema, "price > 100 : fwd(1)", opts);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2.value().pipeline.value_maps.empty());
}

TEST(Compression, ReducesTcamFootprint) {
  auto schema = spec::make_itch_schema();
  // Distinct per-subscription thresholds give every symbol its own price
  // chain (shared per-host thresholds would hash-cons all symbols onto one
  // chain, leaving a single price state and nothing to amortize). The
  // small price domain keeps the region count under the compression cap.
  workload::ItchSubsParams p;
  p.n_subscriptions = 2000;
  p.n_hosts = 16;
  p.n_symbols = 32;
  p.price_max = 200;
  p.per_host_threshold = false;
  auto subs = workload::generate_itch_subscriptions(schema, p);

  // Order stock before price so the price table has one In state per
  // symbol — the regime where a shared region map amortizes (with price
  // first there is a single price state and nothing to share).
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;
  auto plain = compiler::compile_rules(schema, subs.rules, opts);
  opts.domain_compression = true;
  auto compressed = compiler::compile_rules(schema, subs.rules, opts);
  ASSERT_TRUE(plain.ok() && compressed.ok());
  EXPECT_LT(compressed.value().pipeline.resources().tcam_entries,
            plain.value().pipeline.resources().tcam_entries);
}

// ---- P4 emission -----------------------------------------------------------

TEST(P4Gen, StructuralContents) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(schema, "stock == GOOGL : fwd(1)");
  ASSERT_TRUE(c.ok());
  const std::string p4 =
      compiler::generate_p4(schema, &c.value().pipeline);

  for (const char* needle : {
           "header itch_add_order_t", "bit<64> stock", "bit<32> shares",
           "struct metadata_t", "bit<32> bdd_state",
           "parser CamusParser", "parse_moldudp",
           "register<bit<64>>", "reg_my_counter", "reg_avg_price",
           "action set_next_state", "action fwd_mcast",
           "table tbl_leaf", "meta.bdd_state: exact",
           "default_action = NoAction()", "V1Switch", "update_my_counter",
       }) {
    EXPECT_NE(p4.find(needle), std::string::npos) << needle;
  }
  // Balanced braces: cheap structural sanity for generated code.
  EXPECT_EQ(std::count(p4.begin(), p4.end(), '{'),
            std::count(p4.begin(), p4.end(), '}'));
}

TEST(P4Gen, TableMatchKindsFollowPipeline) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(
      schema, "stock == GOOGL and price > 10 : fwd(1)");
  ASSERT_TRUE(c.ok());
  const std::string p4 =
      compiler::generate_p4(schema, &c.value().pipeline);
  EXPECT_NE(p4.find("hdr.add_order.stock: exact"), std::string::npos);
  EXPECT_NE(p4.find("hdr.add_order.price: range"), std::string::npos);
}

TEST(P4Gen, WithoutPipelineUsesHints) {
  auto schema = spec::make_itch_schema();
  const std::string p4 = compiler::generate_p4(schema);
  EXPECT_NE(p4.find("hdr.add_order.stock: exact"), std::string::npos);
  EXPECT_NE(p4.find("hdr.add_order.shares: range"), std::string::npos);
}

TEST(P4Gen, P414DialectContents) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(
      schema, "stock == GOOGL and price > 10 : fwd(1)");
  ASSERT_TRUE(c.ok());
  const std::string p4 =
      compiler::generate_p4_14(schema, &c.value().pipeline);
  for (const char* needle : {
           "header_type itch_add_order_t", "metadata camus_meta_t meta",
           "parser start", "extract(ethernet)", "return select",
           "register reg_my_counter", "instance_count: 1024",
           "action set_next_state(next_state)", "modify_field",
           "reads {", "meta.bdd_state: exact",
           "add_order.stock: exact", "add_order.price: range",
           "apply(tbl_leaf)", "control ingress",
       }) {
    EXPECT_NE(p4.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(std::count(p4.begin(), p4.end(), '{'),
            std::count(p4.begin(), p4.end(), '}'));
  // P4_16-only constructs must not leak into the P4_14 output.
  EXPECT_EQ(p4.find("V1Switch"), std::string::npos);
  EXPECT_EQ(p4.find("#include"), std::string::npos);
}

TEST(P4Gen, P414WithoutPipelineUsesHints) {
  auto schema = spec::make_itch_schema();
  const std::string p4 = compiler::generate_p4_14(schema);
  EXPECT_NE(p4.find("add_order.shares: range"), std::string::npos);
  EXPECT_NE(p4.find("add_order.stock: exact"), std::string::npos);
  EXPECT_NE(p4.find("tbl_my_counter"), std::string::npos);
}

TEST(P4Gen, ControlPlaneDumpRoundTripsCounts) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(schema,
                                    "stock == GOOGL : fwd(1)\n"
                                    "stock == MSFT : fwd(1,2)\n");
  ASSERT_TRUE(c.ok());
  const std::string dump =
      compiler::generate_control_plane_rules(c.value().pipeline);
  const auto count = [&](std::string_view needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = dump.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("table_add tbl_"),
            c.value().pipeline.total_entries());
  EXPECT_EQ(count("mcast_group"), c.value().pipeline.mcast.size());
}

}  // namespace
