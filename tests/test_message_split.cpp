// Message-level forwarding: multi-message MoldUDP packets are split per
// subscriber, each receiving exactly its matching messages.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"

namespace {

using namespace camus;

proto::ItchAddOrder order(std::string stock, std::uint32_t shares = 1) {
  proto::ItchAddOrder m;
  m.stock = std::move(stock);
  m.shares = shares;
  m.price = 100;
  return m;
}

std::vector<std::uint8_t> batch_frame(
    const std::vector<proto::ItchAddOrder>& msgs, std::uint64_t seq = 7) {
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  mold.sequence = seq;
  return proto::encode_market_data_packet(eth, 1, 2, mold, msgs);
}

switchsim::Switch make_switch(const spec::Schema& schema,
                              std::string_view rules) {
  auto c = compiler::compile_source(schema, rules);
  EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
  return switchsim::Switch(schema, c.value().pipeline);
}

TEST(MessageSplit, EachSubscriberGetsItsSlice) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema, R"(
    stock == GOOGL : fwd(1)
    stock == MSFT : fwd(2)
    stock == GOOGL or stock == MSFT : fwd(3)
  )");

  const auto frame = batch_frame(
      {order("GOOGL"), order("MSFT"), order("IBM"), order("GOOGL")});
  auto out = sw.process_messages(frame, 0);
  ASSERT_EQ(out.size(), 3u);  // ports 1, 2, 3

  auto decode = [](const std::vector<std::uint8_t>& f) {
    auto pkt = proto::decode_market_data_packet(f);
    EXPECT_TRUE(pkt.has_value());
    return *pkt;
  };

  // Port 1: the two GOOGL messages, original sequence preserved.
  EXPECT_EQ(out[0].port, 1);
  auto p1 = decode(out[0].frame);
  ASSERT_EQ(p1.itch.add_orders.size(), 2u);
  EXPECT_EQ(p1.itch.add_orders[0].stock, "GOOGL");
  EXPECT_EQ(p1.itch.add_orders[1].stock, "GOOGL");
  EXPECT_EQ(p1.itch.mold.sequence, 7u);
  EXPECT_EQ(p1.itch.mold.message_count, 2u);

  // Port 2: the MSFT message.
  EXPECT_EQ(out[1].port, 2);
  auto p2 = decode(out[1].frame);
  ASSERT_EQ(p2.itch.add_orders.size(), 1u);
  EXPECT_EQ(p2.itch.add_orders[0].stock, "MSFT");

  // Port 3: all three matching messages.
  EXPECT_EQ(out[2].port, 3);
  EXPECT_EQ(decode(out[2].frame).itch.add_orders.size(), 3u);
}

TEST(MessageSplit, AllMissProducesNothing) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema, "stock == GOOGL : fwd(1)");
  EXPECT_TRUE(
      sw.process_messages(batch_frame({order("IBM"), order("ORCL")}), 0)
          .empty());
  EXPECT_EQ(sw.counters().dropped, 1u);
}

TEST(MessageSplit, StateUpdatesFirePerMessage) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(
      schema, "stock == AAPL : fwd(1); update(my_counter)");
  const auto frame =
      batch_frame({order("AAPL"), order("AAPL"), order("IBM")});
  auto out = sw.process_messages(frame, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(sw.registers().read(0, 50), 2u);  // two AAPL messages counted
}

TEST(MessageSplit, MalformedCounted) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema, "stock == AAPL : fwd(1)");
  std::vector<std::uint8_t> junk(20, 0x55);
  EXPECT_TRUE(sw.process_messages(junk, 0).empty());
  EXPECT_EQ(sw.counters().parse_errors, 1u);
}

TEST(MessageSplit, SplitFramesReparseCleanly) {
  // Round-trip invariant: every emitted frame is a well-formed market-data
  // packet whose messages all match the destination's subscriptions.
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema, R"(
    shares > 500 : fwd(4)
    stock == NVDA : fwd(5)
  )");
  const auto frame = batch_frame({order("NVDA", 600), order("AMD", 700),
                                  order("NVDA", 10), order("AMD", 10)});
  auto out = sw.process_messages(frame, 0);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& tx : out) {
    auto pkt = proto::decode_market_data_packet(tx.frame);
    ASSERT_TRUE(pkt.has_value());
    for (const auto& m : pkt->itch.add_orders) {
      if (tx.port == 4) EXPECT_GT(m.shares, 500u);
      if (tx.port == 5) EXPECT_EQ(m.stock, "NVDA");
    }
  }
}

}  // namespace
