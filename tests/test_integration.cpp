// Full-system integration: the Figure 6 story. Subscribers register
// content filters with the controller; the compiler programs the switch;
// a market feed flows through; every subscriber receives exactly the
// messages its filters select (validated against the naive matcher).
#include <gtest/gtest.h>

#include <map>

#include "baseline/matcher.hpp"
#include "lang/parser.hpp"
#include "pubsub/controller.hpp"
#include "pubsub/endpoints.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/extract.hpp"
#include "workload/feed.hpp"

namespace {

using namespace camus;

struct IntegrationParams {
  std::uint64_t seed;
  bool compression;
};

class EndToEnd : public ::testing::TestWithParam<IntegrationParams> {};

TEST_P(EndToEnd, SubscribersReceiveExactlyTheirContent) {
  const auto param = GetParam();
  auto schema = spec::make_itch_schema();

  compiler::CompileOptions opts;
  opts.domain_compression = param.compression;
  pubsub::Controller ctl(spec::make_itch_schema(), opts);

  // A mix of overlapping, numeric, negated, and disjunctive filters.
  const std::vector<std::pair<std::uint16_t, std::string>> subscriptions = {
      {1, "stock == GOOGL"},
      {2, "stock == GOOGL and price > 15000000"},
      {3, "stock == AAPL or stock == MSFT"},
      {4, "shares > 900"},
      {5, "!(stock == GOOGL) and price < 3000000"},
      {6, "stock == NVDA and shares >= 100 and shares <= 200"},
  };
  for (const auto& [port, text] : subscriptions)
    ASSERT_TRUE(ctl.subscribe(port, text).ok()) << text;

  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok()) << sw.error().to_string();
  ASSERT_TRUE(sw.value().fits());

  // Reference matcher over the same rules.
  ASSERT_TRUE(ctl.compile().ok());
  std::vector<lang::BoundRule> bound;
  for (const auto& [port, text] : subscriptions) {
    auto parsed = lang::parse_rule(text + " : fwd(" + std::to_string(port) +
                                   ")");
    ASSERT_TRUE(parsed.ok());
    auto b = lang::bind_rule(parsed.value(), schema);
    ASSERT_TRUE(b.ok());
    bound.push_back(std::move(b).take());
  }
  auto flat = lang::flatten_rules(bound, schema);
  ASSERT_TRUE(flat.ok());
  baseline::NaiveMatcher reference(flat.value());
  switchsim::ItchFieldExtractor extractor(schema);

  // Market feed through the switch.
  workload::FeedParams fp;
  fp.seed = param.seed;
  fp.n_messages = 20000;
  fp.watched_fraction = 0.03;
  fp.price_min = 1000000;
  fp.price_max = 30000000;
  auto feed = workload::generate_feed(fp);

  pubsub::Publisher pub;
  std::map<std::uint16_t, pubsub::Subscriber> subs;
  for (const auto& [port, text] : subscriptions)
    subs.emplace(port, pubsub::Subscriber(port));

  std::map<std::uint16_t, std::uint64_t> expected_counts;
  for (const auto& fm : feed.messages) {
    const auto frame = pub.publish(fm.msg);
    const auto copies = sw.value().process(frame, fm.t_us);

    // Expected port set from the reference matcher.
    lang::Env env;
    env.fields = extractor.extract(fm.msg);
    env.states = {0, 0};
    const auto expected = reference.match(env);

    std::vector<std::uint16_t> got;
    for (const auto& c : copies) got.push_back(c.port);
    ASSERT_EQ(got, expected.ports) << fm.msg.stock << " " << fm.msg.price;

    for (auto port : got) {
      ASSERT_TRUE(subs.at(port).deliver(frame));
      ++expected_counts[port];
    }
  }

  // Per-subscriber delivery counts line up, and the GOOGL subscriber saw
  // only GOOGL.
  for (auto& [port, sub] : subs) {
    EXPECT_EQ(sub.received(), expected_counts[port]) << port;
    EXPECT_EQ(sub.malformed(), 0u);
  }
  const auto& googl_counts = subs.at(1).per_symbol();
  EXPECT_EQ(googl_counts.size(), 1u);
  EXPECT_EQ(googl_counts.count("GOOGL"), 1u);
  EXPECT_EQ(subs.at(1).received(), feed.watched_count);

  // Subscriber 2's filter is a refinement of subscriber 1's.
  EXPECT_LE(subs.at(2).received(), subs.at(1).received());

  // Everything the publisher sent was classified.
  EXPECT_EQ(sw.value().counters().rx_frames, feed.messages.size());
  EXPECT_EQ(sw.value().counters().parse_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd,
                         ::testing::Values(IntegrationParams{1, false},
                                           IntegrationParams{2, false},
                                           IntegrationParams{3, true},
                                           IntegrationParams{4, true}));

TEST(EndToEndStateful, CounterGatesTraffic) {
  // Forward AAPL only after 3 AAPL messages were seen in the same 100us
  // window: a stateful rate-gate expressed as a packet subscription.
  auto schema = spec::make_itch_schema();
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(
      ctl.subscribe(1, "stock == AAPL and my_counter > 2 : fwd(1)").ok());
  ASSERT_TRUE(
      ctl.subscribe(1, "stock == AAPL : update(my_counter)").ok());
  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok()) << sw.error().to_string();

  pubsub::Publisher pub;
  proto::ItchAddOrder m;
  m.stock = "AAPL";
  m.shares = 1;
  m.price = 1;

  // Messages 1-3 in window [0,100) only bump the counter.
  EXPECT_TRUE(sw.value().process(pub.publish(m), 10).empty());
  EXPECT_TRUE(sw.value().process(pub.publish(m), 20).empty());
  EXPECT_TRUE(sw.value().process(pub.publish(m), 30).empty());
  // Message 4: counter is 3 > 2 -> forwarded.
  EXPECT_EQ(sw.value().process(pub.publish(m), 40).size(), 1u);
  // New window: counter reset, gate closes again.
  EXPECT_TRUE(sw.value().process(pub.publish(m), 150).empty());
}

}  // namespace
