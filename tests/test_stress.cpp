// Scale stress: behaviours that only break at size — large rule sets,
// large unions, register windows at extreme timestamps, deep negations.
#include <gtest/gtest.h>

#include "baseline/matcher.hpp"
#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/registers.hpp"
#include "table/serialize.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

TEST(Stress, FiveThousandSubscriptionsMatchReferenceMatcher) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.seed = 123;
  p.n_subscriptions = 5000;
  p.n_symbols = 100;
  p.n_hosts = 64;
  auto subs = workload::generate_itch_subscriptions(schema, p);

  auto compiled = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(compiled.ok());
  auto flat = lang::flatten_rules(subs.rules, schema);
  ASSERT_TRUE(flat.ok());
  baseline::CountingMatcher reference(flat.value(), schema);

  util::Rng rng(9);
  for (int trial = 0; trial < 3000; ++trial) {
    lang::Env env;
    env.fields = {rng.uniform(0, 1000),
                  util::encode_symbol(rng.pick(subs.symbols)),
                  rng.uniform(0, 1100)};
    env.states = {0, 0};
    ASSERT_EQ(compiled.value().pipeline.evaluate_actions(env),
              reference.match(env))
        << trial;
  }
}

TEST(Stress, SerializeLargePipelineRoundTrip) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.seed = 5;
  p.n_subscriptions = 20000;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  auto compiled = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(compiled.ok());
  const std::string text =
      table::serialize_pipeline(compiled.value().pipeline);
  auto back = table::deserialize_pipeline(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(table::serialize_pipeline(back.value()), text);
}

TEST(Stress, DeeplyNestedNegations) {
  auto schema = spec::make_itch_schema();
  // 40 alternating negations around a simple predicate.
  std::string cond = "price > 100";
  for (int i = 0; i < 40; ++i) cond = "!(" + cond + ")";
  auto c = compiler::compile_source(schema, cond + " : fwd(1)");
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  lang::Env env;
  env.fields = {0, 0, 150};
  env.states = {0, 0};
  // 40 negations = even = identity.
  EXPECT_FALSE(c.value().pipeline.evaluate_actions(env).is_drop());
  env.fields[2] = 50;
  EXPECT_TRUE(c.value().pipeline.evaluate_actions(env).is_drop());
}

TEST(Stress, WideDisjunctionAcrossSymbols) {
  auto schema = spec::make_itch_schema();
  auto symbols = workload::itch_symbols(200);
  std::string cond;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (i) cond += " or ";
    cond += "stock == " + symbols[i];
  }
  auto c = compiler::compile_source(schema, cond + " : fwd(1)");
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_EQ(c.value().stats.dnf_terms, 200u);
  lang::Env env;
  env.fields = {0, util::encode_symbol(symbols[137]), 0};
  env.states = {0, 0};
  EXPECT_FALSE(c.value().pipeline.evaluate_actions(env).is_drop());
  env.fields[1] = util::encode_symbol("NOPE");
  EXPECT_TRUE(c.value().pipeline.evaluate_actions(env).is_drop());
}

TEST(Stress, RegisterWindowsAtExtremeTimestamps) {
  auto schema = spec::make_itch_schema();  // my_counter window 100us
  switchsim::StateRegisters regs(schema);

  // Window indices near the uint64 extreme must not overflow or misroll.
  const std::uint64_t huge = ~0ULL - 500;
  regs.apply_update(0, {0, 0, 0}, huge);
  EXPECT_EQ(regs.read(0, huge + 1), 1u);
  // Crossing one window boundary resets.
  EXPECT_EQ(regs.read(0, huge + 200), 0u);

  // Exact boundary semantics: t = k*window starts a new window.
  switchsim::StateRegisters regs2(schema);
  regs2.apply_update(0, {0, 0, 0}, 99);
  EXPECT_EQ(regs2.read(0, 99), 1u);
  EXPECT_EQ(regs2.read(0, 100), 0u);
  regs2.apply_update(0, {0, 0, 0}, 100);
  EXPECT_EQ(regs2.read(0, 199), 1u);
}

TEST(Stress, SumSaturatesAtRegisterWidth) {
  spec::Schema s;
  s.add_header("t", "h");
  auto f = s.add_field("x", 32);
  s.mark_queryable(f, spec::MatchHint::kRange);
  const auto var = s.add_state_var("total", spec::StateFunc::kSum, f, 0);
  // Narrow the register to force saturation.
  // (width_bits is part of the spec; emulate via many large updates.)
  switchsim::StateRegisters regs(s);
  for (int i = 0; i < 10; ++i)
    regs.apply_update(var, {~0ULL >> 1}, 1);
  EXPECT_EQ(regs.read(var, 1), ~0ULL);  // clamped, not wrapped
}

TEST(Stress, ManyCommitsKeepManagerBounded) {
  // The incremental path must not blow up across repeated commits.
  auto schema = spec::make_itch_schema();
  compiler::IncrementalCompiler inc(schema);
  for (int round = 0; round < 50; ++round) {
    auto id = inc.add_source("stock == S" + std::to_string(round) +
                             " and price > " + std::to_string(round) +
                             " : fwd(" + std::to_string(1 + round % 60) +
                             ")");
    ASSERT_TRUE(id.ok());
    auto delta = inc.commit();
    ASSERT_TRUE(delta.ok()) << round;
    EXPECT_LE(delta.value().ops.size(), 200u) << round;
  }
  EXPECT_EQ(inc.subscription_count(), 50u);
}

}  // namespace
