// Fault-injection framework and MoldUDP64 gap recovery (ISSUE 4):
//  - fault::Plan / LinkFaults determinism and rate accounting
//  - fault::Injector switch-state experiments replay identically
//  - UDP checksum seal/verify catches bit-level corruption
//  - RetransmitStore / Reassembler unit behaviour (gaps, duplicates,
//    heartbeats, bounded retries with give-up)
//  - the end-to-end differential: a seeded fault plan with loss + reorder
//    + duplication delivers every subscribed message exactly once and in
//    order with recovery enabled, and demonstrably loses messages with
//    recovery disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "compiler/compile.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "netsim/fault_experiment.hpp"
#include "proto/packet.hpp"
#include "pubsub/endpoints.hpp"
#include "pubsub/recovery.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/extract.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

proto::ItchAddOrder order(std::string stock, std::uint64_t ref = 1,
                          std::uint32_t price = 100) {
  proto::ItchAddOrder m;
  m.order_ref = ref;
  m.stock = std::move(stock);
  m.price = price;
  m.shares = 10;
  return m;
}

// ---------------------------------------------------------------- Plan

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedAndIndex) {
  fault::FaultSpec spec;
  spec.drop = 0.1;
  spec.duplicate = 0.05;
  spec.reorder = 0.05;
  spec.corrupt = 0.02;
  const fault::Plan a(spec, 42), b(spec, 42);

  // Query b out of order and twice — must agree with a's in-order walk.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto da = a.decision(i);
    const auto db = b.decision(1999 - (1999 - i));  // same index
    EXPECT_EQ(da.drop, db.drop) << i;
    EXPECT_EQ(da.duplicate, db.duplicate) << i;
    EXPECT_EQ(da.corrupt_bits, db.corrupt_bits) << i;
    EXPECT_DOUBLE_EQ(da.delay_us, db.delay_us) << i;
  }
  const auto first = a.decision(7);
  const auto again = a.decision(7);
  EXPECT_EQ(first.drop, again.drop);
  EXPECT_EQ(first.corrupt_bits, again.corrupt_bits);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  fault::FaultSpec spec;
  spec.drop = 0.5;
  const fault::Plan a(spec, 1), b(spec, 2);
  int differences = 0;
  for (std::uint64_t i = 0; i < 256; ++i)
    differences += a.decision(i).drop != b.decision(i).drop;
  EXPECT_GT(differences, 0);
}

TEST(FaultPlan, RatesApproximatelyHonored) {
  fault::FaultSpec spec;
  spec.drop = 0.1;
  spec.duplicate = 0.05;
  const fault::Plan plan(spec, 99);
  int drops = 0, dups = 0;
  constexpr int kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto d = plan.decision(i);
    drops += d.drop;
    dups += d.duplicate;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(dups) / kN, 0.05, 0.01);
}

TEST(FaultPlan, CorruptIsDeterministicAndBounded) {
  fault::FaultSpec spec;
  spec.corrupt = 1.0;
  spec.corrupt_max_bits = 3;
  const fault::Plan plan(spec, 5);

  std::vector<std::uint8_t> base(64, 0xAA);
  auto f1 = base, f2 = base;
  // Find a corrupting index (corrupt=1.0 means every non-dropped frame).
  const auto d = plan.decision(0);
  ASSERT_GE(d.corrupt_bits, 1u);
  ASSERT_LE(d.corrupt_bits, 3u);
  plan.corrupt(0, f1);
  plan.corrupt(0, f2);
  EXPECT_EQ(f1, f2);       // same flips both times
  EXPECT_NE(f1, base);     // and they really flipped something

  std::vector<std::uint8_t> empty;
  plan.corrupt(0, empty);  // must not crash on empty frames
}

// ---------------------------------------------------------- LinkFaults

TEST(LinkFaults, StatsAccountForEveryOutcome) {
  fault::FaultSpec spec;
  spec.drop = 0.2;
  spec.duplicate = 0.1;
  spec.reorder = 0.1;
  spec.reorder_delay_us = 100;
  fault::LinkFaults link(fault::Plan(spec, 7));

  const std::vector<std::uint8_t> frame{1, 2, 3, 4};
  std::uint64_t arrivals = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const auto out = link.offer(i * 10.0, frame);
    arrivals += out.size();
    for (const auto& a : out) {
      EXPECT_GE(a.t_us, i * 10.0);
      EXPECT_EQ(a.bytes.size(), frame.size());
    }
  }
  const auto& st = link.stats();
  EXPECT_EQ(st.offered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(st.delivered, arrivals);
  EXPECT_EQ(st.delivered, st.offered - st.dropped + st.duplicated);
  EXPECT_GT(st.dropped, 0u);
  EXPECT_GT(st.duplicated, 0u);
  EXPECT_GT(st.reordered, 0u);
  EXPECT_EQ(link.frames_seen(), static_cast<std::uint64_t>(kN));
}

TEST(LinkFaults, CleanSpecIsTransparent) {
  fault::LinkFaults link{fault::Plan(fault::FaultSpec{}, 3)};
  const std::vector<std::uint8_t> frame{9, 8, 7};
  for (int i = 0; i < 100; ++i) {
    const auto out = link.offer(i * 1.0, frame);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].t_us, i * 1.0);
    EXPECT_EQ(out[0].bytes, frame);
  }
  EXPECT_EQ(link.stats().dropped, 0u);
  EXPECT_EQ(link.stats().corrupted, 0u);
}

TEST(LinkFaults, SameSeedSameArrivalSchedule) {
  fault::FaultSpec spec;
  spec.drop = 0.3;
  spec.duplicate = 0.2;
  spec.reorder = 0.2;
  fault::LinkFaults l1{fault::Plan(spec, 11)}, l2{fault::Plan(spec, 11)};
  const std::vector<std::uint8_t> frame(32, 0x5C);
  for (int i = 0; i < 1000; ++i) {
    const auto a = l1.offer(i * 2.0, frame);
    const auto b = l2.offer(i * 2.0, frame);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_DOUBLE_EQ(a[k].t_us, b[k].t_us);
      EXPECT_EQ(a[k].bytes, b[k].bytes);
    }
  }
}

// ------------------------------------------------------------ Injector

switchsim::Switch make_switch() {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 3;
  sp.n_subscriptions = 40;
  sp.n_symbols = 32;
  sp.n_hosts = 4;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  auto pipeline = compiler::compile_rules(schema, subs.rules).take().pipeline;
  return switchsim::Switch(schema, std::move(pipeline));
}

TEST(Injector, CampaignsReplayIdentically) {
  auto sw1 = make_switch();
  auto sw2 = make_switch();
  fault::Injector inj1(1234), inj2(1234);
  for (int i = 0; i < 20; ++i) {
    const auto a = inj1.flip_entry_bit(sw1);
    const auto b = inj2.flip_entry_bit(sw2);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->table, b->table);
      EXPECT_EQ(a->entry, b->entry);
      EXPECT_EQ(a->bit, b->bit);
    }
  }
  EXPECT_EQ(inj1.injections(), inj2.injections());
  // The two switches saw identical mutations: their pipelines must still
  // classify identically.
  const auto schema = spec::make_itch_schema();
  switchsim::ItchFieldExtractor ex(schema);
  workload::FeedParams fp;
  fp.seed = 7;
  fp.n_messages = 500;
  auto feed = workload::generate_feed(fp);
  for (const auto& fm : feed.messages) {
    const auto fields = ex.extract(fm.msg);
    EXPECT_EQ(sw1.classify(fields, fm.t_us).to_string(),
              sw2.classify(fields, fm.t_us).to_string());
  }
}

TEST(Injector, RegisterBitFlipMutatesState) {
  auto sw = make_switch();
  auto& regs = sw.registers();
  ASSERT_GT(regs.size(), 0u);
  // Populate every cell: a flipped accumulator bit is only visible once a
  // window has at least one update (empty windows read 0 by design).
  const auto schema = spec::make_itch_schema();
  const std::vector<std::uint64_t> fields(schema.fields().size(), 500);
  for (std::uint32_t v = 0; v < regs.size(); ++v)
    regs.apply_update(v, fields, 0);

  const auto before = regs.snapshot(0);
  const std::uint64_t version_before = regs.version();
  fault::Injector inj(77);
  bool changed = false;
  // The itch schema's my_counter reads `count`, which the SRAM-soft-error
  // model does not touch; flip until a flip lands on a visible cell.
  for (int i = 0; i < 16 && !changed; ++i) {
    const auto inj_result = inj.flip_register_bit(sw);
    ASSERT_TRUE(inj_result.has_value());
    changed = regs.snapshot(0) != before;
  }
  EXPECT_TRUE(changed);
  EXPECT_GT(regs.version(), version_before);  // caches invalidated
}

TEST(Injector, EvictEntryShrinksPipeline) {
  auto sw = make_switch();
  auto entries_of = [](const table::Pipeline& p) {
    std::size_t n = 0;
    for (const auto& t : p.tables) n += t.entries().size();
    return n;
  };
  const std::size_t before = entries_of(sw.pipeline());
  ASSERT_GT(before, 0u);
  fault::Injector inj(9);
  ASSERT_TRUE(inj.evict_entry(sw).has_value());
  EXPECT_EQ(entries_of(sw.pipeline()), before - 1);
}

// ------------------------------------------------------- UDP checksum

TEST(UdpChecksum, SealVerifyAndCorruptionDetection) {
  pubsub::Publisher pub;
  auto frame = pub.publish_batch({order("GOOGL", 1), order("MSFT", 2)});
  EXPECT_TRUE(proto::verify_udp_checksum(frame));

  // Any single-bit flip in the UDP segment must be caught.
  for (const std::size_t byte :
       std::vector<std::size_t>{44, 50, 60, frame.size() - 1}) {
    auto bad = frame;
    bad[byte] ^= 0x01;
    EXPECT_FALSE(proto::verify_udp_checksum(bad)) << "byte " << byte;
  }

  // Resealing a modified frame makes it verify again.
  auto resealed = frame;
  resealed[frame.size() - 1] ^= 0xFF;
  ASSERT_TRUE(proto::seal_udp_checksum(resealed));
  EXPECT_TRUE(proto::verify_udp_checksum(resealed));

  // Zero checksum = "not computed": verifies true per RFC 768.
  auto unsealed = frame;
  // UDP checksum lives at ip(14)+ihl(20)+6.
  unsealed[14 + 20 + 6] = 0;
  unsealed[14 + 20 + 7] = 0;
  EXPECT_TRUE(proto::verify_udp_checksum(unsealed));

  // Malformed frames verify false (treated as loss).
  std::vector<std::uint8_t> junk(10, 0xFF);
  EXPECT_FALSE(proto::verify_udp_checksum(junk));
}

TEST(UdpChecksum, RewriteMoldSequenceThenResealRoundTrips) {
  pubsub::Publisher pub;
  auto frame = pub.publish_batch({order("AAPL", 1)});
  ASSERT_TRUE(proto::rewrite_mold_sequence(frame, 777));
  // Not resealed yet: stale checksum must fail.
  EXPECT_FALSE(proto::verify_udp_checksum(frame));
  ASSERT_TRUE(proto::seal_udp_checksum(frame));
  EXPECT_TRUE(proto::verify_udp_checksum(frame));
  const auto pkt = proto::decode_market_data_packet(frame);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->itch.mold.sequence, 777u);
}

// ------------------------------------------------------ RetransmitStore

TEST(RetransmitStore, FetchClampsToRetention) {
  pubsub::RetransmitStore store(4);  // tiny capacity to force eviction
  for (std::uint8_t i = 1; i <= 6; ++i)
    store.append(std::vector<std::uint8_t>{i, i, i});
  // Sequences 1..6 appended; capacity 4 keeps 3..6.
  EXPECT_EQ(store.first(), 3u);
  EXPECT_EQ(store.end(), 7u);

  std::uint64_t first = 0;
  auto got = store.fetch(1, 3, &first);  // [1,4) clamps to [3,4)
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{3, 3, 3}));

  got = store.fetch(5, 10, &first);  // [5,15) clamps to [5,7)
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(first, 5u);

  got = store.fetch(1, 2, &first);  // fully evicted
  EXPECT_TRUE(got.empty());
}

// --------------------------------------------------------- Reassembler

struct ReasmHarness {
  pubsub::RecoveryParams params;
  std::vector<std::uint64_t> delivered;
  std::vector<std::pair<std::uint64_t, std::uint16_t>> requests;
  std::unique_ptr<pubsub::Reassembler> reasm;

  explicit ReasmHarness(pubsub::RecoveryParams p) : params(p) {
    reasm = std::make_unique<pubsub::Reassembler>(
        params,
        [this](std::uint64_t seq, const proto::ItchAddOrder&) {
          delivered.push_back(seq);
        },
        [this](std::uint64_t seq, std::uint16_t count) {
          requests.emplace_back(seq, count);
        });
  }

  void offer(double now, std::uint64_t first_seq, std::size_t n) {
    std::vector<proto::ItchAddOrder> msgs;
    for (std::size_t i = 0; i < n; ++i)
      msgs.push_back(order("GOOGL", first_seq + i));
    reasm->offer(now, first_seq, msgs);
  }
};

TEST(Reassembler, InOrderFramesDeliverImmediately) {
  ReasmHarness h({});
  h.offer(0, 1, 4);
  h.offer(1, 5, 4);
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(h.requests.empty());
  EXPECT_EQ(h.reasm->expected(), 9u);
  EXPECT_EQ(h.reasm->stats().gaps_detected, 0u);
}

TEST(Reassembler, GapBuffersThenDrainsInOrder) {
  ReasmHarness h({});
  h.offer(0, 1, 2);   // 1,2 delivered
  h.offer(1, 5, 2);   // 5,6 buffered, gap 3..4
  EXPECT_EQ(h.delivered.size(), 2u);
  h.offer(2, 3, 2);   // hole filled -> 3,4,5,6 drain
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(h.reasm->stats().gaps_detected, 1u);
}

TEST(Reassembler, DuplicatesAndStaleFramesDropped) {
  ReasmHarness h({});
  h.offer(0, 1, 4);
  h.offer(1, 1, 4);   // full duplicate
  h.offer(2, 3, 2);   // stale tail overlap
  EXPECT_EQ(h.delivered.size(), 4u);
  EXPECT_EQ(h.reasm->stats().duplicates_dropped, 6u);
}

TEST(Reassembler, TimerRequestsMissingRangeWithBackoffAndGiveUp) {
  pubsub::RecoveryParams p;
  p.gap_timeout_us = 10;
  p.retry_backoff_us = 100;
  p.backoff_factor = 2.0;
  p.max_retries = 2;
  ReasmHarness h(p);

  h.offer(0, 1, 2);  // 1,2
  h.offer(1, 5, 2);  // gap 3..4
  ASSERT_LT(h.reasm->next_deadline(), 12.0);

  // First fire: request the hole.
  h.reasm->on_timer(h.reasm->next_deadline());
  ASSERT_EQ(h.requests.size(), 1u);
  EXPECT_EQ(h.requests[0], (std::pair<std::uint64_t, std::uint16_t>{3, 2}));

  // Two retries with growing deadlines, then give-up skips the hole.
  const double d1 = h.reasm->next_deadline();
  h.reasm->on_timer(d1);
  EXPECT_EQ(h.requests.size(), 2u);
  const double d2 = h.reasm->next_deadline();
  EXPECT_GT(d2 - d1, 0.0);
  h.reasm->on_timer(d2);
  h.reasm->on_timer(h.reasm->next_deadline());

  // After give-up, delivery resumed past the hole.
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{1, 2, 5, 6}));
  EXPECT_EQ(h.reasm->stats().messages_lost, 2u);
  EXPECT_EQ(h.reasm->expected(), 7u);
  EXPECT_GT(h.reasm->stats().retries, 0u);
}

TEST(Reassembler, HeartbeatMakesTailLossDetectable) {
  pubsub::RecoveryParams p;
  p.gap_timeout_us = 10;
  ReasmHarness h(p);

  h.offer(0, 1, 4);
  EXPECT_EQ(h.reasm->next_deadline(),
            std::numeric_limits<double>::infinity());

  // Tail frames 5..8 lost; a count-0 heartbeat advertising seq 9 arms the
  // gap even though nothing is pending.
  h.reasm->offer(100, 9, {});
  ASSERT_LT(h.reasm->next_deadline(),
            std::numeric_limits<double>::infinity());
  h.reasm->on_timer(h.reasm->next_deadline());
  ASSERT_EQ(h.requests.size(), 1u);
  EXPECT_EQ(h.requests[0].first, 5u);
  EXPECT_EQ(h.requests[0].second, 4u);

  // Retransmission arrives: delivery completes, no further deadline.
  h.offer(200, 5, 4);
  EXPECT_EQ(h.delivered.size(), 8u);
  EXPECT_EQ(h.reasm->stats().messages_recovered, 4u);
}

// Regression: a corrupted sequence field that slips past the UDP checksum
// must not open an astronomical gap — the per-timer request walk over
// [expected, horizon) would otherwise never terminate (observed as an
// unbounded requested-set blowup in the 120K-message corruption sweep).
TEST(Reassembler, CorruptSequenceBeyondWindowIsRejected) {
  pubsub::RecoveryParams p;
  p.gap_timeout_us = 10;
  p.max_seq_jump = 100;
  ReasmHarness h(p);
  h.offer(0, 1, 2);  // delivered: 1, 2

  // A data frame claiming a sequence ~2^60 (one flipped high bit).
  h.offer(1, (1ULL << 60) + 3, 1);
  EXPECT_EQ(h.reasm->stats().seq_jump_rejects, 1u);
  // No gap armed: the insane sequence advanced nothing.
  EXPECT_EQ(h.reasm->next_deadline(),
            std::numeric_limits<double>::infinity());

  // A heartbeat with a corrupt (huge) advertised horizon is equally inert.
  h.reasm->offer(2, (1ULL << 59), {});
  EXPECT_EQ(h.reasm->stats().seq_jump_rejects, 2u);
  EXPECT_EQ(h.reasm->next_deadline(),
            std::numeric_limits<double>::infinity());

  // The stream continues unharmed, and a jump INSIDE the window still
  // behaves as a normal recoverable gap.
  h.offer(3, 3, 1);
  EXPECT_EQ(h.delivered, (std::vector<std::uint64_t>{1, 2, 3}));
  h.offer(4, 6, 1);  // gap {4, 5}, within max_seq_jump
  h.reasm->on_timer(h.reasm->next_deadline());
  ASSERT_EQ(h.requests.size(), 1u);
  EXPECT_EQ(h.requests[0], (std::pair<std::uint64_t, std::uint16_t>(4, 2)));
}

TEST(Reassembler, RecoveryLatencyIsSampled) {
  pubsub::RecoveryParams p;
  p.gap_timeout_us = 10;
  ReasmHarness h(p);
  h.offer(0, 1, 2);
  h.offer(1, 4, 1);    // gap at 3, blocked since t=1
  h.offer(51, 3, 1);   // resolved at t=51
  ASSERT_EQ(h.reasm->stats().gap_block_us.count(), 1u);
  EXPECT_NEAR(h.reasm->stats().gap_block_us.max(), 50.0, 1e-9);
}

// ------------------------------------------- End-to-end differential

TEST(FaultExperiment, ExactlyOnceDeliveryUnderLossReorderDuplication) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 1;
  sp.n_subscriptions = 60;
  sp.n_symbols = 50;
  sp.n_hosts = 4;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  auto pipeline = compiler::compile_rules(schema, subs.rules).take().pipeline;

  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.n_messages = 6000;
  fp.symbols = subs.symbols;
  auto feed = workload::generate_feed(fp);

  netsim::FaultExperimentParams base;
  base.seed = 4242;
  base.n_ports = 4;
  base.retransmit_capacity = fp.n_messages + 1;
  base.recovery.gap_timeout_us = 100;
  base.recovery.max_retries = 10;

  // Ground truth: fault-free run.
  netsim::FaultExperimentParams clean = base;
  switchsim::Switch sw0(schema, pipeline);
  const auto truth = run_fault_experiment(clean, sw0, feed);
  ASSERT_EQ(truth.feed_messages, fp.n_messages);
  std::uint64_t truth_total = 0;
  for (const auto& [port, n] : truth.delivered) truth_total += n;
  ASSERT_GT(truth_total, 0u);

  // ISSUE acceptance spec: <=10% loss + reorder + duplication.
  netsim::FaultExperimentParams faulty = base;
  faulty.link_faults.drop = 0.10;
  faulty.link_faults.duplicate = 0.05;
  faulty.link_faults.reorder = 0.05;

  switchsim::Switch sw1(schema, pipeline);
  const auto recovered = run_fault_experiment(faulty, sw1, feed);
  EXPECT_GT(recovered.channel.dropped, 0u);
  EXPECT_GT(recovered.channel.duplicated, 0u);
  EXPECT_GT(recovered.channel.reordered, 0u);

  // Exactly-once, in-order: per-port counts AND digests bit-identical to
  // the fault-free run.
  EXPECT_EQ(recovered.delivered, truth.delivered);
  EXPECT_EQ(recovered.digest, truth.digest);
  EXPECT_GT(recovered.uplink_recovery.messages_recovered +
                recovered.subscriber_recovery.messages_recovered,
            0u);
  EXPECT_EQ(recovered.uplink_recovery.messages_lost, 0u);
  EXPECT_EQ(recovered.subscriber_recovery.messages_lost, 0u);

  // Sanity check that the faults are real: the same plan without recovery
  // demonstrably loses messages.
  netsim::FaultExperimentParams raw = faulty;
  raw.recovery_enabled = false;
  switchsim::Switch sw2(schema, pipeline);
  const auto lossy = run_fault_experiment(raw, sw2, feed);
  std::uint64_t lossy_total = 0;
  for (const auto& [port, n] : lossy.delivered) lossy_total += n;
  EXPECT_LT(lossy_total, truth_total);
  EXPECT_NE(lossy.digest, truth.digest);
}

TEST(FaultExperiment, SameSeedIsByteReproducible) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 2;
  sp.n_subscriptions = 30;
  sp.n_symbols = 20;
  sp.n_hosts = 2;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  auto pipeline = compiler::compile_rules(schema, subs.rules).take().pipeline;

  workload::FeedParams fp;
  fp.seed = 5;
  fp.n_messages = 2000;
  fp.symbols = subs.symbols;
  auto feed = workload::generate_feed(fp);

  netsim::FaultExperimentParams p;
  p.seed = 77;
  p.n_ports = 2;
  p.retransmit_capacity = fp.n_messages + 1;
  p.link_faults.drop = 0.05;
  p.link_faults.duplicate = 0.02;
  p.link_faults.reorder = 0.02;
  p.link_faults.corrupt = 0.01;

  switchsim::Switch sw1(schema, pipeline);
  switchsim::Switch sw2(schema, pipeline);
  const auto a = run_fault_experiment(p, sw1, feed);
  const auto b = run_fault_experiment(p, sw2, feed);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.channel.dropped, b.channel.dropped);
  EXPECT_EQ(a.channel.corrupted, b.channel.corrupted);
  EXPECT_EQ(a.data_bytes, b.data_bytes);
  EXPECT_EQ(a.retransmit_bytes, b.retransmit_bytes);
}

}  // namespace
