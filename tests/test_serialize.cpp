// Pipeline serialization: byte-exact round trips, semantic equivalence,
// and rejection of malformed input.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "table/serialize.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"
#include "workload/siena.hpp"

namespace {

using namespace camus;

table::Pipeline compile_pipe(const spec::Schema& schema,
                             std::string_view rules,
                             compiler::CompileOptions opts = {}) {
  auto c = compiler::compile_source(schema, rules, opts);
  EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
  return std::move(c.value().pipeline);
}

TEST(Serialize, RoundTripIsByteStable) {
  auto schema = spec::make_itch_schema();
  auto pipe = compile_pipe(schema, R"(
    stock == GOOGL : fwd(1)
    stock == MSFT and price > 100 : fwd(1,2); update(my_counter)
    shares < 50 : fwd(3)
  )");
  const std::string text = table::serialize_pipeline(pipe);
  auto back = table::deserialize_pipeline(text);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(table::serialize_pipeline(back.value()), text);
}

TEST(Serialize, PreservesSemantics) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 1;
  auto pipe = compile_pipe(schema, R"(
    stock == GOOGL and price > 10 : fwd(1)
    price > 500 or shares < 9 : fwd(2)
    !(stock == AAPL) : fwd(4)
  )", opts);
  auto back = table::deserialize_pipeline(table::serialize_pipeline(pipe));
  ASSERT_TRUE(back.ok()) << back.error().to_string();

  util::Rng rng(3);
  const std::vector<std::string> syms = {"GOOGL", "AAPL", "MSFT"};
  for (int trial = 0; trial < 500; ++trial) {
    lang::Env env;
    env.fields = {rng.uniform(0, 20), util::encode_symbol(rng.pick(syms)),
                  rng.uniform(0, 1000)};
    env.states = {0, 0};
    ASSERT_EQ(back.value().evaluate_actions(env),
              pipe.evaluate_actions(env))
        << trial;
  }
  EXPECT_EQ(back.value().total_entries(), pipe.total_entries());
  EXPECT_EQ(back.value().mcast.size(), pipe.mcast.size());
  EXPECT_EQ(back.value().value_maps.size(), pipe.value_maps.size());
}

TEST(Serialize, LargeWorkloadRoundTrip) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.seed = 8;
  p.n_subscriptions = 2000;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  auto c = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(c.ok());
  const std::string text = table::serialize_pipeline(c.value().pipeline);
  auto back = table::deserialize_pipeline(text);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().total_entries(), c.value().pipeline.total_entries());
  EXPECT_EQ(table::serialize_pipeline(back.value()), text);
}

TEST(Serialize, RejectsMalformedInput) {
  auto schema = spec::make_itch_schema();
  const std::string good =
      table::serialize_pipeline(compile_pipe(schema, "stock == A : fwd(1)"));

  EXPECT_FALSE(table::deserialize_pipeline("").ok());
  EXPECT_FALSE(table::deserialize_pipeline("camus-pipeline v2\nend\n").ok());
  EXPECT_FALSE(table::deserialize_pipeline("camus-pipeline v1\n").ok());

  // Truncated (no 'end').
  EXPECT_FALSE(
      table::deserialize_pipeline(good.substr(0, good.size() - 4)).ok());
  // Entry before any table.
  EXPECT_FALSE(table::deserialize_pipeline(
                   "camus-pipeline v1\ninitial_state 0\n"
                   "entry 0 exact 1 1 2\nend\n")
                   .ok());
  // Unknown directive.
  EXPECT_FALSE(table::deserialize_pipeline(
                   "camus-pipeline v1\ninitial_state 0\nbogus\nend\n")
                   .ok());
  // Inverted range.
  EXPECT_FALSE(table::deserialize_pipeline(
                   "camus-pipeline v1\ninitial_state 0\n"
                   "table t subject=f0 kind=range width=8 symbol=0\n"
                   "entry 0 range 9 3 1\nend\n")
                   .ok());
  // Leaf referencing a missing multicast group.
  EXPECT_FALSE(table::deserialize_pipeline(
                   "camus-pipeline v1\ninitial_state 0\nleaf\n"
                   "entry 0 ports=1,2 updates=- mcast=7\nend\n")
                   .ok());
  // Overlapping ranges are rejected at finalize.
  EXPECT_FALSE(table::deserialize_pipeline(
                   "camus-pipeline v1\ninitial_state 0\n"
                   "table t subject=f0 kind=range width=8 symbol=0\n"
                   "entry 0 range 1 9 1\nentry 0 range 5 12 2\nend\n")
                   .ok());
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  auto r = table::deserialize_pipeline(
      "camus-pipeline v1\ninitial_state 0\n\nbogus here\nend\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().line, 4);
}

TEST(Serialize, EmptyPipelineRoundTrips) {
  table::Pipeline empty;
  empty.finalize();
  auto back =
      table::deserialize_pipeline(table::serialize_pipeline(empty));
  ASSERT_TRUE(back.ok());
  lang::Env env;
  env.fields = {0, 0, 0};
  EXPECT_TRUE(back.value().evaluate_actions(env).is_drop());
}

}  // namespace
