// Subscription language front-end: lexer, parser, binder.
#include <gtest/gtest.h>

#include "lang/bound.hpp"
#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"

namespace {

using namespace camus;
using lang::Token;

TEST(Lexer, BasicTokens) {
  auto toks = lang::tokenize("stock == GOOGL and price > 50 : fwd(1,2)");
  ASSERT_TRUE(toks.ok());
  const auto& t = toks.value();
  ASSERT_GE(t.size(), 13u);
  EXPECT_EQ(t[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(t[0].text, "stock");
  EXPECT_EQ(t[1].kind, Token::Kind::kCmp);
  EXPECT_EQ(t[1].text, "==");
  EXPECT_EQ(t[3].kind, Token::Kind::kAnd);
  EXPECT_EQ(t.back().kind, Token::Kind::kEnd);
}

TEST(Lexer, OperatorSpellings) {
  auto toks = lang::tokenize("&& || ! not and or <= >= != < > = .");
  ASSERT_TRUE(toks.ok());
  const auto& t = toks.value();
  EXPECT_EQ(t[0].kind, Token::Kind::kAnd);
  EXPECT_EQ(t[1].kind, Token::Kind::kOr);
  EXPECT_EQ(t[2].kind, Token::Kind::kNot);
  EXPECT_EQ(t[3].kind, Token::Kind::kNot);
  EXPECT_EQ(t[4].kind, Token::Kind::kAnd);
  EXPECT_EQ(t[5].kind, Token::Kind::kOr);
  EXPECT_EQ(t[6].text, "<=");
  EXPECT_EQ(t[7].text, ">=");
  EXPECT_EQ(t[8].text, "!=");
  EXPECT_EQ(t[11].kind, Token::Kind::kAssign);
  EXPECT_EQ(t[12].kind, Token::Kind::kDot);
}

TEST(Lexer, Ipv4Literal) {
  auto toks = lang::tokenize("ip.dst == 192.168.0.1");
  ASSERT_TRUE(toks.ok());
  const auto& t = toks.value();
  // ip . dst == <ipv4>
  EXPECT_EQ(t[4].kind, Token::Kind::kIpv4);
  EXPECT_EQ(t[4].number, 0xc0a80001u);
}

TEST(Lexer, Ipv4Malformed) {
  EXPECT_FALSE(lang::tokenize("x == 1.2.3").ok());      // three octets
  EXPECT_FALSE(lang::tokenize("x == 1.2.3.4.5").ok());  // five octets
  EXPECT_FALSE(lang::tokenize("x == 300.2.3.4").ok());  // octet range
}

TEST(Lexer, StringsAndComments) {
  auto toks = lang::tokenize("x == \"GOO GL\" # trailing comment\n// line");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[2].kind, Token::Kind::kString);
  EXPECT_EQ(toks.value()[2].text, "GOO GL");
  EXPECT_FALSE(lang::tokenize("x == \"unterminated").ok());
}

TEST(Lexer, NumberOverflow) {
  EXPECT_FALSE(lang::tokenize("x == 99999999999999999999999").ok());
  auto ok = lang::tokenize("x == 18446744073709551615");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()[2].number, ~0ULL);
}

TEST(Parser, PrecedenceOrBelowAnd) {
  // a or b and c == a or (b and c)
  auto c = lang::parse_condition("a == 1 or b == 2 and c == 3");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->kind, lang::Cond::Kind::kOr);
  EXPECT_EQ(c.value()->rhs->kind, lang::Cond::Kind::kAnd);
}

TEST(Parser, ParensOverridePrecedence) {
  auto c = lang::parse_condition("(a == 1 or b == 2) and c == 3");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->kind, lang::Cond::Kind::kAnd);
  EXPECT_EQ(c.value()->lhs->kind, lang::Cond::Kind::kOr);
}

TEST(Parser, NotBindsTightest) {
  auto c = lang::parse_condition("!a == 1 and b == 2");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->kind, lang::Cond::Kind::kAnd);
  EXPECT_EQ(c.value()->lhs->kind, lang::Cond::Kind::kNot);
}

TEST(Parser, MacroSubject) {
  auto c = lang::parse_condition("avg(price) > 50");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value()->kind, lang::Cond::Kind::kAtom);
  ASSERT_TRUE(c.value()->atom.macro.has_value());
  EXPECT_EQ(*c.value()->atom.macro, lang::AggMacro::kAvg);
  EXPECT_EQ(c.value()->atom.subject, "price");
}

TEST(Parser, Actions) {
  auto r = lang::parse_rule("a == 1 : fwd(1,2,3); update(ctr); drop()");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().actions.size(), 3u);
  EXPECT_EQ(r.value().actions[0].kind, lang::Action::Kind::kFwd);
  EXPECT_EQ(r.value().actions[0].fwd.ports,
            (std::vector<std::uint16_t>{1, 2, 3}));
  EXPECT_EQ(r.value().actions[1].kind, lang::Action::Kind::kUpdate);
  EXPECT_EQ(r.value().actions[1].update.state_var, "ctr");
  EXPECT_EQ(r.value().actions[2].kind, lang::Action::Kind::kDrop);
}

TEST(Parser, AssignmentUpdateForm) {
  auto r = lang::parse_rule("a == 1 : my_counter = incr()");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().actions.size(), 1u);
  EXPECT_EQ(r.value().actions[0].kind, lang::Action::Kind::kUpdate);
  EXPECT_EQ(r.value().actions[0].update.state_var, "my_counter");
}

TEST(Parser, MultipleRules) {
  auto rs = lang::parse_rules(R"(
    # comment
    stock == GOOGL : fwd(1)
    stock == MSFT and price > 5 : fwd(2); fwd(3)
  )");
  ASSERT_TRUE(rs.ok()) << rs.error().to_string();
  EXPECT_EQ(rs.value().size(), 2u);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(lang::parse_rule("a == 1").ok());          // no action
  EXPECT_FALSE(lang::parse_rule("a == : fwd(1)").ok());   // no literal
  EXPECT_FALSE(lang::parse_rule("a 1 : fwd(1)").ok());    // no cmp
  EXPECT_FALSE(lang::parse_rule("a == 1 : fwd()").ok());  // no port
  EXPECT_FALSE(lang::parse_rule("a == 1 : fwd(70000)").ok());  // port range
  EXPECT_FALSE(lang::parse_rule("a == 1 : zap()").ok());  // unknown action
  EXPECT_FALSE(lang::parse_condition("(a == 1").ok());    // unbalanced
  EXPECT_FALSE(lang::parse_condition("a == 1 b == 2").ok());  // trailing
}

TEST(Parser, RoundTripPrinting) {
  auto r = lang::parse_rule("!(a == 1 and b < 2) or c > 3 : fwd(1)");
  ASSERT_TRUE(r.ok());
  const std::string printed = r.value().to_string();
  auto r2 = lang::parse_rule(printed);
  ASSERT_TRUE(r2.ok()) << printed;
  EXPECT_EQ(r2.value().to_string(), printed);
}

// ---- binder ----------------------------------------------------------

class BindTest : public ::testing::Test {
 protected:
  spec::Schema schema_ = spec::make_itch_schema();

  lang::BoundRule bind(std::string_view text) {
    auto r = lang::parse_rule(text);
    EXPECT_TRUE(r.ok()) << text;
    auto b = lang::bind_rule(r.value(), schema_);
    EXPECT_TRUE(b.ok()) << (b.ok() ? "" : b.error().to_string());
    return std::move(b).take();
  }

  util::Error bind_err(std::string_view text) {
    auto r = lang::parse_rule(text);
    EXPECT_TRUE(r.ok()) << text;
    auto b = lang::bind_rule(r.value(), schema_);
    EXPECT_FALSE(b.ok()) << text;
    return b.ok() ? util::Error{} : b.error();
  }
};

TEST_F(BindTest, ResolvesFieldsAndSymbols) {
  auto r = bind("stock == GOOGL and price > 50 : fwd(1)");
  ASSERT_EQ(r.cond->kind, lang::BoundCond::Kind::kAnd);
  const auto& stock_atom = r.cond->lhs->atom;
  EXPECT_EQ(stock_atom.value, util::encode_symbol("GOOGL"));
  EXPECT_EQ(r.actions.ports, (std::vector<std::uint16_t>{1}));
}

TEST_F(BindTest, QualifiedAndBareNames) {
  bind("add_order.stock == GOOGL : fwd(1)");
  bind("stock == \"GOOGL\" : fwd(1)");
}

TEST_F(BindTest, DesugarsComparisons) {
  // != -> !(==), <= -> !(>), >= -> !(<)
  auto ne = bind("price != 5 : fwd(1)");
  EXPECT_EQ(ne.cond->kind, lang::BoundCond::Kind::kNot);
  EXPECT_EQ(ne.cond->lhs->atom.op, lang::RelOp::kEq);
  auto le = bind("price <= 5 : fwd(1)");
  EXPECT_EQ(le.cond->kind, lang::BoundCond::Kind::kNot);
  EXPECT_EQ(le.cond->lhs->atom.op, lang::RelOp::kGt);
  auto ge = bind("price >= 5 : fwd(1)");
  EXPECT_EQ(ge.cond->kind, lang::BoundCond::Kind::kNot);
  EXPECT_EQ(ge.cond->lhs->atom.op, lang::RelOp::kLt);
}

TEST_F(BindTest, FoldsWidthConstantComparisons) {
  // price is 32-bit: comparisons beyond the domain fold to constants.
  auto t = bind("price < 99999999999 : fwd(1)");
  EXPECT_EQ(t.cond->kind, lang::BoundCond::Kind::kTrue);
  auto f = bind("price > 99999999999 : fwd(1)");
  EXPECT_EQ(f.cond->kind, lang::BoundCond::Kind::kFalse);
  auto f2 = bind("price < 0 : fwd(1)");
  EXPECT_EQ(f2.cond->kind, lang::BoundCond::Kind::kFalse);
  auto t2 = bind("price >= 0 : fwd(1)");
  EXPECT_EQ(t2.cond->kind, lang::BoundCond::Kind::kTrue);
  auto f3 = bind("shares > 4294967295 : fwd(1)");
  EXPECT_EQ(f3.cond->kind, lang::BoundCond::Kind::kFalse);
}

TEST_F(BindTest, ResolvesMacrosAndStateVars) {
  auto r = bind("stock == GOOGL and avg(price) > 50 : fwd(1)");
  const auto& avg_atom = r.cond->rhs->atom;
  EXPECT_EQ(avg_atom.subject.kind, lang::Subject::Kind::kState);
  EXPECT_EQ(schema_.state_var(avg_atom.subject.id).name, "avg_price");

  auto r2 = bind("my_counter > 10 : fwd(1)");
  EXPECT_EQ(r2.cond->atom.subject.kind, lang::Subject::Kind::kState);

  auto r3 = bind("stock == GOOGL : fwd(1); update(my_counter)");
  ASSERT_EQ(r3.actions.state_updates.size(), 1u);
}

TEST_F(BindTest, RejectsInvalidBindings) {
  bind_err("nosuch == 5 : fwd(1)");
  bind_err("stock > GOOGL : fwd(1)");        // order cmp on symbol
  bind_err("stock == 5 : fwd(1)");           // numeric literal on symbol
  bind_err("price == GOOGL : fwd(1)");       // symbol literal on numeric
  bind_err("stock == TOOLONGSYM1 : fwd(1)"); // > 8 chars
  bind_err("avg(shares) > 5 : fwd(1)");      // no such declared aggregate
  bind_err("stock == GOOGL : update(nope)"); // unknown state var
}

TEST_F(BindTest, MergesAndDeduplicatesActions) {
  auto r = bind("stock == GOOGL : fwd(2,1); fwd(2); drop()");
  EXPECT_EQ(r.actions.ports, (std::vector<std::uint16_t>{1, 2}));
}

TEST_F(BindTest, EvalMatchesSemantics) {
  auto r = bind("!(shares < 60 or shares > 100) and stock == AAPL : fwd(1)");
  lang::Env env;
  env.fields = {80, util::encode_symbol("AAPL"), 0};
  env.states = {0, 0};
  EXPECT_TRUE(lang::eval_cond(*r.cond, env));
  env.fields[0] = 50;
  EXPECT_FALSE(lang::eval_cond(*r.cond, env));
  env.fields[0] = 80;
  env.fields[1] = util::encode_symbol("MSFT");
  EXPECT_FALSE(lang::eval_cond(*r.cond, env));
}

}  // namespace

namespace in_operator_tests {

using namespace camus;

TEST(Parser, InOperatorExpandsToDisjunction) {
  auto c = lang::parse_condition("stock in (GOOGL, MSFT, AAPL)");
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  // ((GOOGL or MSFT) or AAPL)
  EXPECT_EQ(c.value()->kind, lang::Cond::Kind::kOr);
  EXPECT_EQ(c.value()->lhs->kind, lang::Cond::Kind::kOr);
  EXPECT_EQ(c.value()->rhs->atom.op, lang::CmpOp::kEq);
  EXPECT_EQ(c.value()->rhs->atom.literal.text, "AAPL");
}

TEST(Parser, InOperatorNumericAndSingleton) {
  auto c = lang::parse_condition("price in (1, 2, 3)");
  ASSERT_TRUE(c.ok());
  auto single = lang::parse_condition("price in (42)");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value()->kind, lang::Cond::Kind::kAtom);
  EXPECT_EQ(single.value()->atom.literal.int_value, 42u);
}

TEST(Parser, InOperatorComposesAndErrors) {
  auto c = lang::parse_rule(
      "stock in (GOOGL, MSFT) and price > 5 : fwd(1)");
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_FALSE(lang::parse_condition("stock in GOOGL").ok());
  EXPECT_FALSE(lang::parse_condition("stock in (GOOGL,)").ok());
  EXPECT_FALSE(lang::parse_condition("stock in ()").ok());
  EXPECT_FALSE(lang::parse_condition("stock in (GOOGL").ok());
}

TEST(Parser, InOperatorBindsAndEvaluates) {
  auto schema = spec::make_itch_schema();
  auto r = lang::parse_rule("stock in (GOOGL, MSFT) : fwd(1)");
  ASSERT_TRUE(r.ok());
  auto b = lang::bind_rule(r.value(), schema);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  lang::Env env;
  env.fields = {0, util::encode_symbol("MSFT"), 0};
  env.states = {0, 0};
  EXPECT_TRUE(lang::eval_cond(*b.value().cond, env));
  env.fields[1] = util::encode_symbol("IBM");
  EXPECT_FALSE(lang::eval_cond(*b.value().cond, env));
}

TEST(Parser, IdentifierNamedInStillWorksAsField) {
  // A field literally named "in" must still parse as a predicate subject.
  auto c = lang::parse_condition("in == 5");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->atom.subject, "in");
}

}  // namespace in_operator_tests
