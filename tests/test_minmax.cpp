// min/max windowed aggregates: spec annotations, macros, register
// semantics, and end-to-end stateful rules.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/p4gen.hpp"
#include "lang/parser.hpp"
#include "proto/packet.hpp"
#include "spec/spec_parser.hpp"
#include "switchsim/switch.hpp"

namespace {

using namespace camus;

spec::Schema minmax_schema() {
  auto r = spec::parse_spec(R"(
    header_type tick_t {
        fields { price: 32; stock: 64 (symbol); }
    }
    header tick_t tick;
    @query_field(tick.price)
    @query_field_exact(tick.stock)
    @query_min(low_price, tick.price, 1000)
    @query_max(high_price, tick.price, 1000)
  )");
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
  return std::move(r).take();
}

TEST(MinMax, SpecParsesAnnotations) {
  auto s = minmax_schema();
  ASSERT_EQ(s.state_vars().size(), 2u);
  EXPECT_EQ(s.state_var(0).func, spec::StateFunc::kMin);
  EXPECT_EQ(s.state_var(1).func, spec::StateFunc::kMax);
  EXPECT_EQ(s.state_var(0).window_us, 1000u);
  EXPECT_TRUE(s.resolve_macro(spec::StateFunc::kMin, "price").has_value());
  EXPECT_TRUE(s.resolve_macro(spec::StateFunc::kMax, "tick.price"));
}

TEST(MinMax, RegistersTrackExtremes) {
  auto s = minmax_schema();
  switchsim::StateRegisters regs(s);
  // fields: price, stock
  regs.apply_update(0, {500, 0}, 10);
  regs.apply_update(0, {300, 0}, 20);
  regs.apply_update(0, {400, 0}, 30);
  EXPECT_EQ(regs.read(0, 50), 300u);  // min
  regs.apply_update(1, {500, 0}, 10);
  regs.apply_update(1, {800, 0}, 20);
  regs.apply_update(1, {700, 0}, 30);
  EXPECT_EQ(regs.read(1, 50), 800u);  // max
  // Window rollover resets to empty (reads 0).
  EXPECT_EQ(regs.read(0, 1000), 0u);
  regs.apply_update(0, {999, 0}, 1100);
  EXPECT_EQ(regs.read(0, 1200), 999u);
}

TEST(MinMax, MacroBindsInRules) {
  auto s = minmax_schema();
  auto c = compiler::compile_source(
      s, "stock == GOOGL and max(price) > 900 : fwd(1)\n"
         "stock == GOOGL : update(high_price)\n");
  ASSERT_TRUE(c.ok()) << c.error().to_string();

  switchsim::Switch sw(s, c.value().pipeline);
  auto frame = [](std::uint32_t price) {
    proto::ItchAddOrder m;
    m.stock = "GOOGL";
    m.price = price;
    proto::EthernetHeader eth;
    proto::MoldUdp64Header mold;
    return proto::encode_market_data_packet(eth, 1, 2, mold, {m});
  };
  // No high yet.
  EXPECT_TRUE(sw.process(frame(500), 10).empty());
  // Spike to 950: the NEXT message sees max > 900.
  EXPECT_TRUE(sw.process(frame(950), 20).empty());
  EXPECT_EQ(sw.process(frame(100), 30).size(), 1u);
  // New window: the high resets.
  EXPECT_TRUE(sw.process(frame(100), 1500).empty());
}

TEST(MinMax, MinMacroParsesAndPrints) {
  auto parsed = lang::parse_rule("min(price) < 10 : fwd(1)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed.value().to_string().find("min(price)"),
            std::string::npos);
  auto parsed2 = lang::parse_rule("max(price) >= 10 : fwd(1)");
  ASSERT_TRUE(parsed2.ok());
  ASSERT_TRUE(parsed2.value().cond->atom.macro.has_value());
}

TEST(MinMax, P4EmissionCoversMinMax) {
  auto s = minmax_schema();
  const std::string p16 = compiler::generate_p4(s);
  EXPECT_NE(p16.find("update_low_price"), std::string::npos);
  EXPECT_NE(p16.find("update_high_price"), std::string::npos);
  const std::string p14 = compiler::generate_p4_14(s);
  EXPECT_NE(p14.find("min(meta.low_price_val"), std::string::npos);
  EXPECT_NE(p14.find("max(meta.high_price_val"), std::string::npos);
}

}  // namespace
