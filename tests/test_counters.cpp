// SwitchCounters semantics, uniform across the three processing paths:
// every ingress frame increments rx_frames and exactly one of
// parse_errors/dropped/matched; multicast_frames counts frames (never
// messages) replicated to more than one distinct egress port.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "proto/generic.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/parallel.hpp"
#include "switchsim/switch.hpp"
#include "util/intern.hpp"

namespace {

using namespace camus;

// GOOGL -> ports {1, 2} (multicast), MSFT -> port 1 (unicast), rest drop.
constexpr std::string_view kRules = R"(
  stock == GOOGL : fwd(1)
  stock == GOOGL : fwd(2)
  stock == MSFT : fwd(1)
)";

proto::ItchAddOrder order(std::string stock) {
  proto::ItchAddOrder m;
  m.stock = std::move(stock);
  m.shares = 1;
  m.price = 100;
  return m;
}

std::vector<std::uint8_t> batch_frame(
    const std::vector<proto::ItchAddOrder>& msgs) {
  proto::EthernetHeader eth;
  proto::MoldUdp64Header mold;
  return proto::encode_market_data_packet(eth, 1, 2, mold, msgs);
}

switchsim::Switch make_switch(const spec::Schema& schema) {
  auto c = compiler::compile_source(schema, kRules);
  EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
  return switchsim::Switch(schema, c.value().pipeline);
}

void expect_frame_invariant(const switchsim::SwitchCounters& c) {
  EXPECT_EQ(c.rx_frames, c.parse_errors + c.dropped + c.matched);
  EXPECT_LE(c.multicast_frames, c.matched);
}

TEST(Counters, ProcessPath) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema);

  EXPECT_EQ(sw.process(batch_frame({order("GOOGL")}), 0).size(), 2u);
  EXPECT_EQ(sw.process(batch_frame({order("MSFT")}), 0).size(), 1u);
  EXPECT_TRUE(sw.process(batch_frame({order("IBM")}), 0).empty());
  std::vector<std::uint8_t> junk(16, 0xee);
  EXPECT_TRUE(sw.process(junk, 0).empty());

  const auto& c = sw.counters();
  EXPECT_EQ(c.rx_frames, 4u);
  EXPECT_EQ(c.parse_errors, 1u);
  EXPECT_EQ(c.matched, 2u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.tx_copies, 3u);
  EXPECT_EQ(c.multicast_frames, 1u);  // only the GOOGL frame fanned out
  expect_frame_invariant(c);
}

TEST(Counters, ProcessGenericPath) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema);

  auto fields_for = [&](const std::string& stock) {
    std::vector<std::uint64_t> fields(schema.fields().size(), 0);
    fields[*schema.resolve_field("stock")] = util::encode_symbol(stock);
    return fields;
  };
  auto frame_for = [&](const std::string& stock) {
    return proto::encode_generic_packet(schema, fields_for(stock));
  };

  EXPECT_EQ(sw.process_generic(frame_for("GOOGL"), 0).size(), 2u);
  EXPECT_EQ(sw.process_generic(frame_for("MSFT"), 0).size(), 1u);
  EXPECT_TRUE(sw.process_generic(frame_for("IBM"), 0).empty());
  std::vector<std::uint8_t> junk(8, 0x11);
  EXPECT_TRUE(sw.process_generic(junk, 0).empty());

  const auto& c = sw.counters();
  EXPECT_EQ(c.rx_frames, 4u);
  EXPECT_EQ(c.parse_errors, 1u);
  EXPECT_EQ(c.matched, 2u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.tx_copies, 3u);
  EXPECT_EQ(c.multicast_frames, 1u);
  expect_frame_invariant(c);
}

TEST(Counters, ProcessMessagesCountsFramesNotMessages) {
  auto schema = spec::make_itch_schema();
  auto sw = make_switch(schema);

  // Two multicast-matching messages in ONE frame: multicast_frames must
  // advance once (the old per-message accounting counted 2 here).
  auto out = sw.process_messages(batch_frame({order("GOOGL"),
                                              order("GOOGL")}), 0);
  EXPECT_EQ(out.size(), 2u);  // ports 1 and 2
  EXPECT_EQ(sw.counters().multicast_frames, 1u);
  EXPECT_EQ(sw.counters().tx_copies, 2u);  // one re-framed packet per port

  // Unicast messages reaching a single port: not multicast.
  out = sw.process_messages(batch_frame({order("MSFT"), order("IBM")}), 0);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(sw.counters().multicast_frames, 1u);

  // A frame is multicast when its messages COLLECTIVELY reach > 1 port,
  // even if each message is unicast.
  out = sw.process_messages(batch_frame({order("GOOGL"), order("MSFT")}), 0);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(sw.counters().multicast_frames, 2u);

  EXPECT_TRUE(sw.process_messages(batch_frame({order("IBM")}), 0).empty());
  std::vector<std::uint8_t> junk(16, 0x77);
  EXPECT_TRUE(sw.process_messages(junk, 0).empty());

  const auto& c = sw.counters();
  EXPECT_EQ(c.rx_frames, 5u);
  EXPECT_EQ(c.parse_errors, 1u);
  EXPECT_EQ(c.matched, 3u);
  EXPECT_EQ(c.dropped, 1u);
  EXPECT_EQ(c.tx_copies, 5u);
  expect_frame_invariant(c);
}

TEST(Counters, PathsAgreeOnSingleMessageFrames) {
  // For single-message frames the three paths must report identical
  // frame-granularity counters.
  auto schema = spec::make_itch_schema();
  auto sw_frame = make_switch(schema);
  auto sw_msgs = make_switch(schema);

  for (const char* stock : {"GOOGL", "MSFT", "IBM", "GOOGL"}) {
    const auto frame = batch_frame({order(stock)});
    sw_frame.process(frame, 0);
    sw_msgs.process_messages(frame, 0);
  }
  const auto& a = sw_frame.counters();
  const auto& b = sw_msgs.counters();
  EXPECT_EQ(a.rx_frames, b.rx_frames);
  EXPECT_EQ(a.parse_errors, b.parse_errors);
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.multicast_frames, b.multicast_frames);
}

void expect_counters_equal(const switchsim::SwitchCounters& a,
                           const switchsim::SwitchCounters& b) {
  EXPECT_EQ(a.rx_frames, b.rx_frames);
  EXPECT_EQ(a.parse_errors, b.parse_errors);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.tx_copies, b.tx_copies);
  EXPECT_EQ(a.multicast_frames, b.multicast_frames);
  EXPECT_EQ(a.state_updates, b.state_updates);
}

// Full counter differential — per-frame reference vs batched vs the
// multi-core front end — over a multicast-heavy workload: every
// multicast shape the account_frame() helper distinguishes (replicated
// ActionSet, cross-port unicast union, same-port unicast union, drop,
// junk) interleaved. All three paths must land on identical counters,
// because they share the one accounting definition.
TEST(Counters, MulticastHeavyDifferentialAcrossPaths) {
  auto schema = spec::make_itch_schema();
  auto sw_ref = make_switch(schema);
  auto sw_batch = make_switch(schema);
  auto sw_thr = make_switch(schema);

  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 80; ++i) {
    switch (i % 5) {
      case 0:  // multicast ActionSet: one message reaching ports {1,2}
        frames.push_back(batch_frame({order("GOOGL"), order("GOOGL")}));
        break;
      case 1:  // unicast + drop: single distinct port
        frames.push_back(batch_frame({order("MSFT"), order("IBM")}));
        break;
      case 2:  // two individually-unicast messages, distinct ports: the
               // frame is multicast even though no message is
        frames.push_back(batch_frame({order("GOOGL"), order("MSFT")}));
        break;
      case 3:  // all-miss frame: dropped
        frames.push_back(batch_frame({order("IBM")}));
        break;
      default:  // unparseable: parse_errors
        frames.push_back(std::vector<std::uint8_t>(16, 0x77));
        break;
    }
  }

  std::vector<switchsim::Switch::TxPacket> out_ref;
  for (const auto& f : frames)
    for (auto& tx : sw_ref.process_messages(f, 0))
      out_ref.push_back(std::move(tx));

  std::vector<switchsim::Switch::Frame> batch;
  for (const auto& f : frames) batch.push_back({f, 0});
  auto out_batch = sw_batch.process_batch(batch);

  switchsim::ParallelSwitch pool(sw_thr, 4);
  ASSERT_TRUE(pool.eligible());
  auto out_thr = pool.process_batch(batch);

  ASSERT_GT(sw_ref.counters().multicast_frames, 0u);
  expect_counters_equal(sw_ref.counters(), sw_batch.counters());
  expect_counters_equal(sw_ref.counters(), sw_thr.counters());
  expect_frame_invariant(sw_thr.counters());

  ASSERT_EQ(out_ref.size(), out_batch.size());
  ASSERT_EQ(out_ref.size(), out_thr.size());
  for (std::size_t i = 0; i < out_ref.size(); ++i) {
    EXPECT_EQ(out_ref[i].port, out_thr[i].port) << "packet " << i;
    EXPECT_EQ(out_ref[i].frame, out_thr[i].frame) << "packet " << i;
  }
}

}  // namespace
