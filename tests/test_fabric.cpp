// Multi-switch fabric: placement derivation, the four-obligation
// equivalence proof (with a corrupted-steering negative producing a
// concrete counterexample), the all-or-nothing cross-switch install, the
// fuzzer-driven differential suite (fabric delivery ≡ single-switch
// oracle per (leaf, port) across topologies), and the fabric nemesis
// campaign's invariants + determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/fabric.hpp"
#include "fault/fabric_nemesis.hpp"
#include "fault/plan.hpp"
#include "lang/bound.hpp"
#include "lang/parser.hpp"
#include "netsim/fabric.hpp"
#include "pubsub/fabric.hpp"
#include "spec/itch_spec.hpp"
#include "table/delta.hpp"
#include "util/intern.hpp"
#include "util/journal.hpp"
#include "verify/fabric.hpp"
#include "workload/fuzz.hpp"

namespace {

using camus::compiler::FabricSpec;
using camus::pubsub::FabricController;

camus::lang::BoundRule rule(const std::string& text) {
  auto schema = camus::spec::make_itch_schema();
  auto parsed = camus::lang::parse_rule(text);
  EXPECT_TRUE(parsed.ok()) << text;
  auto bound = camus::lang::bind_rule(parsed.value(), schema);
  EXPECT_TRUE(bound.ok()) << text;
  return std::move(bound).take();
}

std::uint64_t sym(const std::string& s) {
  return camus::util::encode_symbol(s);
}

// --- Placement ------------------------------------------------------------

TEST(FabricPlacement, SteersByDominantPinnedSubjectAndRestrictsLeaves) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)"),
      rule("stock == MSFT : fwd(1)"),
      rule("stock == GOOGL and price > 100 : fwd(2)"),
      rule("stock == AAPL : fwd(3)"),
  };
  FabricSpec spec;
  spec.leaves = 2;
  spec.spines = 1;
  auto placed = camus::compiler::partition_for_fabric(schema, rules_, spec);
  ASSERT_TRUE(placed.ok()) << placed.error().to_string();
  const auto& p = placed.value();

  ASSERT_TRUE(p.steer_subject.has_value());
  EXPECT_EQ(*p.steer_subject, camus::lang::Subject::field(1));  // stock
  EXPECT_EQ(p.steer_subject_name, "add_order.stock");
  EXPECT_EQ(p.total_rules, 4u);
  EXPECT_EQ(p.pinned_rules, 4u);

  // Ports 0,2 -> leaf 0; ports 1,3 -> leaf 1 (round-robin).
  ASSERT_EQ(p.leaf_rules.size(), 2u);
  EXPECT_EQ(p.leaf_rules[0].size(), 2u);
  EXPECT_EQ(p.leaf_rules[1].size(), 2u);
  // Every leaf rule's forwarding set touches only that leaf's ports.
  for (std::size_t l = 0; l < 2; ++l)
    for (const auto& r : p.leaf_rules[l])
      for (const std::uint16_t port : r.actions.ports)
        EXPECT_EQ(spec.leaf_of(port), l);

  // Pinned values: leaf 0 covers GOOGL; leaf 1 covers MSFT and AAPL.
  EXPECT_FALSE(p.leaf_needs_all[0]);
  EXPECT_FALSE(p.leaf_needs_all[1]);
  EXPECT_TRUE(p.leaf_values[0].contains(sym("GOOGL")));
  EXPECT_FALSE(p.leaf_values[0].contains(sym("MSFT")));
  EXPECT_TRUE(p.leaf_values[1].contains(sym("MSFT")));
  EXPECT_TRUE(p.leaf_values[1].contains(sym("AAPL")));
  EXPECT_EQ(p.spine_rules.size(), 2u);
  EXPECT_EQ(p.populated_leaves(), 2u);
  EXPECT_EQ(p.max_leaf_rules(), 2u);
}

TEST(FabricPlacement, UnpinnedRuleForcesLeafOntoCatchAll) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)"),
      rule("shares > 500 : fwd(1)"),  // pins nothing
  };
  FabricSpec spec;
  spec.leaves = 2;
  auto placed = camus::compiler::partition_for_fabric(schema, rules_, spec);
  ASSERT_TRUE(placed.ok());
  EXPECT_FALSE(placed.value().leaf_needs_all[0]);
  EXPECT_TRUE(placed.value().leaf_needs_all[1]);
  EXPECT_EQ(placed.value().pinned_rules, 1u);
}

TEST(FabricPlacement, StatefulRuleRejectedWithF150) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0); update(my_counter)"),
  };
  auto placed = camus::compiler::partition_for_fabric(schema, rules_,
                                                      FabricSpec{});
  ASSERT_FALSE(placed.ok());
  EXPECT_EQ(placed.error().code, "F150");
}

TEST(FabricPlacement, DegenerateSpecRejectedWithF151) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)")};
  FabricSpec no_leaves;
  no_leaves.leaves = 0;
  EXPECT_EQ(camus::compiler::partition_for_fabric(schema, rules_, no_leaves)
                .error()
                .code,
            "F151");
  FabricSpec no_spines;
  no_spines.spines = 0;
  EXPECT_EQ(camus::compiler::partition_for_fabric(schema, rules_, no_spines)
                .error()
                .code,
            "F151");
}

// --- Equivalence proof ----------------------------------------------------

TEST(FabricEquivalence, CompiledFabricIsProvenEquivalent) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)"),
      rule("stock == MSFT and price > 5000 : fwd(1)"),
      rule("shares > 900 : fwd(2)"),
      rule("stock == AAPL or stock == NVDA : fwd(3)"),
      rule("stock == GOOGL and shares < 50 : fwd(5)"),
  };
  FabricSpec spec;
  spec.leaves = 4;
  spec.spines = 2;
  auto placed = camus::compiler::partition_for_fabric(schema, rules_, spec);
  ASSERT_TRUE(placed.ok());
  auto program = camus::compiler::compile_fabric(schema, placed.value());
  ASSERT_TRUE(program.ok()) << program.error().to_string();

  const auto res = camus::verify::check_fabric_equivalence(
      schema, rules_, placed.value(), program.value());
  EXPECT_TRUE(res.proven()) << res.failed_check << ": " << res.detail;
}

TEST(FabricEquivalence, CorruptedSteeringRuleYieldsStarvationWitness) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)"),
      rule("stock == MSFT : fwd(1)"),
      rule("stock == AAPL and price > 100 : fwd(2)"),
  };
  FabricSpec spec;
  spec.leaves = 2;
  auto placed = camus::compiler::partition_for_fabric(schema, rules_, spec);
  ASSERT_TRUE(placed.ok());

  // Corrupt the steering rule for leaf 1 (ports 1, 3, ...): the spine now
  // never steers there, starving every packet leaf 1 should deliver.
  auto corrupted = placed.value();
  corrupted.spine_rules[1].cond = camus::lang::BoundCond::make_const(false);
  auto program = camus::compiler::compile_fabric(schema, corrupted);
  ASSERT_TRUE(program.ok());

  const auto res = camus::verify::check_fabric_equivalence(
      schema, rules_, corrupted, program.value());
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.equivalent);
  EXPECT_EQ(res.failed_check, "starvation");
  ASSERT_TRUE(res.leaf.has_value());
  EXPECT_EQ(*res.leaf, 1u);
  // The counterexample is a CONCRETE packet the fabric loses: the
  // monolithic program forwards it to a leaf-1 port.
  ASSERT_TRUE(res.counterexample.has_value());
  auto oracle = camus::compiler::compile_rules(schema, rules_);
  ASSERT_TRUE(oracle.ok());
  // The witness env only carries the subjects its MTBDD path constrained;
  // pad to full schema width before driving the oracle pipeline.
  camus::lang::Env cx = *res.counterexample;
  if (cx.fields.size() < schema.fields().size())
    cx.fields.resize(schema.fields().size(), 0);
  if (cx.states.size() < schema.state_vars().size())
    cx.states.resize(schema.state_vars().size(), 0);
  const auto& acts = oracle.value().pipeline.evaluate_actions(cx);
  bool leaf1_port = false;
  for (const std::uint16_t p : acts.ports)
    leaf1_port = leaf1_port || spec.leaf_of(p) == 1;
  EXPECT_TRUE(leaf1_port);
}

TEST(FabricEquivalence, CorruptedSpineProgramIsCaught) {
  auto schema = camus::spec::make_itch_schema();
  const std::vector<camus::lang::BoundRule> rules_ = {
      rule("stock == GOOGL : fwd(0)"), rule("stock == MSFT : fwd(1)")};
  FabricSpec spec;
  spec.leaves = 2;
  auto placed = camus::compiler::partition_for_fabric(schema, rules_, spec);
  ASSERT_TRUE(placed.ok());
  auto program = camus::compiler::compile_fabric(schema, placed.value());
  ASSERT_TRUE(program.ok());

  // Swap the compiled spine for an empty pipeline without touching the
  // placement: obligations (1)-(3) hold, (4) must fail.
  auto corrupted = std::move(program).take();
  corrupted.spine = camus::table::Pipeline{};
  corrupted.spine.finalize();
  const auto res = camus::verify::check_fabric_equivalence(
      schema, rules_, placed.value(), corrupted);
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.equivalent);
  EXPECT_EQ(res.failed_check, "spine-program");
}

// --- Differential suite: fabric ≡ single-switch oracle --------------------

// Runs fuzzer-sampled stateless rule sets through a (leaves x spines)
// netsim fabric and compares every probe's (leaf, port) delivery set with
// the monolithic oracle's port set mapped through leaf_of.
void run_differential(std::size_t leaves, std::size_t spines,
                      std::uint64_t seed, std::size_t samples) {
  auto schema = camus::spec::make_itch_schema();
  camus::workload::FuzzParams params;
  params.seed = seed;
  params.p_stateful = 0;  // fabric scope is stateless-only
  params.max_rules = 6;
  const camus::workload::GrammarFuzzer fuzzer(schema, params);

  FabricSpec spec;
  spec.leaves = leaves;
  spec.spines = spines;

  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto sample = fuzzer.sample(i);
    auto placed =
        camus::compiler::partition_for_fabric(schema, sample.bound, spec);
    ASSERT_TRUE(placed.ok()) << "sample " << i;
    auto program = camus::compiler::compile_fabric(schema, placed.value());
    ASSERT_TRUE(program.ok()) << "sample " << i;
    auto oracle = camus::compiler::compile_rules(schema, sample.bound);
    ASSERT_TRUE(oracle.ok()) << "sample " << i;

    camus::netsim::FabricTopologyOptions topo;
    topo.spec = spec;
    camus::netsim::Fabric fabric(schema, topo);
    fabric.program(program.value());

    for (const auto& probe : sample.probes) {
      camus::lang::Env env;
      env.fields = probe.fields;
      env.states.assign(schema.state_vars().size(), 0);
      const auto got = fabric.deliver_env(probe.fields, probe.now_us);
      const auto& want_set = oracle.value().pipeline.evaluate_actions(env);
      std::vector<std::pair<std::size_t, std::uint16_t>> want;
      for (const std::uint16_t p : want_set.ports)
        want.emplace_back(spec.leaf_of(p), p);
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
      ASSERT_EQ(got, want) << "sample " << i << " diverged from the oracle";
    }
  }
}

TEST(FabricDifferential, TrivialTopology1x1) { run_differential(1, 1, 11, 12); }
TEST(FabricDifferential, Topology2x4) { run_differential(2, 4, 22, 12); }
TEST(FabricDifferential, Topology4x8) { run_differential(4, 8, 33, 12); }

// --- Cross-switch install -------------------------------------------------

struct FabricPlant {
  camus::spec::Schema schema = camus::spec::make_itch_schema();
  FabricSpec spec;
  camus::netsim::Fabric fabric;
  camus::util::MemStorage storage;
  FabricController ctl;

  explicit FabricPlant(std::size_t leaves = 2, std::size_t spines = 1)
      : spec{leaves, spines},
        fabric(camus::spec::make_itch_schema(), topo_for(leaves, spines)),
        ctl(camus::spec::make_itch_schema(), storage, {leaves, spines}) {}

  static camus::netsim::FabricTopologyOptions topo_for(std::size_t leaves,
                                                       std::size_t spines) {
    camus::netsim::FabricTopologyOptions topo;
    topo.spec = {leaves, spines};
    return topo;
  }

  std::vector<std::uint64_t> digests() {
    std::vector<std::uint64_t> d;
    for (std::size_t s = 0; s < spec.spines; ++s)
      d.push_back(fabric.spine(s).program_digest());
    for (std::size_t l = 0; l < spec.leaves; ++l)
      d.push_back(fabric.leaf(l).program_digest());
    return d;
  }
};

TEST(FabricController, StatefulSubscribeRejectedBeforeJournaling) {
  FabricPlant plant;
  ASSERT_TRUE(plant.ctl.open().ok());
  auto sub = plant.ctl.subscribe(
      1, "stock == GOOGL : fwd(1); update(my_counter)");
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().code, "F150");
  EXPECT_EQ(plant.ctl.subscription_count(), 0u);
}

TEST(FabricController, InstallCommitsEverySwitchAndMatchesIntent) {
  FabricPlant plant(2, 2);
  ASSERT_TRUE(plant.ctl.open().ok());
  ASSERT_TRUE(plant.ctl.subscribe(0, "stock == GOOGL").ok());
  ASSERT_TRUE(plant.ctl.subscribe(1, "stock == MSFT and price > 100").ok());
  ASSERT_TRUE(plant.ctl.subscribe(3, "shares > 500").ok());
  ASSERT_TRUE(plant.ctl.commit().ok());
  auto rep = plant.ctl.install(plant.fabric.targets());
  ASSERT_TRUE(rep.ok()) << rep.error().to_string();
  EXPECT_TRUE(rep.value().committed);
  EXPECT_EQ(rep.value().committed_switches, 4u);

  auto intended = plant.ctl.intended();
  ASSERT_TRUE(intended.ok());
  for (std::size_t s = 0; s < 2; ++s)
    EXPECT_EQ(plant.fabric.spine(s).program_digest(),
              intended.value()->spine_digest);
  for (std::size_t l = 0; l < 2; ++l)
    EXPECT_EQ(plant.fabric.leaf(l).program_digest(),
              intended.value()->leaf_digests[l]);
}

TEST(FabricController, PartitionedSwitchAbortsAllOrNothing) {
  FabricPlant plant(2, 1);
  ASSERT_TRUE(plant.ctl.open().ok());
  ASSERT_TRUE(plant.ctl.subscribe(0, "stock == GOOGL").ok());
  ASSERT_TRUE(plant.ctl.subscribe(1, "stock == MSFT").ok());
  ASSERT_TRUE(plant.ctl.commit().ok());

  const auto before = plant.digests();
  camus::fault::FaultSpec dead;
  dead.drop = 1.0;
  const camus::fault::Plan plan(dead, 7);
  // Kill the channel to the LAST switch: the others have already staged.
  auto rep = plant.ctl.install(plant.fabric.targets(), &plan, 2);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value().committed);
  EXPECT_TRUE(rep.value().all_or_nothing_abort);
  EXPECT_EQ(rep.value().committed_switches, 0u);
  EXPECT_EQ(plant.digests(), before);  // ZERO switches modified

  // The journaled commit remains the intent; a clean reconcile converges.
  auto rec = plant.ctl.reconcile(plant.fabric.targets());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  EXPECT_TRUE(rec.value().converged);
}

TEST(FabricController, CrashBetweenCommitsRecoversToConvergence) {
  FabricPlant plant(2, 1);
  ASSERT_TRUE(plant.ctl.open().ok());
  ASSERT_TRUE(plant.ctl.subscribe(0, "stock == GOOGL").ok());
  ASSERT_TRUE(plant.ctl.subscribe(1, "stock == MSFT").ok());
  ASSERT_TRUE(plant.ctl.commit().ok());

  // Die after exactly one per-switch commit: fabric left mixed.
  plant.ctl.set_crash_after_commits(1);
  auto rep = plant.ctl.install(plant.fabric.targets());
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(rep.value().crashed_mid_commit);
  EXPECT_FALSE(rep.value().committed);
  EXPECT_EQ(rep.value().committed_switches, 1u);

  // A successor on the same journal resolves the in-flight install and
  // repairs every switch to the journaled intent.
  FabricController successor(plant.schema, plant.storage, plant.spec);
  auto info = successor.open();
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  EXPECT_TRUE(info.value().install_in_flight);
  EXPECT_GT(successor.epoch(), rep.value().epoch);
  auto rec = successor.reconcile(plant.fabric.targets());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  EXPECT_TRUE(rec.value().converged);
  EXPECT_GE(rec.value().repaired, 1u);

  auto intended = successor.intended();
  ASSERT_TRUE(intended.ok());
  EXPECT_EQ(plant.fabric.spine(0).program_digest(),
            intended.value()->spine_digest);
  for (std::size_t l = 0; l < 2; ++l)
    EXPECT_EQ(plant.fabric.leaf(l).program_digest(),
              intended.value()->leaf_digests[l]);
}

// --- Nemesis campaign -----------------------------------------------------

TEST(FabricNemesis, CampaignHoldsAllInvariants) {
  camus::fault::FabricNemesisOptions opts;
  opts.seed = 42;
  opts.scenarios = 100;
  const auto stats = camus::fault::run_fabric_nemesis(opts);
  EXPECT_EQ(stats.scenarios, 100u);
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(stats.installs, 0u);
  // Atomicity: every partitioned install aborted with zero switches
  // modified; fencing: every stale write bounced.
  EXPECT_EQ(stats.all_or_nothing_aborts, stats.partitions);
  EXPECT_EQ(stats.stale_rejected, stats.stale_writes);
  for (const auto& v : stats.violation_details) ADD_FAILURE() << v;
  EXPECT_EQ(stats.violations, 0u);
}

TEST(FabricNemesis, CampaignIsDeterministic) {
  camus::fault::FabricNemesisOptions opts;
  opts.seed = 7;
  opts.scenarios = 20;
  const auto a = camus::fault::run_fabric_nemesis(opts);
  const auto b = camus::fault::run_fabric_nemesis(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.violations, 0u);
}

}  // namespace
