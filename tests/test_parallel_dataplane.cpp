// Differential tests for the multi-core front end (ParallelSwitch):
// sharded classification at pool sizes 1, 2, and 8 must be bit-identical
// to the single-threaded batched path — TxPacket sequence, per-port
// digests, per-symbol ordering, and SwitchCounters — over a
// multicast-heavy workload with malformed frames interleaved. Also
// covers graceful degradation for stateful programs, reprogramming
// between threaded batches, and a concurrent-updater stress for the tsan
// job (RCU snapshot pinning).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/parallel.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;
using switchsim::ParallelSwitch;
using switchsim::Switch;

// Multicast-heavy stateless rules: AAA fans out to {1,2}, the rest are
// unicast to different ports, EEE drops.
constexpr std::string_view kRules = R"(
  stock == AAA : fwd(1)
  stock == AAA : fwd(2)
  stock == BBB : fwd(1)
  stock == CCC : fwd(2)
  stock == DDD : fwd(3)
)";

table::Pipeline rules_pipeline(const spec::Schema& schema,
                               std::string_view rules = kRules) {
  auto c = compiler::compile_source(schema, rules);
  EXPECT_TRUE(c.ok()) << (c.ok() ? "" : c.error().to_string());
  return c.value().pipeline;
}

// Frames of 4 messages, symbols cycling through a fixed rotation, shares
// carrying a globally increasing ingress tag (per-symbol order proof),
// with an unparseable frame interleaved every 17th slot.
std::vector<workload::PackedFrame> tagged_frames(std::size_t n_frames) {
  const char* symbols[] = {"AAA", "BBB", "CCC", "DDD", "EEE"};
  std::vector<workload::PackedFrame> frames;
  std::uint32_t tag = 1;
  for (std::size_t f = 0; f < n_frames; ++f) {
    if (f % 17 == 16) {
      workload::PackedFrame junk;
      junk.t_us = f;
      junk.bytes.assign(24, 0x5a);
      frames.push_back(std::move(junk));
      continue;
    }
    std::vector<proto::ItchAddOrder> msgs;
    for (int m = 0; m < 4; ++m) {
      proto::ItchAddOrder o;
      // Leading symbol varies per frame (drives the shard hash); the
      // remaining messages rotate so most frames mix symbols and ports.
      o.stock = symbols[(f + static_cast<std::size_t>(m) * 2) % 5];
      o.shares = tag++;
      o.price = 100;
      o.side = 'B';
      msgs.push_back(std::move(o));
    }
    proto::MoldUdp64Header mold;
    mold.session = "CAMUS00001";
    mold.sequence = static_cast<std::uint64_t>(f * 4 + 1);
    workload::PackedFrame pf;
    pf.t_us = f;
    pf.bytes = proto::encode_market_data_packet(proto::EthernetHeader{}, 1,
                                                2, mold, msgs);
    frames.push_back(std::move(pf));
  }
  return frames;
}

struct RunResult {
  std::vector<Switch::TxPacket> pkts;
  switchsim::SwitchCounters counters;
};

std::vector<Switch::Frame> to_batch(
    const std::vector<workload::PackedFrame>& frames, std::size_t lo,
    std::size_t hi) {
  std::vector<Switch::Frame> batch;
  for (std::size_t i = lo; i < hi; ++i)
    batch.push_back({frames[i].bytes, frames[i].t_us});
  return batch;
}

RunResult run_batched(Switch& sw,
                      const std::vector<workload::PackedFrame>& frames,
                      std::size_t batch_size) {
  RunResult r;
  for (std::size_t i = 0; i < frames.size(); i += batch_size) {
    const auto batch =
        to_batch(frames, i, std::min(i + batch_size, frames.size()));
    for (auto& tx : sw.process_batch(batch)) r.pkts.push_back(std::move(tx));
  }
  r.counters = sw.counters();
  return r;
}

RunResult run_pool(ParallelSwitch& pool,
                   const std::vector<workload::PackedFrame>& frames,
                   std::size_t batch_size) {
  RunResult r;
  for (std::size_t i = 0; i < frames.size(); i += batch_size) {
    const auto batch =
        to_batch(frames, i, std::min(i + batch_size, frames.size()));
    for (auto& tx : pool.process_batch(batch))
      r.pkts.push_back(std::move(tx));
  }
  return r;
}

void expect_identical(const RunResult& ref, const RunResult& got) {
  ASSERT_EQ(ref.pkts.size(), got.pkts.size());
  for (std::size_t i = 0; i < ref.pkts.size(); ++i) {
    ASSERT_EQ(ref.pkts[i].port, got.pkts[i].port) << "packet " << i;
    ASSERT_EQ(ref.pkts[i].frame, got.pkts[i].frame) << "packet " << i;
  }
  EXPECT_EQ(ref.counters.rx_frames, got.counters.rx_frames);
  EXPECT_EQ(ref.counters.parse_errors, got.counters.parse_errors);
  EXPECT_EQ(ref.counters.dropped, got.counters.dropped);
  EXPECT_EQ(ref.counters.matched, got.counters.matched);
  EXPECT_EQ(ref.counters.tx_copies, got.counters.tx_copies);
  EXPECT_EQ(ref.counters.multicast_frames, got.counters.multicast_frames);
  EXPECT_EQ(ref.counters.state_updates, got.counters.state_updates);
}

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Per-port digest of an egress packet sequence: FNV-1a over each port's
// frames in emission order, independently per port.
std::map<std::uint16_t, std::uint64_t> per_port_digests(
    const std::vector<Switch::TxPacket>& pkts) {
  std::map<std::uint16_t, std::uint64_t> d;
  for (const auto& tx : pkts) {
    auto [it, inserted] = d.try_emplace(tx.port, 0xcbf29ce484222325ULL);
    it->second = fnv1a(it->second, tx.frame.data(), tx.frame.size());
  }
  return d;
}

TEST(ParallelDataplane, DifferentialAcrossPoolSizes) {
  auto schema = spec::make_itch_schema();
  auto pipeline = rules_pipeline(schema);
  const auto frames = tagged_frames(400);

  Switch sw_ref(schema, pipeline);
  const auto ref = run_batched(sw_ref, frames, 32);
  ASSERT_GT(ref.pkts.size(), 0u);
  ASSERT_GT(ref.counters.parse_errors, 0u);
  ASSERT_GT(ref.counters.multicast_frames, 0u);

  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    Switch sw(schema, pipeline);
    ParallelSwitch pool(sw, n);
    EXPECT_EQ(pool.threads(), n);
    ASSERT_TRUE(pool.eligible());
    RunResult got = run_pool(pool, frames, 32);
    got.counters = sw.counters();
    expect_identical(ref, got);
    EXPECT_GT(pool.stats().threaded_batches, 0u);
    EXPECT_EQ(pool.stats().degraded_batches, 0u);
    EXPECT_GT(pool.stats().sharded_frames, 0u);
  }
}

// Explicit ordering invariants on the threaded output itself (not just
// byte equality with the reference): per-port digests match the N=1 run,
// and within every (port, symbol) pair the ingress tags (shares) appear
// in strictly increasing ingress order — per-symbol order survives
// sharding.
TEST(ParallelDataplane, PerSymbolOrderAndPerPortDigests) {
  auto schema = spec::make_itch_schema();
  auto pipeline = rules_pipeline(schema);
  const auto frames = tagged_frames(300);

  Switch sw1(schema, pipeline);
  ParallelSwitch pool1(sw1, 1);
  const auto base = run_pool(pool1, frames, 64);

  Switch sw8(schema, pipeline);
  ParallelSwitch pool8(sw8, 8);
  const auto wide = run_pool(pool8, frames, 64);

  EXPECT_EQ(per_port_digests(base.pkts), per_port_digests(wide.pkts));

  std::map<std::pair<std::uint16_t, std::string>, std::uint32_t> last_tag;
  std::size_t checked = 0;
  for (const auto& tx : wide.pkts) {
    auto pkt = proto::decode_market_data_packet(tx.frame);
    ASSERT_TRUE(pkt.has_value());
    for (const auto& msg : pkt->itch.add_orders) {
      auto& last = last_tag[{tx.port, msg.stock}];
      EXPECT_GT(msg.shares, last)
          << "per-symbol order violated on port " << tx.port << " for "
          << msg.stock;
      last = msg.shares;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

// A stateful program (register updates feed back into classification) is
// ineligible for sharding: the pool must degrade to the single-threaded
// batched path — still bit-identical — and say so in its stats.
TEST(ParallelDataplane, StatefulProgramDegradesGracefully) {
  auto schema = spec::make_itch_schema();
  auto pipeline = rules_pipeline(schema, R"(
    stock == AAA and avg(price) > 50 : fwd(1)
    stock == AAA : update(avg_price)
    stock == BBB : fwd(2); update(my_counter)
  )");
  const auto frames = tagged_frames(200);

  Switch sw_ref(schema, pipeline);
  const auto ref = run_batched(sw_ref, frames, 32);
  ASSERT_GT(ref.counters.state_updates, 0u);

  Switch sw(schema, pipeline);
  ParallelSwitch pool(sw, 8);
  EXPECT_FALSE(pool.eligible());
  RunResult got = run_pool(pool, frames, 32);
  got.counters = sw.counters();
  expect_identical(ref, got);
  EXPECT_GT(pool.stats().degraded_batches, 0u);
  EXPECT_EQ(pool.stats().threaded_batches, 0u);
  EXPECT_EQ(sw.counters().state_updates, ref.counters.state_updates);
}

// Reprogramming between threaded batches: every batch pins the program
// published at its start, per-worker memos reconcile against the new
// prefix signature, and the output still matches a single-threaded
// switch reprogrammed at the same point.
TEST(ParallelDataplane, ReprogramBetweenThreadedBatches) {
  auto schema = spec::make_itch_schema();
  auto pipe_a = rules_pipeline(schema);
  auto pipe_b = rules_pipeline(schema, R"(
    stock == AAA : fwd(7)
    stock == BBB : fwd(8)
    stock == BBB : fwd(9)
    stock == EEE : fwd(7)
  )");
  const auto frames = tagged_frames(240);
  const std::size_t half = frames.size() / 2;
  const std::vector<workload::PackedFrame> first(frames.begin(),
                                                 frames.begin() + half);
  const std::vector<workload::PackedFrame> second(frames.begin() + half,
                                                  frames.end());

  Switch sw_ref(schema, pipe_a);
  RunResult ref = run_batched(sw_ref, first, 32);
  sw_ref.reprogram(pipe_b);
  for (auto& tx : run_batched(sw_ref, second, 32).pkts)
    ref.pkts.push_back(std::move(tx));
  ref.counters = sw_ref.counters();

  Switch sw(schema, pipe_a);
  ParallelSwitch pool(sw, 4);
  RunResult got = run_pool(pool, first, 32);
  sw.reprogram(pipe_b);
  for (auto& tx : run_pool(pool, second, 32).pkts)
    got.pkts.push_back(std::move(tx));
  got.counters = sw.counters();
  expect_identical(ref, got);
}

// tsan stress: a control-plane thread republishes the program while the
// pool processes batches. Outputs depend on publish timing, so only the
// frame-accounting invariant and crash/race freedom are asserted — the
// value is running the pool's pin/dispatch machinery under tsan against
// concurrent updates.
TEST(ParallelDataplane, ConcurrentReprogramUnderPool) {
  auto schema = spec::make_itch_schema();
  auto pipe_a = rules_pipeline(schema);
  auto pipe_b = rules_pipeline(schema, R"(
    stock == AAA : fwd(5)
    stock == CCC : fwd(6)
  )");
  const auto frames = tagged_frames(160);

  Switch sw(schema, pipe_a);
  ParallelSwitch pool(sw, 4);

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    bool flip = false;
    while (!stop.load(std::memory_order_relaxed)) {
      sw.reprogram(flip ? pipe_b : pipe_a);
      flip = !flip;
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 50; ++round)
    (void)run_pool(pool, frames, 16);
  stop.store(true, std::memory_order_relaxed);
  updater.join();

  const auto& c = sw.counters();
  EXPECT_EQ(c.rx_frames, c.parse_errors + c.dropped + c.matched);
  EXPECT_LE(c.multicast_frames, c.matched);
}

}  // namespace
