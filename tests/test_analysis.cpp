// Rule-set static analysis: satisfiability, duplicates, selectivity.
#include <gtest/gtest.h>

#include "compiler/analysis.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"

namespace {

using namespace camus;

std::vector<lang::BoundRule> bind_all(const spec::Schema& schema,
                                      std::string_view text) {
  auto parsed = lang::parse_rules(text);
  EXPECT_TRUE(parsed.ok());
  auto bound = lang::bind_rules(parsed.value(), schema);
  EXPECT_TRUE(bound.ok()) << (bound.ok() ? "" : bound.error().to_string());
  return std::move(bound).take();
}

TEST(Analysis, FlagsUnsatisfiableRules) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    shares < 10 and shares > 20 : fwd(1)
    stock == GOOGL : fwd(2)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().unsatisfiable_count, 1u);
  EXPECT_FALSE(report.value().rules[0].satisfiable);
  EXPECT_TRUE(report.value().rules[1].satisfiable);
  EXPECT_NE(report.value().to_string(schema).find("UNSATISFIABLE"),
            std::string::npos);
}

TEST(Analysis, DetectsDuplicatesAndSameCondition) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    stock == GOOGL and price > 5 : fwd(1)
    price > 5 and stock == GOOGL : fwd(1)
    stock == GOOGL and price > 5 : fwd(2)
    stock == MSFT : fwd(1)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  const auto& rs = report.value().rules;
  // Rule 2 is rule 1 reordered: exact duplicate (canonical DNF form).
  ASSERT_TRUE(rs[1].duplicate_of.has_value());
  EXPECT_EQ(*rs[1].duplicate_of, 0u);
  // Rule 3 shares the condition but forwards elsewhere.
  ASSERT_TRUE(rs[2].same_condition_as.has_value());
  EXPECT_FALSE(rs[2].duplicate_of.has_value());
  EXPECT_FALSE(rs[3].duplicate_of.has_value());
  EXPECT_EQ(report.value().duplicate_count, 1u);
}

TEST(Analysis, SelectivityEstimates) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    shares < 2147483648 : fwd(1)
    shares < 1 : fwd(2)
    shares >= 0 : fwd(3)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  const auto& rs = report.value().rules;
  EXPECT_NEAR(rs[0].selectivity, 0.5, 1e-6);       // half the 32-bit domain
  EXPECT_NEAR(rs[1].selectivity, 1.0 / 4294967296.0, 1e-12);
  EXPECT_NEAR(rs[2].selectivity, 1.0, 1e-9);       // tautology
  EXPECT_TRUE(rs[2].subjects.empty());             // no constraints remain
}

TEST(Analysis, SubjectsListed) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(
      schema, "stock == GOOGL and price > 5 and avg(price) > 9 : fwd(1)");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rules[0].subjects.size(), 3u);
  EXPECT_EQ(report.value().rules[0].dnf_terms, 1u);
}

TEST(Analysis, DisjunctionUnionBound) {
  auto schema = spec::make_itch_schema();
  // Two disjoint halves: selectivity sums to ~1.
  auto rules = bind_all(
      schema, "shares < 2147483648 or shares >= 2147483648 : fwd(1)");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.value().rules[0].selectivity, 1.0, 1e-6);
  EXPECT_EQ(report.value().rules[0].dnf_terms, 2u);
}

TEST(Analysis, EmptyRuleSet) {
  auto schema = spec::make_itch_schema();
  auto report = compiler::analyze_rules(schema, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().rules.empty());
}

}  // namespace
