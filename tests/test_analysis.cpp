// Rule-set static analysis: satisfiability, duplicates, selectivity.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "compiler/analysis.hpp"
#include "compiler/field_order.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "verify/subscriptions.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

std::vector<lang::BoundRule> bind_all(const spec::Schema& schema,
                                      std::string_view text) {
  auto parsed = lang::parse_rules(text);
  EXPECT_TRUE(parsed.ok());
  auto bound = lang::bind_rules(parsed.value(), schema);
  EXPECT_TRUE(bound.ok()) << (bound.ok() ? "" : bound.error().to_string());
  return std::move(bound).take();
}

TEST(Analysis, FlagsUnsatisfiableRules) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    shares < 10 and shares > 20 : fwd(1)
    stock == GOOGL : fwd(2)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().unsatisfiable_count, 1u);
  EXPECT_FALSE(report.value().rules[0].satisfiable);
  EXPECT_TRUE(report.value().rules[1].satisfiable);
  EXPECT_NE(report.value().to_string(schema).find("UNSATISFIABLE"),
            std::string::npos);
}

TEST(Analysis, DetectsDuplicatesAndSameCondition) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    stock == GOOGL and price > 5 : fwd(1)
    price > 5 and stock == GOOGL : fwd(1)
    stock == GOOGL and price > 5 : fwd(2)
    stock == MSFT : fwd(1)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  const auto& rs = report.value().rules;
  // Rule 2 is rule 1 reordered: exact duplicate (canonical DNF form).
  ASSERT_TRUE(rs[1].duplicate_of.has_value());
  EXPECT_EQ(*rs[1].duplicate_of, 0u);
  // Rule 3 shares the condition but forwards elsewhere.
  ASSERT_TRUE(rs[2].same_condition_as.has_value());
  EXPECT_FALSE(rs[2].duplicate_of.has_value());
  EXPECT_FALSE(rs[3].duplicate_of.has_value());
  EXPECT_EQ(report.value().duplicate_count, 1u);
}

TEST(Analysis, SelectivityEstimates) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(schema, R"(
    shares < 2147483648 : fwd(1)
    shares < 1 : fwd(2)
    shares >= 0 : fwd(3)
  )");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  const auto& rs = report.value().rules;
  EXPECT_NEAR(rs[0].selectivity, 0.5, 1e-6);       // half the 32-bit domain
  EXPECT_NEAR(rs[1].selectivity, 1.0 / 4294967296.0, 1e-12);
  EXPECT_NEAR(rs[2].selectivity, 1.0, 1e-9);       // tautology
  EXPECT_TRUE(rs[2].subjects.empty());             // no constraints remain
}

TEST(Analysis, SubjectsListed) {
  auto schema = spec::make_itch_schema();
  auto rules = bind_all(
      schema, "stock == GOOGL and price > 5 and avg(price) > 9 : fwd(1)");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rules[0].subjects.size(), 3u);
  EXPECT_EQ(report.value().rules[0].dnf_terms, 1u);
}

TEST(Analysis, DisjunctionUnionBound) {
  auto schema = spec::make_itch_schema();
  // Two disjoint halves: selectivity sums to ~1.
  auto rules = bind_all(
      schema, "shares < 2147483648 or shares >= 2147483648 : fwd(1)");
  auto report = compiler::analyze_rules(schema, rules);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.value().rules[0].selectivity, 1.0, 1e-6);
  EXPECT_EQ(report.value().rules[0].dnf_terms, 2u);
}

TEST(Analysis, EmptyRuleSet) {
  auto schema = spec::make_itch_schema();
  auto report = compiler::analyze_rules(schema, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().rules.empty());
}

TEST(Analysis, DnfTermOverflowIsAnError) {
  auto schema = spec::make_itch_schema();
  // (A or B) and (C or D) expands to 4 conjunctions.
  auto rules = bind_all(schema,
                        "(price < 10 or price > 20) and "
                        "(shares < 5 or shares > 9) : fwd(1)");
  auto overflow = compiler::analyze_rules(schema, rules, /*max_dnf_terms=*/2);
  EXPECT_FALSE(overflow.ok());
  auto fits = compiler::analyze_rules(schema, rules, /*max_dnf_terms=*/4);
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(fits.value().rules[0].dnf_terms, 4u);
}

TEST(Analysis, DnfPreFilterAgreesWithBddOnItchWorkload) {
  // Figure-5 style workload (stock == S and price > P : fwd(H)) plus a few
  // multi-term rules; wherever the DNF pre-filter decides an implication,
  // the domain-exact BDD check must agree.
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams params;
  params.n_subscriptions = 60;
  params.n_symbols = 5;
  params.n_hosts = 6;
  auto subs = workload::generate_itch_subscriptions(schema, params);
  auto rules = subs.rules;
  for (auto& extra : bind_all(schema, R"(
    price > 10 and price < 30 : fwd(1)
    price < 20 or (price > 15 and price < 40) : fwd(1)
    price < 15 or price > 25 : fwd(1)
  )"))
    rules.push_back(std::move(extra));

  auto flat = lang::flatten_rules(rules, schema);
  ASSERT_TRUE(flat.ok());
  const auto& f = flat.value();

  // One shared manager; a uniform marker action makes each rule's BDD a
  // boolean function of its condition alone.
  bdd::BddManager mgr(
      compiler::choose_order(schema, f, bdd::OrderHeuristic::kDeclared),
      bdd::DomainMap(schema));
  lang::ActionSet marker;
  marker.add_port(1);
  std::vector<bdd::NodeRef> roots;
  roots.reserve(f.size());
  for (const auto& r : f)
    roots.push_back(mgr.build_rule(lang::FlatRule{r.terms, marker}));

  std::size_t proven = 0, refuted = 0, undecided = 0, undecided_true = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    for (std::size_t j = 0; j < f.size(); ++j) {
      if (i == j) continue;
      const bool exact = mgr.implies(roots[i], roots[j]);
      switch (verify::dnf_implies(f[i], f[j])) {
        case verify::PreVerdict::kProven:
          EXPECT_TRUE(exact) << "pre-filter proved " << i << " => " << j;
          ++proven;
          break;
        case verify::PreVerdict::kRefuted:
          EXPECT_FALSE(exact) << "pre-filter refuted " << i << " => " << j;
          ++refuted;
          break;
        case verify::PreVerdict::kUnknown:
          ++undecided;
          if (exact) ++undecided_true;
          break;
      }
    }
  }
  // The workload exercises all three verdicts, and kUnknown is genuinely
  // undecided: the BDD settles some of those pairs in each direction.
  EXPECT_GT(proven, 0u);
  EXPECT_GT(refuted, 0u);
  EXPECT_GT(undecided, 0u);
  EXPECT_GT(undecided_true, 0u);
  EXPECT_LT(undecided_true, undecided);
}

}  // namespace
