// Workload generators: determinism, parameter effects, distributions.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lang/dnf.hpp"
#include "spec/itch_spec.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"
#include "workload/siena.hpp"

namespace {

using namespace camus;

TEST(SienaGenerator, Deterministic) {
  workload::SienaParams p;
  p.seed = 42;
  p.n_subscriptions = 25;
  auto a = workload::generate_siena(p);
  auto b = workload::generate_siena(p);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].cond->to_string(), b.rules[i].cond->to_string());
    EXPECT_EQ(a.rules[i].actions, b.rules[i].actions);
  }
  p.seed = 43;
  auto c = workload::generate_siena(p);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.rules.size(); ++i)
    any_diff |= a.rules[i].cond->to_string() != c.rules[i].cond->to_string();
  EXPECT_TRUE(any_diff);
}

TEST(SienaGenerator, RespectsParameters) {
  workload::SienaParams p;
  p.n_subscriptions = 40;
  p.predicates_per_subscription = 4;
  p.n_string_attrs = 2;
  p.n_numeric_attrs = 3;
  auto w = workload::generate_siena(p);
  EXPECT_EQ(w.rules.size(), 40u);
  EXPECT_EQ(w.schema.fields().size(), 5u);
  EXPECT_EQ(w.schema.query_order().size(), 5u);

  // Every rule is a pure conjunction with exactly k distinct subjects.
  for (const auto& r : w.rules) {
    auto flat = lang::flatten_rule({r.cond, r.actions}, w.schema);
    ASSERT_TRUE(flat.ok());
    ASSERT_EQ(flat.value().terms.size(), 1u);
    EXPECT_EQ(flat.value().terms[0].constraints.size(), 4u);
    EXPECT_FALSE(r.actions.ports.empty());
  }
}

TEST(SienaGenerator, PredicateCountCappedByAttributes) {
  workload::SienaParams p;
  p.predicates_per_subscription = 99;
  p.n_string_attrs = 1;
  p.n_numeric_attrs = 2;
  p.n_subscriptions = 5;
  auto w = workload::generate_siena(p);
  for (const auto& r : w.rules) {
    auto flat = lang::flatten_rule({r.cond, r.actions}, w.schema);
    ASSERT_TRUE(flat.ok());
    EXPECT_LE(flat.value().terms[0].constraints.size(), 3u);
  }
}

TEST(ItchSubscriptions, ShapeAndDeterminism) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.n_subscriptions = 100;
  p.n_hosts = 10;
  p.n_symbols = 5;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  ASSERT_EQ(subs.rules.size(), 100u);
  EXPECT_EQ(subs.symbols.size(), 5u);

  for (const auto& r : subs.rules) {
    // stock == S and price > P : fwd(H)
    ASSERT_EQ(r.cond->kind, lang::BoundCond::Kind::kAnd);
    EXPECT_EQ(r.cond->lhs->atom.op, lang::RelOp::kEq);
    EXPECT_EQ(r.cond->rhs->atom.op, lang::RelOp::kGt);
    ASSERT_EQ(r.actions.ports.size(), 1u);
    EXPECT_GE(r.actions.ports[0], 1u);
    EXPECT_LE(r.actions.ports[0], 10u);
  }

  auto subs2 = workload::generate_itch_subscriptions(schema, p);
  EXPECT_EQ(subs.rules[7].cond->to_string(),
            subs2.rules[7].cond->to_string());
}

TEST(ItchSubscriptions, RoundRobinCoversAllPairs) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.n_subscriptions = 50;
  p.n_hosts = 5;
  p.n_symbols = 2;
  p.round_robin = true;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  // Hosts cycle 1..5 and symbols advance every 5 subscriptions.
  std::set<std::uint16_t> hosts;
  for (const auto& r : subs.rules) hosts.insert(r.actions.ports[0]);
  EXPECT_EQ(hosts.size(), 5u);
}

TEST(ItchSubscriptions, PerHostThresholdShared) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.n_subscriptions = 40;
  p.n_hosts = 4;
  p.n_symbols = 2;
  auto subs = workload::generate_itch_subscriptions(schema, p);
  // With per-host thresholds there are at most n_hosts distinct values.
  std::set<std::uint64_t> thresholds;
  for (const auto& r : subs.rules) thresholds.insert(r.cond->rhs->atom.value);
  EXPECT_LE(thresholds.size(), 4u);

  p.per_host_threshold = false;
  auto subs2 = workload::generate_itch_subscriptions(schema, p);
  std::set<std::uint64_t> thresholds2;
  for (const auto& r : subs2.rules)
    thresholds2.insert(r.cond->rhs->atom.value);
  EXPECT_GT(thresholds2.size(), 4u);
}

TEST(ItchSubscriptions, RequiresStockAndPriceFields) {
  spec::Schema s;
  s.add_header("t", "h");
  s.mark_queryable(s.add_field("x", 8), spec::MatchHint::kRange);
  workload::ItchSubsParams p;
  EXPECT_THROW(workload::generate_itch_subscriptions(s, p),
               std::invalid_argument);
}

TEST(FeedGenerator, WatchedFractionApproximate) {
  workload::FeedParams p;
  p.seed = 5;
  p.n_messages = 50000;
  p.watched_fraction = 0.05;
  p.mode = workload::FeedMode::kSynthetic;
  auto feed = workload::generate_feed(p);
  ASSERT_EQ(feed.messages.size(), 50000u);
  const double frac =
      static_cast<double>(feed.watched_count) / feed.messages.size();
  EXPECT_NEAR(frac, 0.05, 0.01);

  std::size_t counted = 0;
  for (const auto& m : feed.messages)
    if (m.msg.stock == "GOOGL") ++counted;
  EXPECT_EQ(counted, feed.watched_count);
}

TEST(FeedGenerator, TimestampsMonotone) {
  workload::FeedParams p;
  p.n_messages = 10000;
  for (auto mode :
       {workload::FeedMode::kSynthetic, workload::FeedMode::kNasdaqReplay}) {
    p.mode = mode;
    auto feed = workload::generate_feed(p);
    for (std::size_t i = 1; i < feed.messages.size(); ++i)
      ASSERT_GE(feed.messages[i].t_us, feed.messages[i - 1].t_us) << i;
  }
}

TEST(FeedGenerator, BurstyModeIsBurstier) {
  workload::FeedParams p;
  p.n_messages = 50000;
  p.rate_msgs_per_sec = 200000;

  auto peak_1ms_rate = [](const workload::Feed& feed) {
    std::map<std::uint64_t, std::size_t> buckets;
    for (const auto& m : feed.messages) ++buckets[m.t_us / 1000];
    std::size_t peak = 0;
    for (const auto& [t, n] : buckets) peak = std::max(peak, n);
    return peak;
  };

  p.mode = workload::FeedMode::kSynthetic;
  const auto uniform_peak = peak_1ms_rate(workload::generate_feed(p));
  p.mode = workload::FeedMode::kNasdaqReplay;
  const auto bursty_peak = peak_1ms_rate(workload::generate_feed(p));
  EXPECT_GT(bursty_peak, uniform_peak * 2);
}

TEST(FeedGenerator, PricesWithinBounds) {
  workload::FeedParams p;
  p.n_messages = 5000;
  auto feed = workload::generate_feed(p);
  for (const auto& m : feed.messages) {
    ASSERT_GE(m.msg.price, p.price_min);
    ASSERT_LE(m.msg.price, p.price_max);
    ASSERT_GE(m.msg.shares, p.shares_min);
    ASSERT_LE(m.msg.shares, p.shares_max);
  }
}

TEST(FeedGenerator, AddsMissingWatchedSymbol) {
  workload::FeedParams p;
  p.symbols = {"AAA", "BBB"};
  p.watched_symbol = "ZZZ";
  p.watched_fraction = 0.5;
  p.n_messages = 2000;
  auto feed = workload::generate_feed(p);
  EXPECT_GT(feed.watched_count, 500u);
}

TEST(ItchSymbols, WellKnownFirstAndSized) {
  auto syms = workload::itch_symbols(20);
  ASSERT_EQ(syms.size(), 20u);
  EXPECT_EQ(syms[0], "GOOGL");
  for (const auto& s : syms) EXPECT_LE(s.size(), 8u);
  std::set<std::string> uniq(syms.begin(), syms.end());
  EXPECT_EQ(uniq.size(), 20u);
}

}  // namespace
