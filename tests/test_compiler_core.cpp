// Core end-to-end compiler semantics: the paper's Figure 3/4 worked
// example, and randomized equivalence between the compiled pipeline, the
// BDD, and direct rule evaluation.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "lang/dnf.hpp"
#include "lang/parser.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

spec::Schema figure3_schema() {
  spec::Schema s;
  s.add_header("trade_t", "trade");
  auto shares = s.add_field("shares", 32);
  auto stock = s.add_field("stock", 64, spec::FieldKind::kSymbol);
  s.mark_queryable(shares, spec::MatchHint::kRange);
  s.mark_queryable(stock, spec::MatchHint::kExact);
  return s;
}

// Rules shaped after the paper's Figure 3: two overlapping rules on
// shares > 100 (actions merge to fwd(1,2)) and one on shares < 60.
constexpr std::string_view kFigure3Rules = R"(
  shares > 100 and stock == MSFT : fwd(2)
  shares > 100 : fwd(1)
  shares < 60 and stock == AAPL : fwd(3)
)";

lang::Env make_env(std::uint64_t shares, std::string_view stock) {
  lang::Env env;
  env.fields = {shares, util::encode_symbol(stock)};
  return env;
}

TEST(Figure4, CompilesToThreeStagePipeline) {
  const auto schema = figure3_schema();
  auto compiled = compiler::compile_source(schema, kFigure3Rules);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto& c = compiled.value();

  // Shares component + stock component + leaf = the three-stage pipeline
  // of Figure 4.
  ASSERT_EQ(c.pipeline.tables.size(), 2u);
  EXPECT_EQ(c.pipeline.tables[0].name(), "trade.shares");
  EXPECT_EQ(c.pipeline.tables[1].name(), "trade.stock");
  EXPECT_EQ(c.pipeline.tables[0].kind(), table::MatchKind::kRange);
  EXPECT_EQ(c.pipeline.tables[1].kind(), table::MatchKind::kExact);

  // Overlapping rules merged into a multicast action: fwd(1,2).
  ASSERT_EQ(c.pipeline.mcast.size(), 1u);
  EXPECT_EQ(c.pipeline.mcast.ports(0),
            (std::vector<std::uint16_t>{1, 2}));
}

TEST(Figure4, EvaluationMatchesPaperSemantics) {
  const auto schema = figure3_schema();
  auto compiled = compiler::compile_source(schema, kFigure3Rules);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto& pipe = compiled.value().pipeline;

  // shares > 100 and MSFT: both rules 1 and 2 -> fwd(1,2).
  EXPECT_EQ(pipe.evaluate_actions(make_env(150, "MSFT")).ports,
            (std::vector<std::uint16_t>{1, 2}));
  // shares > 100, other stock: only rule 2 -> fwd(1).
  EXPECT_EQ(pipe.evaluate_actions(make_env(150, "ORCL")).ports,
            (std::vector<std::uint16_t>{1}));
  // shares < 60 and AAPL -> fwd(3).
  EXPECT_EQ(pipe.evaluate_actions(make_env(10, "AAPL")).ports,
            (std::vector<std::uint16_t>{3}));
  // shares < 60, other stock -> drop.
  EXPECT_TRUE(pipe.evaluate_actions(make_env(10, "MSFT")).is_drop());
  // Middle band -> drop.
  EXPECT_TRUE(pipe.evaluate_actions(make_env(80, "AAPL")).is_drop());
  // Boundaries.
  EXPECT_TRUE(pipe.evaluate_actions(make_env(60, "AAPL")).is_drop());
  EXPECT_TRUE(pipe.evaluate_actions(make_env(100, "MSFT")).is_drop());
  EXPECT_EQ(pipe.evaluate_actions(make_env(101, "MSFT")).ports,
            (std::vector<std::uint16_t>{1, 2}));
  EXPECT_EQ(pipe.evaluate_actions(make_env(59, "AAPL")).ports,
            (std::vector<std::uint16_t>{3}));
}

// Randomized equivalence: pipeline == BDD == direct DNF rule evaluation.
struct RandomEquivParams {
  std::uint64_t seed;
  bool prune;
  bool compress;
};

class RandomEquivalence
    : public ::testing::TestWithParam<RandomEquivParams> {};

TEST_P(RandomEquivalence, PipelineMatchesDirectEvaluation) {
  const auto p = GetParam();
  util::Rng rng(p.seed);

  spec::Schema schema;
  schema.add_header("msg_t", "msg");
  const auto f0 = schema.add_field("a", 8);
  const auto f1 = schema.add_field("b", 8);
  const auto f2 = schema.add_field("sym", 64, spec::FieldKind::kSymbol);
  schema.mark_queryable(f0, spec::MatchHint::kRange);
  schema.mark_queryable(f1, spec::MatchHint::kRange);
  schema.mark_queryable(f2, spec::MatchHint::kExact);

  const std::vector<std::string> symbols = {"AA", "BB", "CC", "DD"};

  // Random rules over a small domain so random packets hit matches often.
  std::vector<lang::Rule> rules;
  const std::size_t n_rules = 1 + rng.uniform(0, 14);
  for (std::size_t i = 0; i < n_rules; ++i) {
    std::string text;
    const std::size_t n_atoms = 1 + rng.uniform(0, 3);
    for (std::size_t k = 0; k < n_atoms; ++k) {
      if (k) text += rng.chance(0.7) ? " and " : " or ";
      if (rng.chance(0.2)) text += "!";
      switch (rng.uniform(0, 3)) {
        case 0:
          text += "a " + std::string(rng.chance(0.5) ? "<" : ">") + " " +
                  std::to_string(rng.uniform(0, 255));
          break;
        case 1:
          text += "b " + std::string(rng.chance(0.5) ? "<=" : ">=") + " " +
                  std::to_string(rng.uniform(0, 255));
          break;
        case 2:
          text += "a == " + std::to_string(rng.uniform(0, 255));
          break;
        default:
          text += "sym " + std::string(rng.chance(0.7) ? "==" : "!=") + " " +
                  rng.pick(symbols);
          break;
      }
    }
    text += " : fwd(" + std::to_string(rng.uniform(1, 8)) + ")";
    auto parsed = lang::parse_rule(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.error().to_string();
    rules.push_back(std::move(parsed).take());
  }

  auto bound = lang::bind_rules(rules, schema);
  ASSERT_TRUE(bound.ok()) << bound.error().to_string();
  auto flat = lang::flatten_rules(bound.value(), schema);
  ASSERT_TRUE(flat.ok());

  compiler::CompileOptions opts;
  opts.semantic_prune = p.prune;
  opts.domain_compression = p.compress;
  opts.compression_min_entries = 1;
  auto compiled = compiler::compile_rules(schema, bound.value(), opts);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto& c = compiled.value();

  for (int trial = 0; trial < 400; ++trial) {
    lang::Env env;
    env.fields = {rng.uniform(0, 255), rng.uniform(0, 255),
                  util::encode_symbol(rng.pick(symbols))};

    // Ground truth: union of actions of all matching rules.
    lang::ActionSet expected;
    for (const auto& fr : flat.value()) {
      if (lang::eval_flat_rule(fr, env)) expected.merge(fr.actions);
    }

    const auto& bdd_actions = c.manager->evaluate(c.root, env);
    EXPECT_EQ(bdd_actions, expected) << "BDD mismatch, trial " << trial;

    const auto& pipe_actions = c.pipeline.evaluate_actions(env);
    EXPECT_EQ(pipe_actions, expected) << "pipeline mismatch, trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomEquivalence,
    ::testing::Values(
        RandomEquivParams{1, true, false}, RandomEquivParams{2, true, false},
        RandomEquivParams{3, true, false}, RandomEquivParams{4, false, false},
        RandomEquivParams{5, false, false}, RandomEquivParams{6, true, true},
        RandomEquivParams{7, true, true}, RandomEquivParams{8, false, true},
        RandomEquivParams{9, true, false}, RandomEquivParams{10, true, true}));

}  // namespace

namespace order_independence {

using namespace camus;

// Property: rule ORDER must not affect the compiled function ("the switch
// executes the actions of all matching rules, in no particular order").
class RuleOrderIndependence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RuleOrderIndependence, ShuffledRulesCompileToSameFunction) {
  util::Rng rng(GetParam());
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams p;
  p.seed = GetParam();
  p.n_subscriptions = 60;
  p.n_symbols = 8;
  p.n_hosts = 8;
  p.price_max = 50;
  p.per_host_threshold = false;
  auto subs = workload::generate_itch_subscriptions(schema, p);

  auto original = compiler::compile_rules(schema, subs.rules);
  ASSERT_TRUE(original.ok());
  auto shuffled_rules = subs.rules;
  rng.shuffle(shuffled_rules);
  auto shuffled = compiler::compile_rules(schema, shuffled_rules);
  ASSERT_TRUE(shuffled.ok());

  for (int trial = 0; trial < 400; ++trial) {
    lang::Env env;
    env.fields = {rng.uniform(0, 100),
                  util::encode_symbol(rng.pick(subs.symbols)),
                  rng.uniform(0, 60)};
    env.states = {0, 0};
    ASSERT_EQ(original.value().pipeline.evaluate_actions(env),
              shuffled.value().pipeline.evaluate_actions(env))
        << trial;
  }
  // The reduced BDD is canonical per function, so sizes agree too.
  EXPECT_EQ(original.value().stats.bdd_after_prune.node_count,
            shuffled.value().stats.bdd_after_prune.node_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderIndependence,
                         ::testing::Values(311, 312, 313));

TEST(PipelineDot, RendersStatesAndEdges) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(
      schema, "stock == GOOGL and price > 10 : fwd(1)");
  ASSERT_TRUE(c.ok());
  const std::string dot = c.value().pipeline.to_dot();
  EXPECT_NE(dot.find("digraph pipeline"), std::string::npos);
  EXPECT_NE(dot.find("fwd(1)"), std::string::npos);
  EXPECT_NE(dot.find("GOOGL"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace order_independence
