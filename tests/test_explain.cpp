// Pipeline::explain: the step-by-step trace must agree with evaluate().
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "netsim/market_experiment.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

TEST(Explain, TraceAgreesWithEvaluate) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 1;
  auto c = compiler::compile_source(schema, R"(
    stock == GOOGL and price > 100 : fwd(1)
    shares > 500 or price < 10 : fwd(2)
  )", opts);
  ASSERT_TRUE(c.ok());
  const auto& pipe = c.value().pipeline;

  util::Rng rng(55);
  const std::vector<std::string> syms = {"GOOGL", "MSFT"};
  for (int trial = 0; trial < 300; ++trial) {
    lang::Env env;
    env.fields = {rng.uniform(0, 1000), util::encode_symbol(rng.pick(syms)),
                  rng.uniform(0, 200)};
    env.states = {0, 0};
    const auto trace = pipe.explain(env);
    EXPECT_EQ(trace.actions, pipe.evaluate_actions(env)) << trial;
    EXPECT_EQ(trace.steps.size(),
              pipe.value_maps.size() + pipe.tables.size());
    // State chaining is consistent through the field tables.
    table::StateId state = pipe.initial_state;
    for (std::size_t i = pipe.value_maps.size(); i < trace.steps.size();
         ++i) {
      EXPECT_EQ(trace.steps[i].state_before, state);
      state = trace.steps[i].state_after;
    }
    EXPECT_EQ(trace.final_state, state);
  }
}

TEST(Explain, RendersHitsAndMisses) {
  auto schema = spec::make_itch_schema();
  auto c = compiler::compile_source(schema, "stock == GOOGL : fwd(1)");
  ASSERT_TRUE(c.ok());
  lang::Env env;
  env.fields = {0, util::encode_symbol("GOOGL"), 0};
  env.states = {0, 0};
  const std::string hit = c.value().pipeline.explain(env).to_string();
  EXPECT_NE(hit.find("matched GOOGL"), std::string::npos);
  EXPECT_NE(hit.find("fwd(1)"), std::string::npos);

  env.fields[1] = util::encode_symbol("IBM");
  const std::string miss = c.value().pipeline.explain(env).to_string();
  EXPECT_NE(miss.find("miss"), std::string::npos);
  EXPECT_NE(miss.find("drop()"), std::string::npos);
}

// While here: the fan-out experiment harness invariants.
TEST(FanoutExperiment, ConservationAndSeparation) {
  auto schema = spec::make_itch_schema();
  auto symbols = workload::itch_symbols(10);
  std::map<std::string, std::uint16_t> interest;
  for (std::size_t s = 0; s < symbols.size(); ++s)
    interest[symbols[s]] = static_cast<std::uint16_t>(1 + s % 4);

  workload::FeedParams fp;
  fp.seed = 4;
  fp.n_messages = 20000;
  fp.symbols = symbols;
  fp.watched_fraction = 0.1;
  auto feed = workload::generate_feed(fp);

  netsim::MarketExperimentParams mp;
  mp.mode = netsim::FilterMode::kHostFilter;
  auto bcast = switchsim::Switch::make_broadcast(schema, {1, 2, 3, 4});
  auto base = netsim::run_fanout_experiment(mp, bcast, feed, interest, 4);
  // Broadcast delivers every frame to every host.
  EXPECT_EQ(base.frames_to_hosts, feed.messages.size() * 4);
  // Every message has exactly one interested host here.
  EXPECT_EQ(base.interested_expected, feed.messages.size());
  EXPECT_EQ(base.interested_received, base.interested_expected);

  pubsub::Controller ctl(spec::make_itch_schema());
  for (const auto& [sym, port] : interest)
    ASSERT_TRUE(ctl.subscribe(port, "stock == " + sym).ok());
  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok());
  mp.mode = netsim::FilterMode::kSwitchFilter;
  auto camus =
      netsim::run_fanout_experiment(mp, sw.value(), feed, interest, 4);
  // Switch filtering delivers each frame exactly once (disjoint slices).
  EXPECT_EQ(camus.frames_to_hosts, feed.messages.size());
  EXPECT_EQ(camus.interested_received, camus.interested_expected);
  EXPECT_LT(camus.bytes_to_hosts, base.bytes_to_hosts / 3);
  EXPECT_LE(camus.latency_us.p99(), base.latency_us.p99());
}

}  // namespace
