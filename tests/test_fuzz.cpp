// Robustness fuzzing: random and mutated inputs must never crash the
// front-ends — parsers return errors, decoders return nullopt, and valid
// inputs keep round-tripping.
#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "proto/packet.hpp"
#include "proto/pcap.hpp"
#include "spec/spec_parser.hpp"
#include "table/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus;

// Random printable garbage.
std::string random_text(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcz_ABCZ019 ().,:;<>=!&|\"\n\t#/*+-@[]{}";
  std::string s;
  const std::size_t n = rng.uniform(0, max_len);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]);
  return s;
}

// Token soup that looks more like real rules.
std::string rule_soup(util::Rng& rng) {
  static const std::vector<std::string> kTokens = {
      "stock",  "price",   "shares", "==",   "!=",   "<",     ">",
      "<=",     ">=",      "and",    "or",   "not",  "!",     "(",
      ")",      ":",       "fwd",    "drop", "update", ",",   ";",
      "GOOGL",  "42",      "avg",    "in",   "my_counter", "1.2.3.4",
      "\"X\"",  "0",       "18446744073709551615"};
  std::string s;
  const std::size_t n = rng.uniform(1, 25);
  for (std::size_t i = 0; i < n; ++i) {
    s += kTokens[rng.uniform(0, kTokens.size() - 1)];
    s += ' ';
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RuleParserNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string text =
        rng.chance(0.5) ? random_text(rng, 120) : rule_soup(rng);
    (void)lang::parse_rules(text);   // must not crash or hang
    (void)lang::parse_condition(text);
  }
}

TEST_P(FuzzSeeds, SpecParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  static const std::vector<std::string> kTokens = {
      "header_type", "header", "fields", "{", "}", ";", ":", "(",
      ")",           ",",      "t",      "x", "32", "64", "symbol",
      "@query_field", "@query_counter", "@query_avg", "100"};
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    if (rng.chance(0.5)) {
      text = random_text(rng, 150);
    } else {
      const std::size_t n = rng.uniform(1, 30);
      for (std::size_t k = 0; k < n; ++k) {
        text += kTokens[rng.uniform(0, kTokens.size() - 1)];
        text += ' ';
      }
    }
    (void)spec::parse_spec(text);
  }
}

TEST_P(FuzzSeeds, PipelineDeserializerNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5151);
  // Mutations of a valid serialization.
  const std::string valid =
      "camus-pipeline v1\ninitial_state 0\n"
      "table t subject=f0 kind=range width=8 symbol=0\n"
      "entry 0 range 1 9 1\nleaf\nentry 1 ports=1 updates=- mcast=-\nend\n";
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const std::size_t flips = 1 + rng.uniform(0, 5);
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t pos = rng.uniform(0, text.size() - 1);
      text[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    (void)table::deserialize_pipeline(text);
  }
  for (int i = 0; i < 500; ++i)
    (void)table::deserialize_pipeline(random_text(rng, 300));
}

TEST_P(FuzzSeeds, PcapParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> data(rng.uniform(0, 200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    (void)proto::parse_pcap(data);
    (void)proto::decode_market_data_packet(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1001, 2002, 3003));

TEST(FuzzRoundTrip, ValidRulesSurviveReprinting) {
  // Parse -> print -> parse -> print must be a fixed point.
  util::Rng rng(777);
  static const std::vector<std::string> kSubjects = {"stock", "price",
                                                     "shares"};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const std::size_t n = 1 + rng.uniform(0, 2);
    for (std::size_t k = 0; k < n; ++k) {
      if (k) text += rng.chance(0.5) ? " and " : " or ";
      if (rng.chance(0.25)) text += "!";
      text += kSubjects[rng.uniform(0, 2)];
      static const char* kOps[] = {"==", "!=", "<", ">", "<=", ">="};
      text += " ";
      text += kOps[rng.uniform(0, 5)];
      text += " " + std::to_string(rng.uniform(0, 999));
    }
    text += " : fwd(" + std::to_string(1 + rng.uniform(0, 9)) + ")";
    auto r1 = lang::parse_rule(text);
    ASSERT_TRUE(r1.ok()) << text;
    const std::string p1 = r1.value().to_string();
    auto r2 = lang::parse_rule(p1);
    ASSERT_TRUE(r2.ok()) << p1;
    EXPECT_EQ(r2.value().to_string(), p1);
  }
}

}  // namespace
