// Robustness and differential fuzzing.
//
// Byte-level: random and mutated inputs must never crash the front-ends —
// parsers return errors, decoders return nullopt, valid inputs keep
// round-tripping. The generators (workload::random_text / token_soup)
// and the repro-hint convention are shared with camus-fuzz, so a failing
// seed here reproduces from the command line.
//
// Grammar-level: workload::GrammarFuzzer samples the full subscription
// grammar and verify::run_case cross-checks the compiled artifacts
// against the brute-force AST oracle in all four modes (direct, churn,
// fault, lint). The committed reproducers under tests/corpus/ — minimized
// divergences from past campaigns — are replayed forever, and campaign
// determinism (same seed => same verdict digest) is asserted directly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "compiler/compile.hpp"
#include "compiler/incremental.hpp"
#include "lang/eval.hpp"
#include "lang/parser.hpp"
#include "proto/packet.hpp"
#include "proto/pcap.hpp"
#include "spec/itch_spec.hpp"
#include "spec/spec_parser.hpp"
#include "switchsim/switch.hpp"
#include "table/serialize.hpp"
#include "util/rng.hpp"
#include "verify/fuzz_harness.hpp"
#include "workload/fuzz.hpp"

namespace {

using namespace camus;

// Token soup that looks more like real rules.
std::string rule_soup(util::Rng& rng) {
  static constexpr std::string_view kTokens[] = {
      "stock",  "price",   "shares", "==",   "!=",   "<",     ">",
      "<=",     ">=",      "and",    "or",   "not",  "!",     "(",
      ")",      ":",       "fwd",    "drop", "update", ",",   ";",
      "GOOGL",  "42",      "avg",    "in",   "my_counter", "1.2.3.4",
      "\"X\"",  "0",       "18446744073709551615"};
  return workload::token_soup(rng, kTokens, 1, 25);
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RuleParserNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string text =
        rng.chance(0.5) ? workload::random_text(rng, 120) : rule_soup(rng);
    (void)lang::parse_rules(text);   // must not crash or hang
    (void)lang::parse_condition(text);
  }
}

TEST_P(FuzzSeeds, SpecParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  static constexpr std::string_view kTokens[] = {
      "header_type", "header", "fields", "{", "}", ";", ":", "(",
      ")",           ",",      "t",      "x", "32", "64", "symbol",
      "@query_field", "@query_counter", "@query_avg", "100"};
  for (int i = 0; i < 2000; ++i) {
    const std::string text = rng.chance(0.5)
                                 ? workload::random_text(rng, 150)
                                 : workload::token_soup(rng, kTokens, 1, 30);
    (void)spec::parse_spec(text);
  }
}

TEST_P(FuzzSeeds, PipelineDeserializerNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5151);
  // Mutations of a valid serialization.
  const std::string valid =
      "camus-pipeline v1\ninitial_state 0\n"
      "table t subject=f0 kind=range width=8 symbol=0\n"
      "entry 0 range 1 9 1\nleaf\nentry 1 ports=1 updates=- mcast=-\nend\n";
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const std::size_t flips = 1 + rng.uniform(0, 5);
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t pos = rng.uniform(0, text.size() - 1);
      text[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    (void)table::deserialize_pipeline(text);
  }
  for (int i = 0; i < 500; ++i)
    (void)table::deserialize_pipeline(workload::random_text(rng, 300));
}

// Builds a structurally valid MoldUDP64 market-data frame to mutate.
std::vector<std::uint8_t> valid_market_frame(util::Rng& rng) {
  std::vector<proto::ItchAddOrder> msgs;
  const std::size_t n = rng.uniform(0, 5);  // 0 = heartbeat-style frame
  for (std::size_t i = 0; i < n; ++i) {
    proto::ItchAddOrder m;
    m.order_ref = i + 1;
    m.stock = "STK" + std::to_string(rng.uniform(0, 99));
    m.price = static_cast<std::uint32_t>(rng.uniform(1, 1000000));
    m.shares = static_cast<std::uint32_t>(rng.uniform(1, 1000));
    msgs.push_back(std::move(m));
  }
  proto::MoldUdp64Header mold;
  mold.session = "CAMUS00001";
  mold.sequence = rng.uniform(1, 1 << 20);
  proto::EthernetHeader eth;
  return proto::encode_market_data_packet(eth, 0x0a000001, 0xe8010101, mold,
                                          msgs);
}

// The zero-copy scanner, the full decoder, and the diagnostic decoder must
// agree on accept/reject for EVERY input — truncated, bit-flipped, or
// garbage — and on accepted frames they must see the same messages. Runs
// under ASAN/UBSAN in CI, so any out-of-bounds read in the scan fast path
// is caught here.
TEST_P(FuzzSeeds, MoldUdpDecodersAgreeOnMutatedFrames) {
  util::Rng rng(GetParam() ^ 0x11d);
  proto::MarketDataView view;
  std::vector<std::uint32_t> offsets;

  auto check_agreement = [&](std::span<const std::uint8_t> frame) {
    view = proto::MarketDataView{};
    offsets.clear();
    const bool scanned = proto::scan_market_data_packet(frame, view, offsets);
    const auto decoded = proto::decode_market_data_packet(frame);
    const auto checked = proto::decode_market_data_packet_checked(frame);

    ASSERT_EQ(scanned, decoded.has_value())
        << "scan/decode disagree on a " << frame.size() << "-byte frame";
    ASSERT_EQ(decoded.has_value(), checked.ok())
        << "decode/decode_checked disagree; diagnostic: "
        << (checked.ok() ? "ok" : checked.error().to_string());
    if (!decoded) {
      // A reject must carry a stable diagnostic code.
      EXPECT_FALSE(checked.error().code.empty());
      return;
    }
    ASSERT_EQ(offsets.size(), decoded->itch.add_orders.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      const auto m = proto::decode_add_order_at(frame, offsets[i]);
      EXPECT_EQ(m.stock, decoded->itch.add_orders[i].stock);
      EXPECT_EQ(m.price, decoded->itch.add_orders[i].price);
      EXPECT_EQ(m.order_ref, decoded->itch.add_orders[i].order_ref);
    }
  };

  for (int round = 0; round < 400; ++round) {
    const auto frame = valid_market_frame(rng);

    // Every truncation length, including 0 and the full frame.
    for (std::size_t len = 0; len <= frame.size();
         len += 1 + rng.uniform(0, 6)) {
      check_agreement(std::span(frame.data(), len));
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Bit-flipped copies: 1..8 random flips anywhere in the frame.
    auto mutated = frame;
    const int flips = 1 + static_cast<int>(rng.uniform(0, 7));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform(0, mutated.size() - 1);
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    }
    check_agreement(mutated);
    if (::testing::Test::HasFatalFailure()) return;

    // Truncated AND flipped.
    mutated.resize(rng.uniform(0, mutated.size()));
    if (!mutated.empty()) {
      mutated[rng.uniform(0, mutated.size() - 1)] ^= 0xFF;
      check_agreement(mutated);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(FuzzSeeds, PcapParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> data(rng.uniform(0, 200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    (void)proto::parse_pcap(data);
    (void)proto::decode_market_data_packet(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1001, 2002, 3003));

TEST(FuzzRoundTrip, ValidRulesSurviveReprinting) {
  // Parse -> print -> parse -> print must be a fixed point.
  util::Rng rng(777);
  static const std::vector<std::string> kSubjects = {"stock", "price",
                                                     "shares"};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const std::size_t n = 1 + rng.uniform(0, 2);
    for (std::size_t k = 0; k < n; ++k) {
      if (k) text += rng.chance(0.5) ? " and " : " or ";
      if (rng.chance(0.25)) text += "!";
      text += kSubjects[rng.uniform(0, 2)];
      static const char* kOps[] = {"==", "!=", "<", ">", "<=", ">="};
      text += " ";
      text += kOps[rng.uniform(0, 5)];
      text += ' ';
      text += std::to_string(rng.uniform(0, 999));
    }
    text += " : fwd(" + std::to_string(1 + rng.uniform(0, 9)) + ")";
    auto r1 = lang::parse_rule(text);
    ASSERT_TRUE(r1.ok()) << text;
    const std::string p1 = r1.value().to_string();
    auto r2 = lang::parse_rule(p1);
    ASSERT_TRUE(r2.ok()) << p1;
    EXPECT_EQ(r2.value().to_string(), p1);
  }
}

// --- grammar-level fuzzing ---------------------------------------------

class GrammarFuzz : public ::testing::Test {
 protected:
  spec::Schema schema_ = spec::make_itch_schema();
};

TEST_F(GrammarFuzz, SampleIsPureFunctionOfSeedAndIndex) {
  workload::FuzzParams params;
  params.seed = 11;
  const workload::GrammarFuzzer a(schema_, params);
  const workload::GrammarFuzzer b(schema_, params);

  // Same (seed, index) from a fresh fuzzer, out of order, must match.
  const auto s1 = a.sample(5);
  (void)a.sample(7);
  const auto s2 = a.sample(5);
  const auto s3 = b.sample(5);
  EXPECT_EQ(s1.source(), s2.source());
  EXPECT_EQ(s1.source(), s3.source());
  ASSERT_EQ(s1.probes.size(), s3.probes.size());
  for (std::size_t i = 0; i < s1.probes.size(); ++i) {
    EXPECT_EQ(s1.probes[i].fields, s3.probes[i].fields) << i;
    EXPECT_EQ(s1.probes[i].now_us, s3.probes[i].now_us) << i;
  }
  EXPECT_EQ(s1.compress, s3.compress);

  // A different seed must actually change the stream.
  params.seed = 12;
  const workload::GrammarFuzzer c(schema_, params);
  bool any_diff = false;
  for (std::uint64_t i = 0; i < 10 && !any_diff; ++i)
    any_diff = a.sample(i).source() != c.sample(i).source();
  EXPECT_TRUE(any_diff);
}

TEST_F(GrammarFuzz, SamplesAreValidByConstruction) {
  const workload::GrammarFuzzer fuzzer(schema_);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto s = fuzzer.sample(i);
    EXPECT_EQ(s.bound.size(), s.rules.size())
        << "a generated rule failed to bind; "
        << workload::fuzz_repro_hint(s.seed, i);
    auto reparsed = lang::parse_rules(s.source());
    ASSERT_TRUE(reparsed.ok())
        << workload::fuzz_repro_hint(s.seed, i) << ": "
        << reparsed.error().to_string();
    EXPECT_EQ(reparsed.value().size(), s.rules.size());
    EXPECT_FALSE(s.probes.empty());
    for (std::size_t p = 1; p < s.probes.size(); ++p)
      EXPECT_LE(s.probes[p - 1].now_us, s.probes[p].now_us)
          << "probe times must be nondecreasing";
  }
}

TEST_F(GrammarFuzz, ReproSerializationRoundTrips) {
  const workload::GrammarFuzzer fuzzer(schema_);
  const auto s = fuzzer.sample(3);
  verify::FuzzRepro r;
  r.seed = s.seed;
  r.index = s.index;
  r.mode = verify::FuzzMode::kLint;
  r.compress = s.compress;
  r.notes = {"a note", "another note"};
  r.rules = s.rules;
  r.probes = s.probes;

  const std::string text = verify::serialize_repro(r);
  auto parsed = verify::parse_repro(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const verify::FuzzRepro& q = parsed.value();
  EXPECT_EQ(q.seed, r.seed);
  EXPECT_EQ(q.index, r.index);
  EXPECT_EQ(q.mode, r.mode);
  EXPECT_EQ(q.compress, r.compress);
  EXPECT_EQ(q.notes, r.notes);
  ASSERT_EQ(q.rules.size(), r.rules.size());
  for (std::size_t i = 0; i < r.rules.size(); ++i)
    EXPECT_EQ(q.rules[i].to_string(), r.rules[i].to_string()) << i;
  ASSERT_EQ(q.probes.size(), r.probes.size());
  for (std::size_t i = 0; i < r.probes.size(); ++i) {
    EXPECT_EQ(q.probes[i].fields, r.probes[i].fields) << i;
    EXPECT_EQ(q.probes[i].now_us, r.probes[i].now_us) << i;
  }

  EXPECT_FALSE(verify::parse_repro("garbage").ok());
  EXPECT_FALSE(verify::parse_repro("camus-fuzz repro v1\n").ok());
}

TEST_F(GrammarFuzz, MinimizerShrinksAFailingCase) {
  // A sample whose rule set cannot fully bind is the one divergence we can
  // construct deterministically post-fix: run_case flags it in every mode,
  // and the minimizer must strip the healthy rules and probes around it.
  const workload::GrammarFuzzer fuzzer(schema_);
  workload::FuzzSample s = fuzzer.sample(0);
  lang::Rule broken;
  lang::PredExpr p;
  p.subject = "no_such_field";
  p.op = lang::CmpOp::kEq;
  p.literal.kind = lang::Literal::Kind::kInt;
  p.literal.int_value = 1;
  broken.cond = lang::Cond::make_atom(std::move(p));
  broken.actions.push_back([] {
    lang::Action a;
    a.kind = lang::Action::Kind::kFwd;
    a.fwd.ports = {1, 2, 3};
    return a;
  }());
  s.rules.push_back(broken);  // s.bound stays as-is: sizes now differ

  const verify::FuzzCaseResult r = verify::run_case(schema_, s);
  ASSERT_TRUE(r.diverged);

  const verify::FuzzRepro m = verify::minimize(schema_, s, r.mode);
  EXPECT_EQ(m.rules.size(), 1u) << "minimizer kept healthy rules";
  EXPECT_TRUE(m.probes.empty()) << "minimizer kept irrelevant probes";
  // The broken rule's multi-port fwd shrinks to a single port.
  ASSERT_FALSE(m.rules[0].actions.empty());
  EXPECT_LE(m.rules[0].actions[0].fwd.ports.size(), 1u);
  // The reproducer must still reproduce.
  const verify::FuzzCaseResult again = verify::replay_repro(schema_, m);
  EXPECT_TRUE(again.diverged);
}

TEST_F(GrammarFuzz, CampaignIsDeterministic) {
  verify::CampaignOptions opts;
  opts.seed = 21;
  opts.samples = 40;
  const auto r1 = verify::run_campaign(schema_, opts);
  const auto r2 = verify::run_campaign(schema_, opts);
  EXPECT_EQ(r1.samples_run, 40u);
  EXPECT_EQ(r1.verdict_digest, r2.verdict_digest);
  EXPECT_EQ(r1.probes_run, r2.probes_run);
  EXPECT_EQ(r1.divergences, r2.divergences);
  EXPECT_EQ(r1.divergences, 0u)
      << "campaign divergence: " << (r1.failures.empty()
                                         ? ""
                                         : r1.failures.front().detail);

  // Different seed, different digest (the seed is folded in).
  opts.seed = 22;
  const auto r3 = verify::run_campaign(schema_, opts);
  EXPECT_NE(r1.verdict_digest, r3.verdict_digest);
}

TEST_F(GrammarFuzz, CommittedCorpusReplaysGreen) {
  const std::filesystem::path dir = CAMUS_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    std::ifstream in(entry.path());
    std::ostringstream ss;
    ss << in.rdbuf();
    auto repro = verify::parse_repro(ss.str());
    ASSERT_TRUE(repro.ok())
        << entry.path() << ": " << repro.error().to_string();
    const verify::FuzzCaseResult r =
        verify::replay_repro(schema_, repro.value());
    EXPECT_FALSE(r.diverged)
        << entry.path() << " regressed: " << r.detail;
    ++replayed;
  }
  // The corpus ships with the repo; an empty directory means the corpus
  // went missing (wrong CAMUS_CORPUS_DIR), not that all bugs are fixed.
  EXPECT_GE(replayed, 2u);
}

// Regression for the first campaign's finding (tests/corpus/seed1_idx29,
// seed1_idx37): a rule set whose union MTBDD stops testing a field mid-
// churn used to shed that stage entirely, and the next commit's entry
// delta targeted a table the switch did not run (U001). Stage
// materialization keeps the stage list stable, so remove/re-add churn
// round-trips through Switch::apply_delta.
TEST_F(GrammarFuzz, ChurnDeltasSurviveStructuralCollapse) {
  auto rules = lang::parse_rules(
      "shares == 410 : fwd(2,6)\n"
      "!(shares == 410) : fwd(2,6)\n");
  ASSERT_TRUE(rules.ok());
  auto bound = lang::bind_rules(rules.value(), schema_);
  ASSERT_TRUE(bound.ok());

  compiler::IncrementalCompiler inc(schema_);
  const auto id0 = inc.add(bound.value()[0]);
  inc.add(bound.value()[1]);
  ASSERT_TRUE(inc.commit().ok());
  switchsim::Switch sw(schema_, table::Pipeline(*inc.pipeline().value()));

  // With both rules live the union is constant — but the shares stage must
  // still exist (empty), or the re-add below cannot ship as a delta.
  EXPECT_NE(inc.pipeline().value()->find_table("add_order.shares"), nullptr);

  inc.remove(id0);
  auto d1 = inc.commit();
  ASSERT_TRUE(d1.ok());
  EXPECT_FALSE(d1.value().requires_reprogram);
  ASSERT_TRUE(sw.apply_delta(d1.value().ops).ok());

  inc.add(bound.value()[0]);
  auto d2 = inc.commit();
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(d2.value().requires_reprogram);
  ASSERT_TRUE(sw.apply_delta(d2.value().ops).ok());

  // The delta-patched switch equals the brute-force oracle everywhere.
  for (std::uint64_t v : {0ULL, 409ULL, 410ULL, 411ULL, 1ULL << 40}) {
    lang::Env e;
    e.fields = {v, 0, 0};
    EXPECT_EQ(sw.classify(e.fields, 0),
              lang::brute_eval_rules(bound.value(), e))
        << "shares=" << v;
  }
}

// Domain compression can create or retire a mapping stage mid-churn (a
// table crossing the compression threshold). An empty mapping stage is not
// pass-through — it would re-code the field to 0 — so such commits must be
// flagged requires_reprogram instead of shipping inapplicable entry ops.
TEST_F(GrammarFuzz, CompressionStructureChangeForcesReprogram) {
  compiler::CompileOptions opts;
  opts.domain_compression = true;
  opts.compression_min_entries = 2;  // tiny threshold to cross both ways
  compiler::IncrementalCompiler inc(schema_, opts);

  auto add_rule = [&](const std::string& src) {
    auto r = inc.add_source(src);
    EXPECT_TRUE(r.ok()) << src;
    return r.ok() ? r.value() : 0;
  };

  // One range rule: below the threshold, no mapping stage.
  const auto id0 = add_rule("price > 100 : fwd(1)");
  ASSERT_TRUE(inc.commit().ok());
  const bool had_map = !inc.pipeline().value()->value_maps.empty();
  switchsim::Switch sw(schema_, table::Pipeline(*inc.pipeline().value()));

  // Grow the price table past the threshold: a mapping stage appears, and
  // the commit must demand a reprogram.
  add_rule("price > 200 : fwd(2)");
  add_rule("price > 300 : fwd(3)");
  add_rule("price < 50 : fwd(4)");
  auto d = inc.commit();
  ASSERT_TRUE(d.ok());
  ASSERT_FALSE(inc.pipeline().value()->value_maps.empty())
      << "test premise: compression must kick in";
  if (!had_map) {
    EXPECT_TRUE(d.value().requires_reprogram);
    sw.reprogram(table::Pipeline(*inc.pipeline().value()));
  }

  // Shrink back below the threshold: the mapping stage retires, which must
  // again be a reprogram (an empty map would zero the field).
  inc.remove(id0);
  // Leave one range rule so the table itself survives.
  auto d2 = inc.commit();
  ASSERT_TRUE(d2.ok());
  if (d2.value().requires_reprogram)
    sw.reprogram(table::Pipeline(*inc.pipeline().value()));
  else
    ASSERT_TRUE(sw.apply_delta(d2.value().ops).ok());

  // However it shipped, the switch matches a from-scratch compile.
  auto scratch_rules = lang::parse_rules(
      "price > 200 : fwd(2)\n"
      "price > 300 : fwd(3)\n"
      "price < 50 : fwd(4)\n");
  ASSERT_TRUE(scratch_rules.ok());
  auto scratch_bound = lang::bind_rules(scratch_rules.value(), schema_);
  ASSERT_TRUE(scratch_bound.ok());
  for (std::uint64_t v : {0ULL, 49ULL, 50ULL, 150ULL, 250ULL, 350ULL}) {
    lang::Env e;
    e.fields = {0, 0, v};
    EXPECT_EQ(sw.classify(e.fields, 0),
              lang::brute_eval_rules(scratch_bound.value(), e))
        << "price=" << v;
  }
}

// A short four-mode campaign as part of the default suite: 25 samples
// through direct + churn + fault + lint. The CI fuzz-campaign job runs the
// long version; this keeps every local `ctest` a miniature campaign.
TEST_F(GrammarFuzz, ShortCampaignFindsNoDivergence) {
  verify::CampaignOptions opts;
  opts.seed = 4242;
  opts.samples = 25;
  const auto res = verify::run_campaign(schema_, opts);
  EXPECT_EQ(res.samples_run, 25u);
  EXPECT_EQ(res.divergences, 0u)
      << (res.failures.empty() ? "" : res.failures.front().detail);
  EXPECT_GT(res.probes_run, 0u);
  // The JSON summary must serialize (consumed by the CI job).
  EXPECT_NE(res.to_json().find("\"divergences\":0"), std::string::npos);
}

}  // namespace
