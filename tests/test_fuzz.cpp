// Robustness fuzzing: random and mutated inputs must never crash the
// front-ends — parsers return errors, decoders return nullopt, and valid
// inputs keep round-tripping.
#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "proto/packet.hpp"
#include "proto/pcap.hpp"
#include "spec/spec_parser.hpp"
#include "table/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus;

// Random printable garbage.
std::string random_text(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcz_ABCZ019 ().,:;<>=!&|\"\n\t#/*+-@[]{}";
  std::string s;
  const std::size_t n = rng.uniform(0, max_len);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]);
  return s;
}

// Token soup that looks more like real rules.
std::string rule_soup(util::Rng& rng) {
  static const std::vector<std::string> kTokens = {
      "stock",  "price",   "shares", "==",   "!=",   "<",     ">",
      "<=",     ">=",      "and",    "or",   "not",  "!",     "(",
      ")",      ":",       "fwd",    "drop", "update", ",",   ";",
      "GOOGL",  "42",      "avg",    "in",   "my_counter", "1.2.3.4",
      "\"X\"",  "0",       "18446744073709551615"};
  std::string s;
  const std::size_t n = rng.uniform(1, 25);
  for (std::size_t i = 0; i < n; ++i) {
    s += kTokens[rng.uniform(0, kTokens.size() - 1)];
    s += ' ';
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RuleParserNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string text =
        rng.chance(0.5) ? random_text(rng, 120) : rule_soup(rng);
    (void)lang::parse_rules(text);   // must not crash or hang
    (void)lang::parse_condition(text);
  }
}

TEST_P(FuzzSeeds, SpecParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  static const std::vector<std::string> kTokens = {
      "header_type", "header", "fields", "{", "}", ";", ":", "(",
      ")",           ",",      "t",      "x", "32", "64", "symbol",
      "@query_field", "@query_counter", "@query_avg", "100"};
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    if (rng.chance(0.5)) {
      text = random_text(rng, 150);
    } else {
      const std::size_t n = rng.uniform(1, 30);
      for (std::size_t k = 0; k < n; ++k) {
        text += kTokens[rng.uniform(0, kTokens.size() - 1)];
        text += ' ';
      }
    }
    (void)spec::parse_spec(text);
  }
}

TEST_P(FuzzSeeds, PipelineDeserializerNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5151);
  // Mutations of a valid serialization.
  const std::string valid =
      "camus-pipeline v1\ninitial_state 0\n"
      "table t subject=f0 kind=range width=8 symbol=0\n"
      "entry 0 range 1 9 1\nleaf\nentry 1 ports=1 updates=- mcast=-\nend\n";
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const std::size_t flips = 1 + rng.uniform(0, 5);
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t pos = rng.uniform(0, text.size() - 1);
      text[pos] = static_cast<char>(rng.uniform(32, 126));
    }
    (void)table::deserialize_pipeline(text);
  }
  for (int i = 0; i < 500; ++i)
    (void)table::deserialize_pipeline(random_text(rng, 300));
}

// Builds a structurally valid MoldUDP64 market-data frame to mutate.
std::vector<std::uint8_t> valid_market_frame(util::Rng& rng) {
  std::vector<proto::ItchAddOrder> msgs;
  const std::size_t n = rng.uniform(0, 5);  // 0 = heartbeat-style frame
  for (std::size_t i = 0; i < n; ++i) {
    proto::ItchAddOrder m;
    m.order_ref = i + 1;
    m.stock = "STK" + std::to_string(rng.uniform(0, 99));
    m.price = static_cast<std::uint32_t>(rng.uniform(1, 1000000));
    m.shares = static_cast<std::uint32_t>(rng.uniform(1, 1000));
    msgs.push_back(std::move(m));
  }
  proto::MoldUdp64Header mold;
  mold.session = "CAMUS00001";
  mold.sequence = rng.uniform(1, 1 << 20);
  proto::EthernetHeader eth;
  return proto::encode_market_data_packet(eth, 0x0a000001, 0xe8010101, mold,
                                          msgs);
}

// The zero-copy scanner, the full decoder, and the diagnostic decoder must
// agree on accept/reject for EVERY input — truncated, bit-flipped, or
// garbage — and on accepted frames they must see the same messages. Runs
// under ASAN/UBSAN in CI, so any out-of-bounds read in the scan fast path
// is caught here.
TEST_P(FuzzSeeds, MoldUdpDecodersAgreeOnMutatedFrames) {
  util::Rng rng(GetParam() ^ 0x11d);
  proto::MarketDataView view;
  std::vector<std::uint32_t> offsets;

  auto check_agreement = [&](std::span<const std::uint8_t> frame) {
    view = proto::MarketDataView{};
    offsets.clear();
    const bool scanned = proto::scan_market_data_packet(frame, view, offsets);
    const auto decoded = proto::decode_market_data_packet(frame);
    const auto checked = proto::decode_market_data_packet_checked(frame);

    ASSERT_EQ(scanned, decoded.has_value())
        << "scan/decode disagree on a " << frame.size() << "-byte frame";
    ASSERT_EQ(decoded.has_value(), checked.ok())
        << "decode/decode_checked disagree; diagnostic: "
        << (checked.ok() ? "ok" : checked.error().to_string());
    if (!decoded) {
      // A reject must carry a stable diagnostic code.
      EXPECT_FALSE(checked.error().code.empty());
      return;
    }
    ASSERT_EQ(offsets.size(), decoded->itch.add_orders.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      const auto m = proto::decode_add_order_at(frame, offsets[i]);
      EXPECT_EQ(m.stock, decoded->itch.add_orders[i].stock);
      EXPECT_EQ(m.price, decoded->itch.add_orders[i].price);
      EXPECT_EQ(m.order_ref, decoded->itch.add_orders[i].order_ref);
    }
  };

  for (int round = 0; round < 400; ++round) {
    const auto frame = valid_market_frame(rng);

    // Every truncation length, including 0 and the full frame.
    for (std::size_t len = 0; len <= frame.size();
         len += 1 + rng.uniform(0, 6)) {
      check_agreement(std::span(frame.data(), len));
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Bit-flipped copies: 1..8 random flips anywhere in the frame.
    auto mutated = frame;
    const int flips = 1 + static_cast<int>(rng.uniform(0, 7));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.uniform(0, mutated.size() - 1);
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    }
    check_agreement(mutated);
    if (::testing::Test::HasFatalFailure()) return;

    // Truncated AND flipped.
    mutated.resize(rng.uniform(0, mutated.size()));
    if (!mutated.empty()) {
      mutated[rng.uniform(0, mutated.size() - 1)] ^= 0xFF;
      check_agreement(mutated);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(FuzzSeeds, PcapParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> data(rng.uniform(0, 200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    (void)proto::parse_pcap(data);
    (void)proto::decode_market_data_packet(data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1001, 2002, 3003));

TEST(FuzzRoundTrip, ValidRulesSurviveReprinting) {
  // Parse -> print -> parse -> print must be a fixed point.
  util::Rng rng(777);
  static const std::vector<std::string> kSubjects = {"stock", "price",
                                                     "shares"};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const std::size_t n = 1 + rng.uniform(0, 2);
    for (std::size_t k = 0; k < n; ++k) {
      if (k) text += rng.chance(0.5) ? " and " : " or ";
      if (rng.chance(0.25)) text += "!";
      text += kSubjects[rng.uniform(0, 2)];
      static const char* kOps[] = {"==", "!=", "<", ">", "<=", ">="};
      text += " ";
      text += kOps[rng.uniform(0, 5)];
      text += " " + std::to_string(rng.uniform(0, 999));
    }
    text += " : fwd(" + std::to_string(1 + rng.uniform(0, 9)) + ")";
    auto r1 = lang::parse_rule(text);
    ASSERT_TRUE(r1.ok()) << text;
    const std::string p1 = r1.value().to_string();
    auto r2 = lang::parse_rule(p1);
    ASSERT_TRUE(r2.ok()) << p1;
    EXPECT_EQ(r2.value().to_string(), p1);
  }
}

}  // namespace
