#include <gtest/gtest.h>

#include "util/interval.hpp"
#include "util/rng.hpp"

namespace {

using camus::util::IntervalSet;
using camus::util::Rng;

TEST(IntervalSet, EmptyAndAll) {
  EXPECT_TRUE(IntervalSet::empty().is_empty());
  EXPECT_TRUE(IntervalSet::all().is_all());
  EXPECT_TRUE(IntervalSet::all(255).is_all(255));
  EXPECT_FALSE(IntervalSet::all(255).is_all(256));
  EXPECT_FALSE(IntervalSet::empty().is_all());
  EXPECT_EQ(IntervalSet::range(5, 3), IntervalSet::empty());
}

TEST(IntervalSet, PointAndContains) {
  const auto p = IntervalSet::point(42);
  EXPECT_TRUE(p.contains(42));
  EXPECT_FALSE(p.contains(41));
  EXPECT_FALSE(p.contains(43));
  EXPECT_TRUE(p.is_single_point());
  EXPECT_EQ(p.cardinality(), 1u);
}

TEST(IntervalSet, LessGreaterBoundaries) {
  EXPECT_TRUE(IntervalSet::less_than(0).is_empty());
  EXPECT_EQ(IntervalSet::less_than(1), IntervalSet::point(0));
  EXPECT_TRUE(IntervalSet::greater_than(255, 255).is_empty());
  EXPECT_EQ(IntervalSet::greater_than(254, 255), IntervalSet::point(255));
  EXPECT_TRUE(IntervalSet::greater_than(300, 255).is_empty());
}

TEST(IntervalSet, UniteMergesAdjacent) {
  auto s = IntervalSet::range(0, 4).unite(IntervalSet::range(5, 9));
  EXPECT_EQ(s, IntervalSet::range(0, 9));
  EXPECT_EQ(s.intervals().size(), 1u);

  auto gap = IntervalSet::range(0, 4).unite(IntervalSet::range(6, 9));
  EXPECT_EQ(gap.intervals().size(), 2u);
}

TEST(IntervalSet, IntersectAndSubtract) {
  const auto a = IntervalSet::range(10, 20);
  const auto b = IntervalSet::range(15, 30);
  EXPECT_EQ(a.intersect(b), IntervalSet::range(15, 20));
  EXPECT_EQ(a.subtract(b), IntervalSet::range(10, 14));
  EXPECT_EQ(b.subtract(a), IntervalSet::range(21, 30));
  EXPECT_TRUE(a.intersect(IntervalSet::empty()).is_empty());
}

TEST(IntervalSet, ComplementWithinUniverse) {
  const auto s = IntervalSet::range(10, 20).unite(IntervalSet::point(40));
  const auto c = s.complement(255);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(9));
  EXPECT_FALSE(c.contains(10));
  EXPECT_FALSE(c.contains(20));
  EXPECT_TRUE(c.contains(21));
  EXPECT_FALSE(c.contains(40));
  EXPECT_TRUE(c.contains(255));
  EXPECT_EQ(c.complement(255), s);
}

TEST(IntervalSet, ComplementEdges) {
  EXPECT_TRUE(IntervalSet::all(99).complement(99).is_empty());
  EXPECT_TRUE(IntervalSet::empty().complement(99).is_all(99));
  // Set touching both universe ends.
  const auto s = IntervalSet::point(0).unite(IntervalSet::point(99));
  EXPECT_EQ(s.complement(99), IntervalSet::range(1, 98));
}

TEST(IntervalSet, ComplementAtUint64Max) {
  const auto s = IntervalSet::point(IntervalSet::kMax);
  const auto c = s.complement();
  EXPECT_EQ(c, IntervalSet::range(0, IntervalSet::kMax - 1));
  EXPECT_TRUE(IntervalSet::all().complement().is_empty());
}

TEST(IntervalSet, CardinalitySaturates) {
  EXPECT_EQ(IntervalSet::all().cardinality(), IntervalSet::kMax);
  EXPECT_EQ(IntervalSet::range(0, 9).cardinality(), 10u);
}

TEST(IntervalSet, SubsetChecks) {
  EXPECT_TRUE(IntervalSet::range(5, 8).is_subset_of(IntervalSet::range(0, 10)));
  EXPECT_FALSE(
      IntervalSet::range(5, 12).is_subset_of(IntervalSet::range(0, 10)));
  EXPECT_TRUE(IntervalSet::empty().is_subset_of(IntervalSet::empty()));
}

TEST(IntervalSet, ToString) {
  EXPECT_EQ(IntervalSet::empty().to_string(), "{}");
  EXPECT_EQ(IntervalSet::point(5).to_string(), "{5}");
  EXPECT_EQ(IntervalSet::range(1, 3).to_string(), "{[1,3]}");
}

// Property test: set algebra vs a bitset model over a small domain.
class IntervalSetModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetModel, MatchesBitsetSemantics) {
  Rng rng(GetParam());
  constexpr std::uint64_t kUmax = 63;

  auto random_set = [&](std::vector<bool>& model) {
    IntervalSet s;
    model.assign(kUmax + 1, false);
    const int n = static_cast<int>(rng.uniform(0, 4));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t lo = rng.uniform(0, kUmax);
      const std::uint64_t hi = rng.uniform(lo, kUmax);
      s = s.unite(IntervalSet::range(lo, hi));
      for (std::uint64_t v = lo; v <= hi; ++v) model[v] = true;
    }
    return s;
  };

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> ma, mb;
    const IntervalSet a = random_set(ma);
    const IntervalSet b = random_set(mb);

    const IntervalSet inter = a.intersect(b);
    const IntervalSet uni = a.unite(b);
    const IntervalSet sub = a.subtract(b);
    const IntervalSet comp = a.complement(kUmax);

    std::uint64_t card = 0;
    for (std::uint64_t v = 0; v <= kUmax; ++v) {
      EXPECT_EQ(a.contains(v), ma[v]) << v;
      EXPECT_EQ(inter.contains(v), ma[v] && mb[v]) << v;
      EXPECT_EQ(uni.contains(v), ma[v] || mb[v]) << v;
      EXPECT_EQ(sub.contains(v), ma[v] && !mb[v]) << v;
      EXPECT_EQ(comp.contains(v), !ma[v]) << v;
      card += ma[v] ? 1 : 0;
    }
    EXPECT_EQ(a.cardinality(), card);

    // Normalization invariants: sorted, disjoint, non-adjacent.
    const auto& ivs = a.intervals();
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      EXPECT_LE(ivs[i].lo, ivs[i].hi);
      if (i > 0) EXPECT_GT(ivs[i].lo, ivs[i - 1].hi + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetModel,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
