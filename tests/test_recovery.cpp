// Crash-safe control plane: DurableController recovery fidelity, epoch
// fencing, warm-boot reconciliation, the exhaustive crash-point sweep
// (every journal record boundary of a 200-commit churn run), and the
// nemesis harness's determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fault/nemesis.hpp"
#include "fault/plan.hpp"
#include "pubsub/durable.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "table/delta.hpp"
#include "util/intern.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace {

using camus::pubsub::DurableController;
using camus::pubsub::TwoPhaseInstaller;
using camus::util::Journal;
using camus::util::MemStorage;
using camus::util::RecordType;

const std::vector<std::string>& symbols() {
  static const std::vector<std::string> syms = {"GOOGL", "MSFT", "AAPL",
                                                "AMZN",  "NVDA", "IBM"};
  return syms;
}

std::string gen_rule(camus::util::Rng& rng) {
  switch (rng.uniform(0, 2)) {
    case 0:
      return "stock == " + rng.pick(symbols());
    case 1:
      return "stock == " + rng.pick(symbols()) + " and price > " +
             std::to_string(rng.uniform(1, 400) * 100);
    default:
      return "shares > " + std::to_string(rng.uniform(1, 900));
  }
}

camus::lang::Env probe_env(camus::util::Rng& rng) {
  camus::lang::Env env;
  env.fields = {rng.uniform(0, 2500),
                camus::util::encode_symbol(rng.pick(symbols())),
                rng.uniform(0, 60000)};
  env.states = {0, 0};
  return env;
}

struct Plant {
  camus::spec::Schema schema = camus::spec::make_itch_schema();
  camus::switchsim::Switch sw{camus::spec::make_itch_schema(),
                              camus::table::Pipeline{}};
  TwoPhaseInstaller installer{sw};
};

// --- DurableController basics --------------------------------------------

TEST(DurableController, MutationsBeforeOpenAreE142) {
  MemStorage st;
  DurableController ctl(camus::spec::make_itch_schema(), st);
  EXPECT_EQ(ctl.subscribe(1, "stock == IBM").error().code, "E142");
  EXPECT_EQ(ctl.unsubscribe(1).error().code, "E142");
  EXPECT_EQ(ctl.commit().error().code, "E142");
  EXPECT_EQ(ctl.checkpoint().error().code, "E142");
}

TEST(DurableController, FreshOpenAdoptsEpochOne) {
  MemStorage st;
  DurableController ctl(camus::spec::make_itch_schema(), st);
  auto info = ctl.open();
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().recovered);
  EXPECT_EQ(ctl.epoch(), 1u);
  EXPECT_EQ(ctl.subscription_count(), 0u);
}

TEST(DurableController, SubscribeCommitInstallLands) {
  MemStorage st;
  Plant plant;
  DurableController ctl(plant.schema, st);
  ASSERT_TRUE(ctl.open().ok());
  ASSERT_TRUE(ctl.subscribe(3, "stock == IBM", 1).value());
  ASSERT_TRUE(ctl.subscribe(4, "price > 5000 : fwd(4)").value());
  auto delta = ctl.commit();
  ASSERT_TRUE(delta.ok());

  auto report = ctl.install(plant.installer, delta.value());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().committed) << report.value().error;
  EXPECT_EQ(report.value().epoch, ctl.epoch());
  EXPECT_EQ(plant.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

TEST(DurableController, UnsubscribeRemovesOnlySinglePortRules) {
  MemStorage st;
  DurableController ctl(camus::spec::make_itch_schema(), st);
  ASSERT_TRUE(ctl.open().ok());
  ASSERT_TRUE(ctl.subscribe(3, "stock == IBM").value());
  ASSERT_TRUE(ctl.subscribe(3, "price > 100").value());
  ASSERT_TRUE(ctl.subscribe(5, "stock == MSFT").value());
  EXPECT_EQ(ctl.unsubscribe(3).value(), 2u);
  EXPECT_EQ(ctl.subscription_count(), 1u);
  EXPECT_EQ(ctl.unsubscribe(3).value(), 0u);
}

// --- Exact-replay recovery -----------------------------------------------

TEST(Recovery, ExactReplayIsBitIdentical) {
  MemStorage st;
  const auto schema = camus::spec::make_itch_schema();
  camus::util::Rng rng(42);

  std::uint64_t pre_crash_digest = 0;
  {
    DurableController ctl(schema, st);
    ASSERT_TRUE(ctl.open().ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          ctl.subscribe(static_cast<std::uint16_t>(1 + i % 7), gen_rule(rng))
              .ok());
      if (i % 3 == 2) ASSERT_TRUE(ctl.commit().ok());
    }
    ASSERT_TRUE(ctl.commit().ok());
    pre_crash_digest =
        camus::table::pipeline_digest(*ctl.intended().value());
  }  // controller dies; storage survives

  st.crash();
  DurableController recovered(schema, st);
  auto info = recovered.open();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().recovered);
  EXPECT_FALSE(info.value().from_snapshot);
  EXPECT_EQ(info.value().digest_mismatches, 0u);
  EXPECT_EQ(recovered.subscription_count(), 30u);
  // Deterministic compiler + full op history => bit-identical pipeline.
  EXPECT_EQ(camus::table::pipeline_digest(*recovered.intended().value()),
            pre_crash_digest);
}

TEST(Recovery, EpochIncreasesAcrossEveryRestart) {
  MemStorage st;
  const auto schema = camus::spec::make_itch_schema();
  std::uint64_t last = 0;
  for (int run = 0; run < 4; ++run) {
    DurableController ctl(schema, st);
    ASSERT_TRUE(ctl.open().ok());
    EXPECT_GT(ctl.epoch(), last);
    last = ctl.epoch();
    st.crash();
  }
}

// --- Epoch fencing --------------------------------------------------------

TEST(Fencing, StaleEpochWritesBounce) {
  Plant plant;
  ASSERT_TRUE(plant.sw.fence(5).ok());

  // A deposed controller (epoch 3) tries to reprogram and patch.
  const std::uint64_t version = plant.sw.program_version();
  auto reprogram = plant.sw.reprogram_fenced(3, camus::table::Pipeline{});
  ASSERT_FALSE(reprogram.ok());
  EXPECT_EQ(reprogram.error().code, "E140");
  auto patch = plant.sw.apply_delta_fenced(3, {});
  ASSERT_FALSE(patch.ok());
  EXPECT_EQ(patch.error().code, "E140");
  EXPECT_EQ(plant.sw.program_version(), version);  // nothing landed
  EXPECT_EQ(plant.sw.stale_epoch_rejects(), 2u);

  // The rightful epoch (and any later one) still writes.
  EXPECT_TRUE(plant.sw.reprogram_fenced(5, camus::table::Pipeline{}).ok());
  EXPECT_TRUE(plant.sw.reprogram_fenced(9, camus::table::Pipeline{}).ok());
  EXPECT_EQ(plant.sw.fence_epoch(), 9u);
}

TEST(Fencing, FenceRegressionIsE141) {
  Plant plant;
  ASSERT_TRUE(plant.sw.fence(7).ok());
  auto back = plant.sw.fence(6);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "E141");
  EXPECT_EQ(plant.sw.fence_epoch(), 7u);
  EXPECT_TRUE(plant.sw.fence(7).ok());  // idempotent re-fence
}

TEST(Fencing, DeposedControllerCannotClobberSuccessor) {
  MemStorage st;
  Plant plant;
  const auto schema = camus::spec::make_itch_schema();

  DurableController old_ctl(schema, st);
  ASSERT_TRUE(old_ctl.open().ok());
  ASSERT_TRUE(old_ctl.subscribe(2, "stock == IBM").ok());
  auto d = old_ctl.commit();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(old_ctl.install(plant.installer, d.value()).value().committed);
  const std::uint64_t old_epoch = old_ctl.epoch();

  // Crash; a successor recovers and fences the switch.
  st.crash();
  DurableController new_ctl(schema, st);
  ASSERT_TRUE(new_ctl.open().ok());
  ASSERT_GT(new_ctl.epoch(), old_epoch);
  ASSERT_TRUE(new_ctl.reconcile(plant.installer).ok());

  // The deposed controller's straggler write must bounce.
  const std::uint64_t digest = plant.sw.program_digest();
  auto stale =
      plant.sw.reprogram_fenced(old_epoch, camus::table::Pipeline{});
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, "E140");
  EXPECT_EQ(plant.sw.program_digest(), digest);
}

// --- Faulty-channel installs ---------------------------------------------

TEST(ChunkCampaign, DuplicationAndReorderStillLand) {
  MemStorage st;
  Plant plant;
  DurableController ctl(plant.schema, st);
  ASSERT_TRUE(ctl.open().ok());
  camus::util::Rng rng(99);
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + i % 5), gen_rule(rng))
            .ok());
  auto delta = ctl.commit();
  ASSERT_TRUE(delta.ok());

  camus::fault::FaultSpec spec;
  spec.duplicate = 0.25;
  spec.reorder = 0.25;
  spec.drop = 0.05;
  spec.corrupt = 0.10;
  const camus::fault::Plan plan(spec, 1234);
  auto report =
      ctl.install(plant.installer, delta.value(), &plan, /*chunk_bytes=*/64);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().committed) << report.value().error;
  // The campaign must actually have exercised the hardening paths.
  EXPECT_GT(report.value().chunk_dup_rejects + report.value().chunk_reordered,
            0u);
  EXPECT_GT(report.value().chunk_crc_rejects, 0u);
  EXPECT_EQ(plant.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

TEST(ChunkCampaign, TotalPartitionAbortsCleanly) {
  MemStorage st;
  Plant plant;
  DurableController ctl(plant.schema, st);
  ASSERT_TRUE(ctl.open().ok());
  ASSERT_TRUE(ctl.subscribe(2, "stock == IBM").ok());
  auto d1 = ctl.commit();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(ctl.install(plant.installer, d1.value()).value().committed);
  const std::uint64_t good = plant.sw.program_digest();

  ASSERT_TRUE(ctl.subscribe(3, "price > 100").ok());
  auto d2 = ctl.commit();
  ASSERT_TRUE(d2.ok());
  camus::fault::FaultSpec dead;
  dead.drop = 1.0;
  const camus::fault::Plan plan(dead, 1);
  auto report = ctl.install(plant.installer, d2.value(), &plan);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().committed);
  EXPECT_EQ(plant.sw.program_digest(), good);  // last-good kept

  // Healed channel: reconcile ships the missed update.
  auto rec = ctl.reconcile(plant.installer);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().repaired);
  EXPECT_EQ(plant.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

// --- Warm-boot reconciliation --------------------------------------------

TEST(Reconcile, InSyncSwitchIsUntouched) {
  MemStorage st;
  Plant plant;
  DurableController ctl(plant.schema, st);
  ASSERT_TRUE(ctl.open().ok());
  ASSERT_TRUE(ctl.subscribe(2, "stock == IBM").ok());
  auto d = ctl.commit();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(ctl.install(plant.installer, d.value()).value().committed);

  const std::uint64_t version = plant.sw.program_version();
  auto rec = ctl.reconcile(plant.installer);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().in_sync);
  EXPECT_EQ(rec.value().diverged_stages, 0u);
  EXPECT_EQ(plant.sw.program_version(), version);  // zero writes shipped
}

TEST(Reconcile, RebootedSwitchIsReimaged) {
  MemStorage st;
  const auto schema = camus::spec::make_itch_schema();
  DurableController ctl(schema, st);
  ASSERT_TRUE(ctl.open().ok());
  camus::util::Rng rng(5);
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + i), gen_rule(rng)).ok());
  auto d = ctl.commit();
  ASSERT_TRUE(d.ok());
  Plant before;
  ASSERT_TRUE(ctl.install(before.installer, d.value()).value().committed);

  // Cold-booted replacement switch: empty program.
  Plant after;
  auto rec = ctl.reconcile(after.installer);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec.value().in_sync);
  EXPECT_TRUE(rec.value().repaired);
  EXPECT_TRUE(rec.value().full_reprogram);
  EXPECT_EQ(after.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

TEST(Reconcile, RepairDeltaIsMinimal) {
  // A switch that missed ONE install gets entry ops, not a re-image, and
  // reuse accounting reflects the untouched entries.
  MemStorage st;
  Plant plant;
  // Exact-match field first (as in Incremental.SmallChangeSmallDelta): a
  // new-symbol subscription then only touches its own branch, so the
  // repair really is a sliver of the program.
  camus::compiler::CompileOptions opts;
  opts.order = camus::bdd::OrderHeuristic::kExactFirst;
  DurableController ctl(plant.schema, st, opts);
  ASSERT_TRUE(ctl.open().ok());
  // An ITCH-style base load: per-symbol price filters, where one more
  // symbol grows the automaton at the edge instead of restructuring it.
  camus::util::Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    const std::string rule = "stock == SYM" + std::to_string(i % 40) +
                             " and price > " +
                             std::to_string(rng.uniform(1, 400) * 100);
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + i % 6), rule).ok());
  }
  auto d1 = ctl.commit();
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(ctl.install(plant.installer, d1.value()).value().committed);

  // One more subscription — a brand-new symbol — commits, but the install
  // is lost to a partition.
  ASSERT_TRUE(ctl.subscribe(9, "stock == ZZZZ and price > 777").ok());
  auto d2 = ctl.commit();
  ASSERT_TRUE(d2.ok());
  camus::fault::FaultSpec dead;
  dead.drop = 1.0;
  const camus::fault::Plan plan(dead, 2);
  ASSERT_FALSE(
      ctl.install(plant.installer, d2.value(), &plan).value().committed);

  auto rec = ctl.reconcile(plant.installer);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec.value().repaired);
  EXPECT_FALSE(rec.value().full_reprogram);
  EXPECT_GT(rec.value().repair_ops, 0u);
  // The repair is a delta: most of the program was already in place.
  EXPECT_GE(rec.value().reuse_fraction(), 0.5);
  EXPECT_EQ(plant.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

// --- Half-staged installs -------------------------------------------------

TEST(Recovery, CrashMidInstallResolvesBothWorlds) {
  // A crash between kInstallBegin and kInstallCommit leaves two possible
  // switch states: the commit landed, or it didn't. Recovery + reconcile
  // must converge from EITHER without knowing which.
  const auto schema = camus::spec::make_itch_schema();
  for (const bool commit_landed : {false, true}) {
    MemStorage st;
    Plant plant;
    std::uint64_t intended_digest = 0;
    {
      DurableController ctl(schema, st);
      ASSERT_TRUE(ctl.open().ok());
      ASSERT_TRUE(ctl.subscribe(2, "stock == IBM").ok());
      auto d1 = ctl.commit();
      ASSERT_TRUE(d1.ok());
      ASSERT_TRUE(ctl.install(plant.installer, d1.value()).value().committed);

      ASSERT_TRUE(ctl.subscribe(4, "price > 3000").ok());
      auto d2 = ctl.commit();
      ASSERT_TRUE(d2.ok());
      intended_digest =
          camus::table::pipeline_digest(*ctl.intended().value());
      // Simulate the crash window by journaling the begin marker exactly
      // as install() would, then dying before the outcome marker.
      ASSERT_TRUE(ctl.journal()
                      .append(RecordType::kInstallBegin, "2 ops 0")
                      .ok());
      if (commit_landed) {
        plant.installer.set_epoch(ctl.epoch());
        ASSERT_TRUE(
            plant.installer.apply_delta(d2.value().ops).committed);
      }
    }
    st.crash();

    DurableController recovered(schema, st);
    auto info = recovered.open();
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info.value().install_in_flight);
    auto rec = recovered.reconcile(plant.installer);
    ASSERT_TRUE(rec.ok());
    EXPECT_TRUE(rec.value().in_sync || rec.value().repaired)
        << "commit_landed=" << commit_landed;
    // Either world converges to the same intended program.
    EXPECT_EQ(plant.sw.program_digest(), intended_digest)
        << "commit_landed=" << commit_landed;
    // The in-flight install was resolved in the journal: a second restart
    // must not see it again.
    st.crash();
    DurableController again(schema, st);
    auto info2 = again.open();
    ASSERT_TRUE(info2.ok());
    EXPECT_FALSE(info2.value().install_in_flight);
  }
}

// --- Snapshot (checkpoint) recovery --------------------------------------

TEST(Recovery, CheckpointRecoveryIsSemanticallyEquivalent) {
  MemStorage st;
  const auto schema = camus::spec::make_itch_schema();
  camus::util::Rng rng(17);
  camus::table::Pipeline pre_crash;
  std::size_t live = 0;
  {
    DurableController ctl(schema, st);
    ASSERT_TRUE(ctl.open().ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          ctl.subscribe(static_cast<std::uint16_t>(1 + i % 7), gen_rule(rng))
              .ok());
      if (i % 4 == 3) ASSERT_TRUE(ctl.commit().ok());
    }
    ASSERT_TRUE(ctl.checkpoint().value());
    // More churn after the checkpoint: replay = snapshot + suffix.
    ASSERT_TRUE(ctl.unsubscribe(3).ok());
    ASSERT_TRUE(ctl.subscribe(8, gen_rule(rng)).ok());
    ASSERT_TRUE(ctl.commit().ok());
    pre_crash = *ctl.intended().value();
    live = ctl.subscription_count();
  }
  st.crash();

  DurableController recovered(schema, st);
  auto info = recovered.open();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().from_snapshot);
  EXPECT_EQ(recovered.subscription_count(), live);
  ASSERT_TRUE(recovered.commit().ok());

  // Fresh state numbering: digests may differ, classification may not.
  const camus::table::Pipeline& post = *recovered.intended().value();
  camus::util::Rng probe_rng(400);
  for (int i = 0; i < 200; ++i) {
    const camus::lang::Env env = probe_env(probe_rng);
    EXPECT_EQ(pre_crash.evaluate_actions(env).ports,
              post.evaluate_actions(env).ports)
        << "probe " << i;
  }
}

// --- The crash-point sweep -----------------------------------------------

TEST(CrashSweep, EveryRecordBoundaryOfA200CommitRunConverges) {
  // Run a 200-commit churn crash-free, recording the intended digest at
  // every commit. Then kill the controller at EVERY journal record
  // boundary and check the recovered state is bit-identical to the
  // crash-free oracle at the same commit count.
  const auto schema = camus::spec::make_itch_schema();
  MemStorage st;
  camus::util::Rng rng(2026);

  std::vector<std::uint64_t> oracle_digest{0};  // index = commit_seq
  {
    DurableController ctl(schema, st);
    ASSERT_TRUE(ctl.open().ok());
    std::vector<std::uint16_t> live_ports;
    for (int c = 0; c < 200; ++c) {
      // One churn op per commit keeps the sweep's replay cost linear.
      if (!live_ports.empty() && rng.chance(0.4)) {
        const auto port = live_ports[rng.uniform(0, live_ports.size() - 1)];
        ASSERT_TRUE(ctl.unsubscribe(port).ok());
        std::erase(live_ports, port);
      } else {
        const auto port = static_cast<std::uint16_t>(1 + rng.uniform(0, 30));
        ASSERT_TRUE(ctl.subscribe(port, gen_rule(rng)).ok());
        if (std::find(live_ports.begin(), live_ports.end(), port) ==
            live_ports.end())
          live_ports.push_back(port);
      }
      ASSERT_TRUE(ctl.commit().ok());
      oracle_digest.push_back(
          camus::table::pipeline_digest(*ctl.intended().value()));
    }
  }

  const std::string full_log = st.load().value();
  auto replay = Journal::replay_bytes(full_log);
  ASSERT_TRUE(replay.ok());
  const auto& ends = replay.value().record_ends;
  ASSERT_GT(ends.size(), 400u);  // epoch + 200×(op+commit)

  std::size_t commits_seen = 0;
  for (std::size_t b = 0; b < ends.size(); ++b) {
    if (replay.value().records[b].type == RecordType::kCommit)
      ++commits_seen;
    MemStorage crashed;
    ASSERT_TRUE(crashed.replace(full_log.substr(0, ends[b])).ok());
    DurableController ctl(schema, crashed);
    auto info = ctl.open();
    ASSERT_TRUE(info.ok()) << "boundary " << b << ": "
                           << info.error().to_string();
    ASSERT_EQ(info.value().commits_replayed, commits_seen)
        << "boundary " << b;
    ASSERT_EQ(info.value().digest_mismatches, 0u) << "boundary " << b;
    if (commits_seen > 0) {
      ASSERT_EQ(camus::table::pipeline_digest(*ctl.intended().value()),
                oracle_digest[commits_seen])
          << "boundary " << b;
    }
  }
}

TEST(CrashSweep, EveryChunkBoundaryOfAnInstallConverges) {
  // Crash mid-install after 0..N chunks reached the switch-side assembler:
  // staging is all-or-nothing, so every cut leaves the switch on
  // last-good, and recovery + reconcile converges to intended.
  const auto schema = camus::spec::make_itch_schema();
  camus::util::Rng rng(31);

  // Build the journal prefix once: one committed+installed baseline, then
  // a second commit whose install begins but never resolves.
  MemStorage st;
  std::uint64_t intended_digest = 0;
  std::size_t n_chunks = 0;
  {
    Plant plant;
    DurableController ctl(schema, st);
    ASSERT_TRUE(ctl.open().ok());
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(
          ctl.subscribe(static_cast<std::uint16_t>(1 + i), gen_rule(rng))
              .ok());
    auto d1 = ctl.commit();
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(ctl.install(plant.installer, d1.value(), nullptr,
                            /*chunk_bytes=*/64)
                    .value()
                    .committed);
    ASSERT_TRUE(ctl.subscribe(7, "stock == AMZN and shares < 500").ok());
    auto d2 = ctl.commit();
    ASSERT_TRUE(d2.ok());
    intended_digest =
        camus::table::pipeline_digest(*ctl.intended().value());
    const std::string image = camus::table::serialize_ops(d2.value().ops);
    n_chunks = (image.size() + 63) / 64;
    ASSERT_TRUE(ctl.journal().append(RecordType::kInstallBegin, "2 ops 0").ok());
  }
  const std::string log = st.load().value();
  ASSERT_GT(n_chunks, 1u);

  // Staged chunks live only in controller memory, so every chunk-boundary
  // crash leaves the switch on last-good; what varies across cuts is the
  // journal's torn tail — model the crash landing partway through the
  // write of the outcome marker, torn at a different byte per cut.
  const std::string outcome = Journal::frame(RecordType::kInstallCommit, "2");
  for (std::size_t cut = 0; cut <= n_chunks; ++cut) {
    const std::size_t torn = (cut * (outcome.size() - 1)) / n_chunks;
    MemStorage crashed;
    ASSERT_TRUE(crashed.replace(log + outcome.substr(0, torn)).ok());
    Plant plant;
    DurableController ctl(schema, crashed);
    auto info = ctl.open();
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info.value().install_in_flight);
    // Reboot-fresh switch also diverges; reconcile must still converge.
    auto rec = ctl.reconcile(plant.installer);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(plant.sw.program_digest(), intended_digest) << "cut " << cut;
  }
}

// --- Nemesis harness ------------------------------------------------------

TEST(Nemesis, CampaignHoldsAllInvariants) {
  camus::fault::NemesisOptions opts;
  opts.seed = 20260808;
  opts.scenarios = 25;
  const auto stats = camus::fault::run_nemesis(opts);
  EXPECT_EQ(stats.violations, 0u) << [&] {
    std::string all;
    for (const auto& d : stats.violation_details) all += d + "\n";
    return all;
  }();
  // The campaign must actually exercise the machinery it certifies.
  EXPECT_GT(stats.crashes, 0u);
  EXPECT_GT(stats.switch_reboots, 0u);
  EXPECT_GT(stats.stale_writes, 0u);
  EXPECT_EQ(stats.stale_rejected, stats.stale_writes);
  EXPECT_GT(stats.reconciles, 0u);
  EXPECT_GT(stats.probes, 0u);
}

TEST(Nemesis, CampaignIsDeterministic) {
  camus::fault::NemesisOptions opts;
  opts.seed = 9;
  opts.scenarios = 8;
  const auto a = camus::fault::run_nemesis(opts);
  const auto b = camus::fault::run_nemesis(opts);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.violations, 0u);
}

// --- Reconciliation vs live data plane (TSAN) ----------------------------

TEST(RecoveryConcurrency, ReconcileRacesBatchProcessing) {
  // A single data-plane thread batches packets continuously while the
  // control plane reconciles and patches repeatedly. TSAN-clean by
  // construction: reconcile reads pinned program snapshots, never the
  // data-plane's thread-confined cache.
  MemStorage st;
  const auto schema = camus::spec::make_itch_schema();
  Plant plant;
  DurableController ctl(schema, st);
  ASSERT_TRUE(ctl.open().ok());
  camus::util::Rng rng(77);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + i % 4), gen_rule(rng))
            .ok());
  auto d = ctl.commit();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(ctl.install(plant.installer, d.value()).value().committed);

  std::atomic<bool> stop{false};
  std::thread data_plane([&] {
    camus::util::Rng drng(123);
    std::uint64_t now = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const camus::lang::Env env = probe_env(drng);
      (void)plant.sw.classify(env.fields, ++now);
    }
  });

  for (int round = 0; round < 40; ++round) {
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + round % 5), gen_rule(rng))
            .ok());
    auto delta = ctl.commit();
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(ctl.install(plant.installer, delta.value()).ok());
    auto rec = ctl.reconcile(plant.installer);
    ASSERT_TRUE(rec.ok());
  }
  stop.store(true, std::memory_order_release);
  data_plane.join();

  EXPECT_EQ(plant.sw.program_digest(),
            camus::table::pipeline_digest(*ctl.intended().value()));
}

// --- Automatic checkpoint policy -----------------------------------------

TEST(CheckpointPolicy, DisabledByDefault) {
  MemStorage st;
  DurableController ctl(camus::spec::make_itch_schema(), st);
  ASSERT_TRUE(ctl.open().ok());
  camus::util::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ctl.subscribe(1, gen_rule(rng)).ok());
    ASSERT_TRUE(ctl.commit().ok());
  }
  EXPECT_EQ(ctl.auto_checkpoints(), 0u);
  // The journal still holds the full history: exact replay, no snapshot.
  DurableController successor(camus::spec::make_itch_schema(), st);
  auto info = successor.open();
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().from_snapshot);
}

TEST(CheckpointPolicy, AutoCompactsWhenEstimatedReplayExceedsBound) {
  MemStorage st;
  DurableController ctl(camus::spec::make_itch_schema(), st);
  ASSERT_TRUE(ctl.open().ok());
  // Deterministic trigger regardless of machine speed: charge each record
  // a full second, so the estimate crosses the 10s bound as soon as
  // min_records accumulate — about every 20 records (~10 commits).
  camus::pubsub::CheckpointPolicy policy;
  policy.max_replay_seconds = 10.0;
  policy.min_records = 20;
  policy.per_record_seconds = 1.0;
  ctl.set_checkpoint_policy(policy);

  camus::util::Rng rng(6);
  const int n_commits = 200;
  for (int i = 0; i < n_commits; ++i) {
    ASSERT_TRUE(
        ctl.subscribe(static_cast<std::uint16_t>(1 + i % 6), gen_rule(rng))
            .ok());
    if (i > 0 && i % 9 == 0)
      ctl.unsubscribe(static_cast<std::uint16_t>(1 + i % 6));
    ASSERT_TRUE(ctl.commit().ok());
  }
  // ~2 records per commit, compaction every ~20 records: many checkpoints,
  // and the journal never grows past one policy window.
  EXPECT_GE(ctl.auto_checkpoints(), 10u);
  EXPECT_LE(ctl.estimated_replay_seconds(),
            policy.max_replay_seconds + policy.min_records * 2.0);

  // A successor recovers through the checkpoint path: O(live state)
  // replay, not O(200-commit history).
  DurableController successor(camus::spec::make_itch_schema(), st);
  auto info = successor.open();
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  EXPECT_TRUE(info.value().from_snapshot);
  EXPECT_EQ(successor.subscription_count(), ctl.subscription_count());
  EXPECT_LT(info.value().records_replayed,
            static_cast<std::size_t>(n_commits));
  EXPECT_EQ(successor.commit_seq(), ctl.commit_seq());
}

}  // namespace
