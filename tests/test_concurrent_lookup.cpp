// Concurrent read-only lookups (run under ThreadSanitizer in CI): the
// controller finalizes a pipeline eagerly at install time, so
// Pipeline::evaluate and CompiledPipeline::traverse are const and safe to
// call from many threads at once. Before the eager finalize, the first
// evaluate would lazily build table indexes and race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "compiler/incremental.hpp"
#include "fault/plan.hpp"
#include "pubsub/controller.hpp"
#include "pubsub/install.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/extract.hpp"
#include "table/compiled.hpp"
#include "workload/churn.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 4;

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

TEST(ConcurrentLookup, EvaluateAndTraverseAfterControllerCompile) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 17;
  sp.n_subscriptions = 300;
  sp.n_symbols = 100;
  sp.n_hosts = 16;
  auto subs = workload::generate_itch_subscriptions(schema, sp);

  pubsub::Controller ctl(schema);
  for (const auto& r : subs.rules) ctl.subscribe(r);
  auto compiled = ctl.compile();
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  // Deliberately no finalize() here: the controller must have finalized
  // the installed pipeline, or the first concurrent evaluate below races
  // on the lazy index build.
  const table::Pipeline& pipe = ctl.compiled().value()->pipeline;
  const table::CompiledPipeline cp(pipe);
  ASSERT_TRUE(cp.valid());

  workload::FeedParams fp;
  fp.seed = 23;
  fp.n_messages = 2000;
  fp.symbols = subs.symbols;
  auto feed = workload::generate_feed(fp);

  switchsim::ItchFieldExtractor ex(schema);
  std::vector<std::vector<std::uint64_t>> inputs;
  inputs.reserve(feed.messages.size());
  for (const auto& fm : feed.messages) inputs.push_back(ex.extract(fm.msg));
  const std::vector<std::uint64_t> states(schema.state_vars().size(), 0);

  // Single-threaded reference digest over (evaluate, traverse) outcomes.
  std::uint64_t want = 0xcbf29ce484222325ULL;
  {
    lang::Env env;
    env.states = states;
    for (const auto& fields : inputs) {
      env.fields = fields;
      const table::LeafEntry* leaf = pipe.evaluate(env);
      want = fnv_step(want, leaf ? leaf->state : ~0ULL);
      want = fnv_step(want, cp.traverse(fields, states));
    }
  }

  std::vector<std::uint64_t> got(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t h = 0;
      lang::Env env;
      env.states = states;
      for (int round = 0; round < kRoundsPerThread; ++round) {
        h = 0xcbf29ce484222325ULL;
        for (const auto& fields : inputs) {
          env.fields = fields;
          const table::LeafEntry* leaf = pipe.evaluate(env);
          h = fnv_step(h, leaf ? leaf->state : ~0ULL);
          h = fnv_step(h, cp.traverse(fields, states));
        }
      }
      got[t] = h;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(got[t], want) << "thread " << t;
}

// The memo decomposition is equally const: concurrent prefix_key /
// run_prefix / finish calls over one shared CompiledPipeline.
TEST(ConcurrentLookup, PrefixDecompositionIsConst) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 29;
  sp.n_subscriptions = 200;
  sp.n_symbols = 64;
  sp.n_hosts = 8;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  compiler::CompileOptions co;
  co.order = bdd::OrderHeuristic::kExactFirst;
  auto pipeline = compiler::compile_rules(schema, subs.rules, co).take().pipeline;
  pipeline.finalize();
  const table::CompiledPipeline cp(pipeline);
  ASSERT_TRUE(cp.valid());
  ASSERT_GT(cp.prefix_stages(), 0u);

  workload::FeedParams fp;
  fp.seed = 31;
  fp.n_messages = 1000;
  fp.symbols = subs.symbols;
  auto feed = workload::generate_feed(fp);
  switchsim::ItchFieldExtractor ex(schema);
  std::vector<std::vector<std::uint64_t>> inputs;
  for (const auto& fm : feed.messages) inputs.push_back(ex.extract(fm.msg));
  const std::vector<std::uint64_t> states(schema.state_vars().size(), 0);

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& fields : inputs) {
        const std::uint32_t mid = cp.run_prefix(fields, states);
        if (cp.finish(mid, fields, states) != cp.traverse(fields, states))
          ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
}

// Two-phase install under concurrent readers (TSAN job): while a writer
// repeatedly installs a new pipeline over a faulty control channel and
// rolls back, hot-path readers evaluating through installer.active() must
// only ever observe one of the two COMPLETE pipelines — never a
// half-committed image, never a torn pointer, even mid-rollback.
TEST(ConcurrentLookup, TwoPhaseInstallNeverExposesPartialPipeline) {
  auto schema = spec::make_itch_schema();

  auto compile_set = [&](std::uint64_t seed, std::size_t n) {
    workload::ItchSubsParams sp;
    sp.seed = seed;
    sp.n_subscriptions = n;
    sp.n_symbols = 40;
    sp.n_hosts = 8;
    auto subs = workload::generate_itch_subscriptions(schema, sp);
    return compiler::compile_rules(schema, subs.rules).take().pipeline;
  };
  auto p1 = compile_set(41, 80);
  auto p2 = compile_set(43, 120);

  switchsim::Switch sw(schema, p1);
  pubsub::TwoPhaseInstaller installer(sw);

  // Reference evaluation digests of the only two legal snapshots.
  workload::FeedParams fp;
  fp.seed = 47;
  fp.n_messages = 400;
  auto feed = workload::generate_feed(fp);
  switchsim::ItchFieldExtractor ex(schema);
  std::vector<std::vector<std::uint64_t>> inputs;
  for (const auto& fm : feed.messages) inputs.push_back(ex.extract(fm.msg));
  const std::vector<std::uint64_t> states(schema.state_vars().size(), 0);

  auto digest_of = [&](const table::Pipeline& p) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    lang::Env env;
    env.states = states;
    for (const auto& fields : inputs) {
      env.fields = fields;
      const table::LeafEntry* leaf = p.evaluate(env);
      h = fnv_step(h, leaf ? leaf->state : ~0ULL);
    }
    return h;
  };
  p1.finalize();
  p2.finalize();
  const std::uint64_t want1 = digest_of(p1);
  const std::uint64_t want2 = digest_of(p2);

  std::atomic<bool> stop{false};
  std::atomic<int> bad_snapshots{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = installer.active();
        if (!snap) continue;
        const std::uint64_t h = digest_of(*snap);
        if (h != want1 && h != want2)
          bad_snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: clean installs, faulted installs (some abort and implicitly
  // keep last-good), and explicit rollbacks, interleaved.
  fault::FaultSpec spec;
  spec.drop = 0.3;
  spec.corrupt = 0.2;
  for (int round = 0; round < 12; ++round) {
    const fault::Plan plan(spec, 1000 + round);
    (void)installer.install(p2, round % 3 ? &plan : nullptr, 256, 2, 2);
    if (round % 2) (void)installer.rollback();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(bad_snapshots.load(), 0);
  // The final committed snapshot still evaluates to a legal digest.
  const std::uint64_t final_digest = digest_of(*installer.active());
  EXPECT_TRUE(final_digest == want1 || final_digest == want2);
}

// RCU program swap under load (TSAN job): the data-plane thread loops
// process_batch while a control-plane thread patches the running program
// with entry deltas (Switch::apply_delta) and occasional full
// reprogram()s. The reader must only ever execute a complete program
// (ISSUE 5 tentpole item 4); TSAN proves the version-bumped publish and
// the thread-confined snapshot cache never race. Afterwards the patched
// switch must agree bit-for-bit with a freshly built switch running the
// final pipeline.
TEST(ConcurrentLookup, DeltaSwapUnderBatchLoad) {
  auto schema = spec::make_itch_schema();
  compiler::CompileOptions opts;
  opts.order = bdd::OrderHeuristic::kExactFirst;

  workload::ChurnParams cp;
  cp.seed = 53;
  cp.subs.seed = 59;
  cp.subs.n_subscriptions = 60;
  cp.subs.n_symbols = 20;
  cp.subs.n_hosts = 8;
  workload::ChurnGenerator churn(schema, cp);

  compiler::IncrementalCompiler inc(schema, opts);
  std::map<std::size_t, compiler::IncrementalCompiler::SubscriptionId> ids;
  for (std::size_t slot = 0; slot < churn.base().size(); ++slot)
    ids[slot] = inc.add(churn.base()[slot]);
  ASSERT_TRUE(inc.commit().ok());
  switchsim::Switch sw(schema, *inc.pipeline().value());

  workload::FeedParams fp;
  fp.seed = 61;
  fp.n_messages = 1500;
  fp.symbols = churn.symbols();
  const auto packed = workload::pack_feed_frames(workload::generate_feed(fp));
  std::vector<switchsim::Switch::Frame> frames;
  for (const auto& pf : packed)
    frames.push_back({std::span<const std::uint8_t>(pf.bytes), pf.t_us});

  auto egress_digest = [&frames](switchsim::Switch& s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& pkt : s.process_batch(frames)) {
      h = fnv_step(h, pkt.port);
      for (const std::uint8_t b : pkt.frame) h = fnv_step(h, b);
    }
    return h;
  };

  // Data-plane thread: the single reader, batching continuously across
  // every swap.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};
  std::thread data_plane([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)sw.process_batch(frames);
      batches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Control-plane thread (this one): 24 churn commits patched in, every
  // sixth swap a full reprogram instead of a delta.
  int update_failures = 0;
  for (int round = 0; round < 24; ++round) {
    auto op = churn.next();
    if (op.subscribe) {
      ids[op.slot] = inc.add(std::move(op.rule));
    } else {
      ASSERT_TRUE(inc.remove(ids.at(op.slot)));
      ids.erase(op.slot);
    }
    auto delta = inc.commit();
    ASSERT_TRUE(delta.ok()) << delta.error().to_string();
    if (round % 6 == 5) {
      sw.reprogram(*inc.pipeline().value());
    } else if (auto applied = sw.apply_delta(delta.value().ops);
               !applied.ok()) {
      ++update_failures;
    }
  }
  stop.store(true, std::memory_order_release);
  data_plane.join();

  EXPECT_EQ(update_failures, 0);
  EXPECT_GT(batches.load(), 0u);
  // 1 initial publish + 24 updates, none lost or duplicated.
  EXPECT_EQ(sw.program_version(), 25u);

  // Converged: patched switch == fresh switch on the final pipeline.
  switchsim::Switch fresh(schema, *inc.pipeline().value());
  EXPECT_EQ(egress_digest(sw), egress_digest(fresh));
}

}  // namespace
