// CompiledPipeline: the flattened fast-path lookup must be bit-identical
// to Pipeline::evaluate — randomized pipelines (exact/range/wildcard
// mixes, duplicates, state subjects), compiled ITCH programs under both
// stage orderings and with domain compression, manual value-map chains,
// and degenerate shapes. The hot-key memo split (prefix_key / run_prefix /
// finish) must compose to a full traverse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/extract.hpp"
#include "table/compiled.hpp"
#include "table/pipeline.hpp"
#include "util/rng.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;
using namespace camus::table;
using camus::lang::Subject;

// Leaf index the reference evaluator lands on: the entry's position in the
// source leaf table (the order CompiledPipeline::traverse reports), or
// kMiss on drop.
std::uint32_t ref_leaf_index(const Pipeline& p, const lang::Env& env) {
  const LeafEntry* e = p.evaluate(env);
  if (!e) return CompiledPipeline::kMiss;
  return static_cast<std::uint32_t>(e - p.leaf.entries().data());
}

constexpr std::uint32_t kStates = 8;       // state ids used by random tables
constexpr std::uint64_t kValueSpan = 48;   // env values drawn from [0, span)

Pipeline random_pipeline(util::Rng& rng) {
  Pipeline p;
  const std::size_t n_tables = 1 + rng.next() % 3;
  for (std::size_t t = 0; t < n_tables; ++t) {
    const Subject subj = rng.next() % 4 == 0
                             ? Subject::state(rng.next() % 2)
                             : Subject::field(rng.next() % 3);
    Table tab("t" + std::to_string(t), subj,
              rng.next() % 2 ? MatchKind::kExact : MatchKind::kRange, 16);
    // Disjoint ranges per state: advance a per-state cursor.
    std::uint64_t cursor[kStates] = {};
    const std::size_t n_entries = 1 + rng.next() % 9;
    for (std::size_t e = 0; e < n_entries; ++e) {
      const StateId st = static_cast<StateId>(rng.next() % kStates);
      const StateId next = static_cast<StateId>(rng.next() % kStates);
      switch (rng.next() % 3) {
        case 0:
          tab.add_entry({st, ValueMatch::exact(rng.next() % 16), next});
          break;
        case 1: {
          const std::uint64_t lo = cursor[st] + rng.next() % 3;
          const std::uint64_t hi = lo + rng.next() % 5;
          cursor[st] = hi + 1;
          tab.add_entry({st, ValueMatch::range(lo, hi), next});
          break;
        }
        case 2:
          tab.add_entry({st, ValueMatch::any(), next});
          break;
      }
    }
    // Duplicate exact entries must resolve last-wins in both evaluators.
    if (rng.next() % 2) {
      const StateId st = static_cast<StateId>(rng.next() % kStates);
      const std::uint64_t v = rng.next() % 16;
      tab.add_entry({st, ValueMatch::exact(v), 3});
      tab.add_entry({st, ValueMatch::exact(v), 5});
    }
    p.tables.push_back(std::move(tab));
  }
  for (StateId s = 0; s < kStates; ++s) {
    if (rng.next() % 2) continue;
    LeafEntry e;
    e.state = s;
    e.actions.add_port(static_cast<std::uint16_t>(rng.next() % 4));
    p.leaf.add_entry(std::move(e));
    // Duplicate leaf states must resolve first-wins in both evaluators.
    if (rng.next() % 4 == 0) {
      LeafEntry dup;
      dup.state = s;
      dup.actions.add_port(63);
      p.leaf.add_entry(std::move(dup));
    }
  }
  p.finalize();
  return p;
}

TEST(CompiledPipeline, RandomizedEquivalence) {
  util::Rng rng(0xc0de);
  for (int trial = 0; trial < 100; ++trial) {
    const Pipeline p = random_pipeline(rng);
    const CompiledPipeline cp(p);
    ASSERT_TRUE(cp.valid());
    lang::Env env;
    env.fields.resize(3);
    env.states.resize(2);
    for (int i = 0; i < 300; ++i) {
      for (auto& f : env.fields) f = rng.next() % kValueSpan;
      for (auto& s : env.states) s = rng.next() % kValueSpan;
      const std::uint32_t want = ref_leaf_index(p, env);
      const std::uint32_t got = cp.traverse(env.fields, env.states);
      ASSERT_EQ(got, want) << "trial " << trial << " iter " << i;
      if (want != CompiledPipeline::kMiss) {
        const lang::ActionSet* a = cp.actions(got);
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(*a, p.leaf.entries()[want].actions);
        EXPECT_EQ(cp.leaf_entry(got).state, p.leaf.entries()[want].state);
      } else {
        EXPECT_EQ(cp.actions(got), nullptr);
      }
    }
  }
}

TEST(CompiledPipeline, EmptyAndLeafOnlyPipelines) {
  Pipeline empty;  // no tables, no leaf: everything drops
  const CompiledPipeline ce(empty);
  ASSERT_TRUE(ce.valid());
  EXPECT_EQ(ce.traverse(std::vector<std::uint64_t>{1, 2},
                        std::vector<std::uint64_t>{}),
            CompiledPipeline::kMiss);

  Pipeline leaf_only;  // no tables: every packet lands in the initial state
  LeafEntry e;
  e.state = kInitialState;
  e.actions.add_port(9);
  leaf_only.leaf.add_entry(e);
  leaf_only.finalize();
  const CompiledPipeline cl(leaf_only);
  ASSERT_TRUE(cl.valid());
  const auto idx = cl.traverse(std::vector<std::uint64_t>{7},
                               std::vector<std::uint64_t>{});
  ASSERT_EQ(idx, 0u);
  EXPECT_EQ(cl.actions(idx)->ports, std::vector<std::uint16_t>{9});
}

TEST(CompiledPipeline, WildcardOnlyTable) {
  Pipeline p;
  Table t("w", Subject::field(0), MatchKind::kExact, 16);
  t.add_entry({kInitialState, ValueMatch::any(), 4});
  p.tables.push_back(std::move(t));
  LeafEntry e;
  e.state = 4;
  e.actions.add_port(2);
  p.leaf.add_entry(e);
  p.finalize();
  const CompiledPipeline cp(p);
  ASSERT_TRUE(cp.valid());
  for (std::uint64_t v : {0ULL, 5ULL, ~0ULL}) {
    lang::Env env;
    env.fields = {v};
    EXPECT_EQ(cp.traverse(env.fields, env.states), ref_leaf_index(p, env));
  }
}

// Manual value-map chain: raw field 0 is mapped onto a narrow code domain,
// the main table matches codes, and values outside the map's coverage must
// fall to code 0 in both evaluators.
TEST(CompiledPipeline, ValueMapEquivalenceIncludingMapMiss) {
  Pipeline p;
  Table vm("map_f0", Subject::field(0), MatchKind::kRange, 16);
  vm.add_entry({kInitialState, ValueMatch::range(0, 9), 0});
  vm.add_entry({kInitialState, ValueMatch::range(10, 19), 1});
  vm.add_entry({kInitialState, ValueMatch::range(20, 29), 2});
  p.value_maps.push_back(std::move(vm));

  Table t0("f0_codes", Subject::field(0), MatchKind::kExact, 16);
  t0.add_entry({kInitialState, ValueMatch::exact(1), 5});
  t0.add_entry({kInitialState, ValueMatch::exact(2), 6});
  p.tables.push_back(std::move(t0));

  Table t1("f1", Subject::field(1), MatchKind::kRange, 16);
  t1.add_entry({5, ValueMatch::range(0, 100), 7});
  t1.add_entry({6, ValueMatch::any(), 8});
  p.tables.push_back(std::move(t1));

  for (StateId s : {kInitialState, StateId{5}, StateId{6}, StateId{7},
                    StateId{8}}) {
    LeafEntry e;
    e.state = s;
    e.actions.add_port(static_cast<std::uint16_t>(s + 10));
    p.leaf.add_entry(e);
  }
  p.finalize();

  const CompiledPipeline cp(p);
  ASSERT_TRUE(cp.valid());
  lang::Env env;
  env.fields.resize(2);
  for (std::uint64_t f0 = 0; f0 < 40; ++f0) {    // >= 30 exercises map miss
    for (std::uint64_t f1 = 0; f1 < 130; f1 += 7) {
      env.fields[0] = f0;
      env.fields[1] = f1;
      ASSERT_EQ(cp.traverse(env.fields, env.states), ref_leaf_index(p, env))
          << "f0=" << f0 << " f1=" << f1;
    }
  }
}

// Full compiled-ITCH equivalence over a generated feed, under both stage
// orderings and with domain compression (compiler-produced value maps).
void itch_equivalence(bdd::OrderHeuristic order, bool compress) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 7;
  sp.n_subscriptions = 300;
  sp.n_symbols = 120;
  sp.n_hosts = 16;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  compiler::CompileOptions co;
  co.order = order;
  co.domain_compression = compress;
  auto pipeline = compiler::compile_rules(schema, subs.rules, co).take().pipeline;
  pipeline.finalize();
  const CompiledPipeline cp(pipeline);
  ASSERT_TRUE(cp.valid());

  workload::FeedParams fp;
  fp.seed = 3;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = 3000;
  fp.symbols = subs.symbols;
  fp.price_min = 1;
  fp.price_max = 1200;
  auto feed = workload::generate_feed(fp);

  switchsim::ItchFieldExtractor ex(schema);
  lang::Env env;
  env.states.assign(schema.state_vars().size(), 0);
  util::Rng rng(11);
  for (const auto& fm : feed.messages) {
    ex.extract_into(fm.msg, env.fields);
    for (auto& s : env.states) s = rng.next() % 10000;  // cover state inputs
    ASSERT_EQ(cp.traverse(env.fields, env.states), ref_leaf_index(pipeline, env));
  }
}

TEST(CompiledPipeline, ItchDeclaredOrder) {
  itch_equivalence(bdd::OrderHeuristic::kDeclared, false);
}
TEST(CompiledPipeline, ItchExactFirstOrder) {
  itch_equivalence(bdd::OrderHeuristic::kExactFirst, false);
}
TEST(CompiledPipeline, ItchWithDomainCompression) {
  itch_equivalence(bdd::OrderHeuristic::kDeclared, true);
}

// The memo decomposition: run_prefix over the leading exact stages plus
// finish must equal a full traverse, and the prefix key must be a pure
// function of the prefix subjects (same symbol -> same key and state).
TEST(CompiledPipeline, PrefixRunsComposeToTraverse) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 5;
  sp.n_subscriptions = 200;
  sp.n_symbols = 80;
  sp.n_hosts = 8;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  compiler::CompileOptions co;
  co.order = bdd::OrderHeuristic::kExactFirst;  // symbol stage leads
  auto pipeline = compiler::compile_rules(schema, subs.rules, co).take().pipeline;
  pipeline.finalize();
  const CompiledPipeline cp(pipeline);
  ASSERT_TRUE(cp.valid());
  ASSERT_GT(cp.prefix_stages(), 0u);
  ASSERT_LE(cp.prefix_stages(), CompiledPipeline::kMaxPrefix);

  workload::FeedParams fp;
  fp.seed = 9;
  fp.n_messages = 2000;
  fp.symbols = subs.symbols;
  auto feed = workload::generate_feed(fp);

  switchsim::ItchFieldExtractor ex(schema);
  std::vector<std::uint64_t> fields;
  const std::vector<std::uint64_t> states(schema.state_vars().size(), 0);
  std::uint64_t key[CompiledPipeline::kMaxPrefix] = {};
  for (const auto& fm : feed.messages) {
    ex.extract_into(fm.msg, fields);
    cp.prefix_key(fields, states, key);
    const std::uint32_t mid = cp.run_prefix(fields, states);
    const std::uint32_t composed = cp.finish(mid, fields, states);
    ASSERT_EQ(composed, cp.traverse(fields, states));

    // Purity: re-running the prefix on the same inputs is deterministic.
    std::uint64_t key2[CompiledPipeline::kMaxPrefix] = {};
    cp.prefix_key(fields, states, key2);
    for (std::size_t i = 0; i < cp.prefix_stages(); ++i)
      ASSERT_EQ(key[i], key2[i]);
    ASSERT_EQ(cp.run_prefix(fields, states), mid);
  }
}

// run_prefix_block (the batched/SIMD probe) against run_prefix, one key
// at a time reassembled into blocks of every width 1..kBlockWidth, over a
// compiled ITCH program — hits, misses (unknown symbols), and hash
// collisions all ride through the same open-addressed tables, and the
// block path must agree on every lane.
TEST(CompiledPipeline, PrefixBlockMatchesScalarPrefix) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = 13;
  sp.n_subscriptions = 250;
  sp.n_symbols = 100;
  sp.n_hosts = 12;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  compiler::CompileOptions co;
  co.order = bdd::OrderHeuristic::kExactFirst;
  auto pipeline =
      compiler::compile_rules(schema, subs.rules, co).take().pipeline;
  pipeline.finalize();
  const CompiledPipeline cp(pipeline);
  ASSERT_TRUE(cp.valid());
  ASSERT_GT(cp.prefix_stages(), 0u);

  // Feed symbols from the subscribed universe plus unknown tickers (exact
  // misses that walk probe clusters to an empty slot).
  workload::FeedParams fp;
  fp.seed = 17;
  fp.n_messages = 1500;
  fp.symbols = subs.symbols;
  fp.symbols.insert(fp.symbols.end(),
                    {"ZZZZ", "QQQQ", "NOPE", "MISS", "XXL"});
  auto feed = workload::generate_feed(fp);

  switchsim::ItchFieldExtractor ex(schema);
  std::vector<std::uint64_t> fields;
  const std::vector<std::uint64_t> states(schema.state_vars().size(), 0);

  constexpr std::size_t kW = CompiledPipeline::kBlockWidth;
  constexpr std::size_t kP = CompiledPipeline::kMaxPrefix;
  std::uint64_t keys[kW * kP] = {};
  std::uint32_t want[kW];
  std::size_t n = 0;
  std::size_t width = 1;  // cycle block widths 1..kW
  std::size_t blocks = 0;
  auto flush = [&] {
    std::uint32_t got[kW];
    cp.run_prefix_block(keys, n, got);
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(got[j], want[j]) << "block " << blocks << " lane " << j;
    ++blocks;
    n = 0;
    width = width % kW + 1;
  };
  for (const auto& fm : feed.messages) {
    ex.extract_into(fm.msg, fields);
    for (std::size_t i = 0; i < kP; ++i) keys[n * kP + i] = 0;
    cp.prefix_key(fields, states, &keys[n * kP]);
    want[n] = cp.run_prefix(fields, states);
    if (++n == width) flush();
  }
  if (n > 0) flush();
  EXPECT_GT(blocks, 100u);
}

// Block probing over a hand-built prefix whose table mixes exact entries
// with a range and a wildcard in the SAME stage: an exact miss must fall
// through to the range/wildcard tail exactly like flat_lookup.
TEST(CompiledPipeline, PrefixBlockWithMixedKindFallback) {
  Pipeline p;
  Table t("mix", Subject::field(0), MatchKind::kExact, 16);
  t.add_entry({kInitialState, ValueMatch::exact(3), 1});
  t.add_entry({kInitialState, ValueMatch::exact(19), 2});
  t.add_entry({kInitialState, ValueMatch::range(40, 49), 3});
  t.add_entry({kInitialState, ValueMatch::any(), 4});
  p.tables.push_back(std::move(t));
  for (StateId s = 1; s <= 4; ++s) {
    LeafEntry e;
    e.state = s;
    e.actions.add_port(static_cast<std::uint16_t>(s));
    p.leaf.add_entry(e);
  }
  p.finalize();
  const CompiledPipeline cp(p);
  ASSERT_TRUE(cp.valid());
  ASSERT_EQ(cp.prefix_stages(), 1u);

  constexpr std::size_t kP = CompiledPipeline::kMaxPrefix;
  std::vector<std::uint64_t> fields(1);
  const std::vector<std::uint64_t> states;
  // One full block covering: exact hits, range hit, wildcard fallback.
  const std::uint64_t vals[] = {3, 19, 45, 0, 100, 40, 49, 7};
  std::uint64_t keys[CompiledPipeline::kBlockWidth * kP] = {};
  std::uint32_t want[CompiledPipeline::kBlockWidth];
  for (std::size_t j = 0; j < 8; ++j) {
    fields[0] = vals[j];
    cp.prefix_key(fields, states, &keys[j * kP]);
    want[j] = cp.run_prefix(fields, states);
  }
  std::uint32_t got[CompiledPipeline::kBlockWidth];
  cp.run_prefix_block(keys, 8, got);
  for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(got[j], want[j]) << j;
}

}  // namespace
