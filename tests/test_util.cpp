// RNG, statistics, interner, flat map, and text-table utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/flat_map.hpp"
#include "util/intern.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace camus::util;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(124);
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) all_equal &= (a2.next() == c.next());
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform(3, 9);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, WeightedPicksByMass) {
  Rng rng(13);
  std::vector<double> w{1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, PmfSumsToOneAndIsMonotone) {
  ZipfDistribution z(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < 100; ++k) {
    sum += z.pmf(k);
    if (k > 0) EXPECT_LE(z.pmf(k), z.pmf(k - 1) + 1e-12);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SamplingMatchesPmf) {
  Rng rng(19);
  ZipfDistribution z(10, 1.2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z(rng)];
  for (std::size_t k = 0; k < 10; ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01) << k;
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(CdfSampler, QuantilesAndFractions) {
  CdfSampler c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_NEAR(c.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(c.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(c.median(), 50.5, 1e-9);
  EXPECT_NEAR(c.fraction_below(50), 0.5, 1e-9);
  EXPECT_EQ(c.fraction_below(0), 0.0);
  EXPECT_EQ(c.fraction_below(1000), 1.0);

  const auto pts = c.cdf_points(10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_NEAR(pts.back().first, 100.0, 1e-9);
  EXPECT_NEAR(pts.back().second, 1.0, 1e-9);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i - 1].first, pts[i].first);
}

TEST(CdfSampler, InterleavedAddAndQuery) {
  CdfSampler c;
  c.add(10);
  EXPECT_EQ(c.median(), 10.0);
  c.add(20);  // re-dirties after a query
  EXPECT_NEAR(c.median(), 15.0, 1e-9);
}

TEST(Interner, DenseIdsAndRoundTrip) {
  Interner in;
  const auto a = in.intern("alpha");
  const auto b = in.intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(in.intern("alpha"), a);
  EXPECT_EQ(in.name(b), "beta");
  EXPECT_EQ(in.lookup("alpha"), std::optional<std::uint64_t>(a));
  EXPECT_FALSE(in.lookup("gamma"));
  EXPECT_EQ(in.size(), 2u);
}

TEST(SymbolEncoding, RoundTripAndOrdering) {
  for (const char* s : {"GOOGL", "A", "ABCDEFGH", ""}) {
    EXPECT_EQ(decode_symbol(encode_symbol(s)), s);
  }
  // Space padding makes the encoding width-stable.
  EXPECT_EQ(encode_symbol("AAPL"), encode_symbol("AAPL    "));
  EXPECT_NE(encode_symbol("AAPL"), encode_symbol("AAPLX"));
}

TEST(FlatMap, InsertFindGrow) {
  struct H {
    std::size_t operator()(std::uint64_t k) const { return mix64(k); }
  };
  FlatMap<std::uint64_t, int, H> m(2);  // tiny: forces many grows
  for (std::uint64_t i = 0; i < 1000; ++i) m.insert(i * 7, static_cast<int>(i));
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const int* v = m.find(i * 7);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(m.find(3), nullptr);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxx", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(std::uint64_t{42}), "42");
}

TEST(FlatMapCounters, ProbesAndHits) {
  struct Hash {
    std::size_t operator()(int k) const noexcept {
      return static_cast<std::size_t>(k) * 0x9e3779b97f4a7c15ULL;
    }
  };
  FlatMap<int, int, Hash> m(4);
  m.insert(1, 10);
  EXPECT_EQ(m.probes(), 0u);
  EXPECT_NE(m.find(1), nullptr);   // hit
  EXPECT_EQ(m.find(2), nullptr);   // miss
  EXPECT_EQ(m.probes(), 2u);
  EXPECT_EQ(m.hits(), 1u);
  m.clear();
  // Lifetime totals: clear() keeps the counters.
  EXPECT_EQ(m.probes(), 2u);
  EXPECT_EQ(m.hits(), 1u);
}

TEST(Json, ParsesTelemetryShapes) {
  const auto r = json::parse(
      R"({"a":1,"b":-2.5e2,"s":"x\ny A","arr":[1,2,3],)"
      R"("nested":{"t":true,"f":false,"n":null}})");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& v = r.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.member_u64("a"), 1u);
  EXPECT_DOUBLE_EQ(v.member_num("b"), -250.0);
  EXPECT_EQ(v.find("s")->string, "x\ny A");
  ASSERT_TRUE(v.find("arr")->is_array());
  EXPECT_EQ(v.find("arr")->array.size(), 3u);
  const auto* nested = v.find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->find("t")->boolean);
  EXPECT_FALSE(nested->find("f")->boolean);
  EXPECT_EQ(nested->find("n")->kind, json::Value::Kind::kNull);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("{\"a\":}").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  EXPECT_FALSE(json::parse("{} trailing").ok());
  EXPECT_FALSE(json::parse("").ok());
}

TEST(Json, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, 0.1, 1e-9, 123456.789, 1.0 / 3.0}) {
    const std::string s = json::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

}  // namespace
