// Wire formats: Ethernet/IPv4/UDP headers, MoldUDP64 framing, ITCH
// add-order messages, full-packet round trips, malformed-input hardening.
#include <gtest/gtest.h>

#include "proto/packet.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace {

using namespace camus::proto;

TEST(Wire, BigEndianRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u48(0x0000123456789aULL);
  w.u64(0x1122334455667788ULL);
  Reader r(w.data());
  std::uint8_t v8;
  std::uint16_t v16;
  std::uint32_t v32;
  std::uint64_t v48, v64;
  ASSERT_TRUE(r.u8(v8) && r.u16(v16) && r.u32(v32) && r.u48(v48) &&
              r.u64(v64));
  EXPECT_EQ(v8, 0xab);
  EXPECT_EQ(v16, 0x1234);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v48, 0x0000123456789aULL);
  EXPECT_EQ(v64, 0x1122334455667788ULL);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.u8(v8));  // exhausted
}

TEST(Wire, NetworkByteOrderOnTheWire) {
  Writer w;
  w.u16(0x0800);
  ASSERT_EQ(w.data()[0], 0x08);
  ASSERT_EQ(w.data()[1], 0x00);
}

TEST(Wire, FixedStringPadsAndTruncates) {
  Writer w;
  w.fixed_string("AB", 4);
  w.fixed_string("ABCDEF", 3);
  const auto& d = w.data();
  EXPECT_EQ(std::string(d.begin(), d.begin() + 4), "AB  ");
  EXPECT_EQ(std::string(d.begin() + 4, d.end()), "ABC");
}

TEST(Wire, InternetChecksumVerifies) {
  // A checksummed header re-sums to zero.
  Writer w;
  w.u16(0x4500);
  w.u16(0x0030);
  w.u16(0x0000);
  w.u16(0x4000);
  w.u16(0x4011);
  w.u16(0x0000);  // checksum slot
  w.u32(0x0a000001);
  w.u32(0xe8010101);
  const std::uint16_t sum = internet_checksum(w.data());
  w.patch_u16(10, sum);
  EXPECT_EQ(internet_checksum(w.data()), 0);
}

TEST(Headers, Ipv4RoundTripAndChecksum) {
  Ipv4Header ip;
  ip.src = 0x0a000001;
  ip.dst = 0xe8010101;
  ip.total_len = 100;
  ip.ttl = 17;
  Writer w;
  ip.encode(w);

  Ipv4Header out;
  Reader r(w.data());
  ASSERT_TRUE(out.decode(r));
  EXPECT_EQ(out.src, ip.src);
  EXPECT_EQ(out.dst, ip.dst);
  EXPECT_EQ(out.total_len, 100);
  EXPECT_EQ(out.ttl, 17);
  EXPECT_TRUE(out.checksum_ok);

  // Corrupt a byte: decode succeeds but checksum_ok is false.
  auto bytes = w.data();
  bytes[16] ^= 0xff;
  Ipv4Header bad;
  Reader r2(bytes);
  ASSERT_TRUE(bad.decode(r2));
  EXPECT_FALSE(bad.checksum_ok);
}

TEST(Headers, Ipv4RejectsBadVersionAndIhl) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[0] = 0x55;  // version 5
  Ipv4Header h;
  Reader r(buf);
  EXPECT_FALSE(h.decode(r));
  buf[0] = 0x43;  // IHL 3 (< 5)
  Reader r2(buf);
  EXPECT_FALSE(h.decode(r2));
}

TEST(Itch, AddOrderRoundTrip) {
  ItchAddOrder msg;
  msg.stock_locate = 42;
  msg.tracking = 7;
  msg.timestamp_ns = 0x123456789abcULL;
  msg.order_ref = 0xdeadbeefcafef00dULL;
  msg.side = 'S';
  msg.shares = 1000;
  msg.stock = "GOOGL";
  msg.price = 1234500;

  Writer w;
  msg.encode(w);
  EXPECT_EQ(w.size(), ItchAddOrder::kSize);

  ItchAddOrder out;
  Reader r(w.data());
  ASSERT_TRUE(out.decode(r));
  EXPECT_EQ(out.stock_locate, msg.stock_locate);
  EXPECT_EQ(out.timestamp_ns, msg.timestamp_ns);
  EXPECT_EQ(out.order_ref, msg.order_ref);
  EXPECT_EQ(out.side, 'S');
  EXPECT_EQ(out.shares, 1000u);
  EXPECT_EQ(out.stock, "GOOGL");
  EXPECT_EQ(out.price, 1234500u);
  EXPECT_EQ(out.stock_key(), camus::util::encode_symbol("GOOGL"));
}

TEST(Itch, AddOrderRejectsBadTypeAndSide) {
  ItchAddOrder msg;
  msg.stock = "X";
  Writer w;
  msg.encode(w);
  auto bytes = w.data();
  bytes[0] = 'Z';
  {
    ItchAddOrder out;
    Reader r(bytes);
    EXPECT_FALSE(out.decode(r));
  }
  bytes[0] = 'A';
  bytes[19] = 'Q';  // side byte
  {
    ItchAddOrder out;
    Reader r(bytes);
    EXPECT_FALSE(out.decode(r));
  }
}

TEST(Itch, PayloadFraming) {
  MoldUdp64Header mold;
  mold.session = "SESSION01";
  mold.sequence = 77;
  std::vector<ItchAddOrder> msgs(3);
  msgs[0].stock = "AAPL";
  msgs[1].stock = "MSFT";
  msgs[2].stock = "GOOGL";
  const auto payload = encode_itch_payload(mold, msgs);

  auto pkt = decode_itch_payload(payload);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->mold.session, "SESSION01");
  EXPECT_EQ(pkt->mold.sequence, 77u);
  EXPECT_EQ(pkt->mold.message_count, 3u);
  ASSERT_EQ(pkt->add_orders.size(), 3u);
  EXPECT_EQ(pkt->add_orders[2].stock, "GOOGL");
  EXPECT_EQ(pkt->skipped_messages, 0u);
}

TEST(Itch, PayloadSkipsUnknownMessages) {
  // Hand-build a payload with one unknown message between add-orders.
  Writer w;
  MoldUdp64Header mold;
  mold.message_count = 2;
  mold.encode(w);
  w.u16(4);  // unknown 4-byte message
  w.u32(0xabcdef01);
  ItchAddOrder msg;
  msg.stock = "ORCL";
  w.u16(ItchAddOrder::kSize);
  msg.encode(w);

  auto pkt = decode_itch_payload(w.data());
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->skipped_messages, 1u);
  ASSERT_EQ(pkt->add_orders.size(), 1u);
  EXPECT_EQ(pkt->add_orders[0].stock, "ORCL");
}

TEST(Itch, PayloadRejectsTruncation) {
  MoldUdp64Header mold;
  std::vector<ItchAddOrder> msgs(1);
  msgs[0].stock = "AAPL";
  auto payload = encode_itch_payload(mold, msgs);
  // Any truncation of the message region must fail cleanly.
  for (std::size_t cut = 1; cut < payload.size(); cut += 3) {
    std::vector<std::uint8_t> trunc(payload.begin(), payload.end() - cut);
    EXPECT_FALSE(decode_itch_payload(trunc).has_value()) << cut;
  }
}

TEST(Packet, FullFrameRoundTrip) {
  MoldUdp64Header mold;
  mold.sequence = 5;
  ItchAddOrder msg;
  msg.stock = "NVDA";
  msg.shares = 10;
  msg.price = 42;
  EthernetHeader eth;
  eth.dst = 0x01005e000001ULL;
  eth.src = 0x020000000001ULL;

  const auto frame =
      encode_market_data_packet(eth, 0x0a000001, 0xe8010101, mold, {msg});
  auto pkt = decode_market_data_packet(frame);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->eth.dst, eth.dst);
  EXPECT_EQ(pkt->ip.src, 0x0a000001u);
  EXPECT_EQ(pkt->ip.dst, 0xe8010101u);
  EXPECT_TRUE(pkt->ip.checksum_ok);
  EXPECT_EQ(pkt->udp.dst_port, kItchUdpPort);
  ASSERT_EQ(pkt->itch.add_orders.size(), 1u);
  EXPECT_EQ(pkt->itch.add_orders[0].stock, "NVDA");
  EXPECT_EQ(pkt->itch.mold.sequence, 5u);

  // IP total length is consistent with the frame.
  EXPECT_EQ(frame.size(), EthernetHeader::kSize + pkt->ip.total_len);
}

TEST(Packet, RejectsNonIpAndNonUdp) {
  MoldUdp64Header mold;
  ItchAddOrder msg;
  msg.stock = "A";
  EthernetHeader eth;
  auto frame =
      encode_market_data_packet(eth, 1, 2, mold, {msg});
  // Break the ethertype.
  frame[12] = 0x86;
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_market_data_packet(frame).has_value());
}

TEST(Packet, TruncationFuzzNeverCrashes) {
  camus::util::Rng rng(4242);
  MoldUdp64Header mold;
  std::vector<ItchAddOrder> msgs(2);
  msgs[0].stock = "AAPL";
  msgs[1].stock = "MSFT";
  EthernetHeader eth;
  const auto frame = encode_market_data_packet(eth, 1, 2, mold, msgs);

  // Every prefix must decode or fail cleanly.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::vector<std::uint8_t> prefix(frame.begin(), frame.begin() + len);
    EXPECT_FALSE(decode_market_data_packet(prefix).has_value()) << len;
  }
  // Random byte corruption: decode either succeeds or fails, never crashes.
  for (int trial = 0; trial < 500; ++trial) {
    auto fuzzed = frame;
    const std::size_t n_flips = 1 + rng.uniform(0, 7);
    for (std::size_t i = 0; i < n_flips; ++i)
      fuzzed[rng.uniform(0, fuzzed.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform(1, 255));
    (void)decode_market_data_packet(fuzzed);
  }
}

TEST(Packet, MultiMessagePacketSizes) {
  MoldUdp64Header mold;
  std::vector<ItchAddOrder> msgs(5);
  for (auto& m : msgs) m.stock = "IBM";
  EthernetHeader eth;
  const auto frame = encode_market_data_packet(eth, 1, 2, mold, msgs);
  EXPECT_EQ(frame.size(), EthernetHeader::kSize + Ipv4Header::kSize +
                              UdpHeader::kSize + MoldUdp64Header::kSize +
                              5 * (2 + ItchAddOrder::kSize));
}

}  // namespace
