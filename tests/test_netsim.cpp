// Discrete-event simulator primitives and the Figure 7 market experiment.
#include <gtest/gtest.h>

#include "netsim/market_experiment.hpp"
#include "netsim/sim.hpp"
#include "pubsub/controller.hpp"
#include "spec/itch_spec.hpp"

namespace {

using namespace camus;
using netsim::FifoServer;
using netsim::Link;
using netsim::Simulator;

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
  EXPECT_EQ(sim.now_us(), 30.0);
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.at(7, [&, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CallbacksCanSchedule) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] {
    sim.after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now_us(), 6.0);
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.at(5, [] {}), std::invalid_argument);
}

TEST(LinkTest, SerializationAndQueueing) {
  Link link(/*gbps=*/10.0, /*prop=*/2.0);
  // 1250 bytes at 10 Gb/s = 1 us serialization.
  const double t1 = link.transmit(0, 1250);
  EXPECT_NEAR(t1, 1.0 + 2.0, 1e-9);
  // Second frame queued behind the first.
  const double t2 = link.transmit(0, 1250);
  EXPECT_NEAR(t2, 2.0 + 2.0, 1e-9);
  // After idle, no queueing.
  const double t3 = link.transmit(100, 1250);
  EXPECT_NEAR(t3, 101.0 + 2.0, 1e-9);
}

TEST(FifoServerTest, BacklogGrowsAndDrains) {
  FifoServer cpu(2.0);
  EXPECT_NEAR(cpu.serve(0), 2.0, 1e-9);
  EXPECT_NEAR(cpu.serve(0), 4.0, 1e-9);
  EXPECT_NEAR(cpu.backlog_us(1.0), 3.0, 1e-9);
  EXPECT_NEAR(cpu.serve(100), 102.0, 1e-9);
  EXPECT_EQ(cpu.backlog_us(200), 0.0);
}

// ---- market experiment -----------------------------------------------------

workload::Feed small_feed(double watched_fraction, std::size_t n = 20000) {
  workload::FeedParams p;
  p.seed = 33;
  p.n_messages = n;
  p.mode = workload::FeedMode::kSynthetic;
  p.watched_fraction = watched_fraction;
  p.rate_msgs_per_sec = 200000;
  return workload::generate_feed(p);
}

TEST(MarketExperiment, CamusDeliversExactlyWatched) {
  auto schema = spec::make_itch_schema();
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok());

  const auto feed = small_feed(0.05);
  netsim::MarketExperimentParams mp;
  mp.mode = netsim::FilterMode::kSwitchFilter;
  auto res = netsim::run_market_experiment(mp, sw.value(), feed, "GOOGL");

  EXPECT_EQ(res.published, feed.messages.size());
  EXPECT_EQ(res.delivered_to_host, feed.watched_count);
  EXPECT_EQ(res.watched_received, feed.watched_count);
  EXPECT_EQ(res.latency_us.count(), feed.watched_count);
}

TEST(MarketExperiment, BaselineDeliversEverything) {
  auto schema = spec::make_itch_schema();
  auto sw = switchsim::Switch::make_broadcast(schema, {1});
  const auto feed = small_feed(0.05);
  netsim::MarketExperimentParams mp;
  mp.mode = netsim::FilterMode::kHostFilter;
  auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
  EXPECT_EQ(res.delivered_to_host, feed.messages.size());
  EXPECT_EQ(res.watched_received, feed.watched_count);
}

TEST(MarketExperiment, SwitchFilteringReducesTailLatency) {
  auto schema = spec::make_itch_schema();
  const auto feed = small_feed(0.05);

  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  auto camus_sw = ctl.build_switch();
  ASSERT_TRUE(camus_sw.ok());
  netsim::MarketExperimentParams mp;
  mp.mode = netsim::FilterMode::kSwitchFilter;
  auto camus = netsim::run_market_experiment(mp, camus_sw.value(), feed,
                                             "GOOGL");

  auto base_sw = switchsim::Switch::make_broadcast(schema, {1});
  mp.mode = netsim::FilterMode::kHostFilter;
  auto base = netsim::run_market_experiment(mp, base_sw, feed, "GOOGL");

  // Same messages observed, strictly better tail for switch filtering.
  EXPECT_EQ(camus.watched_received, base.watched_received);
  EXPECT_LT(camus.latency_us.p99(), base.latency_us.p99());
  EXPECT_LE(camus.latency_us.quantile(0.5), base.latency_us.quantile(0.5));
}

TEST(MarketExperiment, LatencyHasPhysicalFloor) {
  auto schema = spec::make_itch_schema();
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  auto sw = ctl.build_switch();
  ASSERT_TRUE(sw.ok());
  const auto feed = small_feed(0.02, 5000);
  netsim::MarketExperimentParams mp;
  auto res = netsim::run_market_experiment(mp, sw.value(), feed, "GOOGL");
  // Floor: two propagation delays + switch pipeline + CPU deliver cost.
  const double floor = 2 * mp.link_propagation_us + mp.switch_pipeline_us +
                       mp.deliver_cost_us;
  EXPECT_GE(res.latency_us.quantile(0.0), floor);
}

}  // namespace

namespace bounded_queue_tests {

using namespace camus;

TEST(FifoServerTest, BoundedQueueDrops) {
  netsim::FifoServer cpu(10.0, /*queue_limit=*/2);
  EXPECT_GE(cpu.serve(0), 0.0);   // in service
  EXPECT_GE(cpu.serve(0), 0.0);   // queued (1)
  EXPECT_GE(cpu.serve(0), 0.0);   // queued (2)
  EXPECT_LT(cpu.serve(0), 0.0);   // queue full: dropped
  EXPECT_EQ(cpu.dropped(), 1u);
  // After the backlog drains, service resumes.
  EXPECT_GE(cpu.serve(100), 0.0);
  cpu.reset();
  EXPECT_EQ(cpu.dropped(), 0u);
}

TEST(MarketExperiment, BoundedHostQueueDropsUnderBroadcast) {
  auto schema = spec::make_itch_schema();
  workload::FeedParams fp;
  fp.seed = 21;
  fp.n_messages = 30000;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.watched_fraction = 0.05;
  fp.rate_msgs_per_sec = 200000;
  fp.burst_factor = 4.0;
  auto feed = workload::generate_feed(fp);

  netsim::MarketExperimentParams mp;
  mp.mode = netsim::FilterMode::kHostFilter;
  mp.host_filter_cost_us = 2.0;
  mp.deliver_cost_us = 0.8;
  mp.host_queue_limit = 64;
  auto sw = switchsim::Switch::make_broadcast(schema, {1});
  auto res = netsim::run_market_experiment(mp, sw, feed, "GOOGL");
  // Overloaded bursts against a 64-message queue must drop...
  EXPECT_GT(res.host_drops, 0u);
  // ...and the surviving latencies are bounded by the queue depth.
  const double bound = (64 + 2) * (2.0 + 0.8) + 50;
  EXPECT_LT(res.latency_us.max(), bound);

  // Switch filtering with the same limit drops nothing.
  pubsub::Controller ctl(spec::make_itch_schema());
  ASSERT_TRUE(ctl.subscribe(1, "stock == GOOGL").ok());
  auto csw = ctl.build_switch();
  ASSERT_TRUE(csw.ok());
  mp.mode = netsim::FilterMode::kSwitchFilter;
  auto cres = netsim::run_market_experiment(mp, csw.value(), feed, "GOOGL");
  EXPECT_EQ(cres.host_drops, 0u);
  EXPECT_EQ(cres.watched_received, cres.watched_expected);
}

}  // namespace bounded_queue_tests
