// Differential test for the batched data-plane fast path:
// Switch::process_batch must be bit-identical to calling
// process_messages per frame — TxPacket sequences (port and frame bytes),
// SwitchCounters, and register state — on >= 10k nasdaq-replay messages
// with malformed/truncated frames interleaved, across batch sizes, with
// stateful rules, a reprogram mid-stream (hot-key memo invalidation), and
// the non-flattenable fallback path.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "proto/packet.hpp"
#include "spec/itch_spec.hpp"
#include "switchsim/switch.hpp"
#include "workload/feed.hpp"
#include "workload/itch_subs.hpp"

namespace {

using namespace camus;
using switchsim::Switch;

struct RunResult {
  std::vector<Switch::TxPacket> pkts;
  switchsim::SwitchCounters counters;
  std::vector<std::uint64_t> regs;  // snapshot at final_time
};

RunResult run_per_frame(Switch& sw,
                        const std::vector<workload::PackedFrame>& frames,
                        std::uint64_t final_time) {
  RunResult r;
  for (const auto& f : frames) {
    auto out = sw.process_messages(f.bytes, f.t_us);
    for (auto& tx : out) r.pkts.push_back(std::move(tx));
  }
  r.counters = sw.counters();
  r.regs = sw.registers().snapshot(final_time);
  return r;
}

RunResult run_batched(Switch& sw,
                      const std::vector<workload::PackedFrame>& frames,
                      std::size_t batch_size, std::uint64_t final_time) {
  RunResult r;
  std::vector<Switch::Frame> batch;
  for (std::size_t i = 0; i < frames.size(); i += batch_size) {
    batch.clear();
    for (std::size_t j = i; j < std::min(i + batch_size, frames.size()); ++j)
      batch.push_back({frames[j].bytes, frames[j].t_us});
    auto out = sw.process_batch(batch);
    for (auto& tx : out) r.pkts.push_back(std::move(tx));
  }
  r.counters = sw.counters();
  r.regs = sw.registers().snapshot(final_time);
  return r;
}

void expect_identical(const RunResult& ref, const RunResult& fast) {
  ASSERT_EQ(ref.pkts.size(), fast.pkts.size());
  for (std::size_t i = 0; i < ref.pkts.size(); ++i) {
    ASSERT_EQ(ref.pkts[i].port, fast.pkts[i].port) << "packet " << i;
    ASSERT_EQ(ref.pkts[i].frame, fast.pkts[i].frame) << "packet " << i;
  }
  EXPECT_EQ(ref.counters.rx_frames, fast.counters.rx_frames);
  EXPECT_EQ(ref.counters.parse_errors, fast.counters.parse_errors);
  EXPECT_EQ(ref.counters.dropped, fast.counters.dropped);
  EXPECT_EQ(ref.counters.matched, fast.counters.matched);
  EXPECT_EQ(ref.counters.tx_copies, fast.counters.tx_copies);
  EXPECT_EQ(ref.counters.multicast_frames, fast.counters.multicast_frames);
  EXPECT_EQ(ref.counters.state_updates, fast.counters.state_updates);
  EXPECT_EQ(ref.regs, fast.regs);
}

table::Pipeline itch_pipeline(std::uint64_t seed, std::size_t n_subs,
                              std::vector<std::string>* symbols_out,
                              bdd::OrderHeuristic order =
                                  bdd::OrderHeuristic::kExactFirst) {
  auto schema = spec::make_itch_schema();
  workload::ItchSubsParams sp;
  sp.seed = seed;
  sp.n_subscriptions = n_subs;
  sp.n_symbols = 200;
  sp.n_hosts = 24;
  auto subs = workload::generate_itch_subscriptions(schema, sp);
  if (symbols_out) *symbols_out = subs.symbols;
  compiler::CompileOptions co;
  co.order = order;
  return compiler::compile_rules(schema, subs.rules, co).take().pipeline;
}

// Well-formed feed frames plus hand-corrupted variants interleaved: the
// scan path must settle every malformed shape exactly like the decode
// path.
std::vector<workload::PackedFrame> mixed_frames(
    const std::vector<std::string>& symbols, std::size_t n_messages) {
  workload::FeedParams fp;
  fp.seed = 20170830;
  fp.mode = workload::FeedMode::kNasdaqReplay;
  fp.n_messages = n_messages;
  fp.symbols = symbols;
  fp.price_min = 1;
  fp.price_max = 900;
  auto feed = workload::generate_feed(fp);
  auto good = workload::pack_feed_frames(feed, 4);

  // Corruptions derived from a healthy template frame.
  const std::vector<std::uint8_t>& g = good.front().bytes;
  proto::MarketDataView view;
  std::vector<std::uint32_t> offs;
  EXPECT_TRUE(proto::scan_market_data_packet(g, view, offs));
  EXPECT_FALSE(offs.empty());
  constexpr std::size_t kMoldCountOff = 14 + 20 + 8 + 18;

  std::vector<std::vector<std::uint8_t>> bad;
  bad.emplace_back();                                        // empty frame
  bad.emplace_back(g.begin(), g.begin() + 10);               // truncated eth
  bad.emplace_back(g.begin(), g.begin() + 20);               // truncated ip
  bad.emplace_back(g.begin(), g.end() - 10);                 // short payload
  auto ether = g;  ether[12] = 0x08; ether[13] = 0x06;       // ARP ethertype
  bad.push_back(ether);
  auto ver = g;    ver[14] = 0x55;                           // IP version 5
  bad.push_back(ver);
  auto proto_ = g; proto_[23] = 6;                           // TCP, not UDP
  bad.push_back(proto_);
  auto count = g;  count[kMoldCountOff] = 0xff;              // count overrun
  bad.push_back(count);
  auto zero = g;   zero[kMoldCountOff] = 0; zero[kMoldCountOff + 1] = 0;
  bad.push_back(zero);       // zero messages: parses, nothing to classify
  auto junk = std::vector<std::uint8_t>(64, 0xab);           // random bytes
  bad.push_back(junk);

  // Payload-level damage: a bad side byte and a non-add-order type skip
  // single messages without rejecting the frame.
  auto side = g;   side[offs[0] + 19] = 'X';
  bad.push_back(side);
  auto type = g;   type[offs.back()] = 'Z';
  bad.push_back(type);
  auto trail = g;  trail.insert(trail.end(), {1, 2, 3, 4, 5});
  bad.push_back(trail);      // trailing bytes beyond udp length: ignored
  auto allbad = g;
  for (std::uint32_t o : offs) allbad[o + 19] = 'Q';
  bad.push_back(allbad);     // every message skipped -> parse error

  std::vector<workload::PackedFrame> frames;
  frames.reserve(good.size() + good.size() / 40 + bad.size());
  std::size_t next_bad = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (i % 41 == 40) {
      workload::PackedFrame pf;
      pf.t_us = good[i].t_us;
      pf.bytes = bad[next_bad++ % bad.size()];
      frames.push_back(std::move(pf));
    }
    frames.push_back(good[i]);
  }
  return frames;
}

TEST(ProcessBatch, DifferentialAcrossBatchSizes) {
  std::vector<std::string> symbols;
  auto pipeline = itch_pipeline(1, 400, &symbols);
  const auto frames = mixed_frames(symbols, 12000);
  const std::uint64_t final_time = frames.back().t_us + 1;

  Switch sw_ref(spec::make_itch_schema(), pipeline);
  const auto ref = run_per_frame(sw_ref, frames, final_time);
  ASSERT_GT(ref.pkts.size(), 0u);
  ASSERT_GT(ref.counters.parse_errors, 0u);

  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            frames.size()}) {
    Switch sw_fast(spec::make_itch_schema(), pipeline);
    const auto fast = run_batched(sw_fast, frames, batch, final_time);
    expect_identical(ref, fast);
    const auto& bs = sw_fast.batch_stats();
    EXPECT_GT(bs.memo_probes, 0u);
    EXPECT_LE(bs.memo_hits, bs.memo_probes);
  }
}

// Declared ordering leaves a range table first (no memo prefix): the
// batched path must stay identical with the memo disabled.
TEST(ProcessBatch, DifferentialWithoutMemoPrefix) {
  std::vector<std::string> symbols;
  auto pipeline =
      itch_pipeline(2, 300, &symbols, bdd::OrderHeuristic::kDeclared);
  const auto frames = mixed_frames(symbols, 10000);
  const std::uint64_t final_time = frames.back().t_us + 1;

  Switch sw_ref(spec::make_itch_schema(), pipeline);
  Switch sw_fast(spec::make_itch_schema(), pipeline);
  const auto ref = run_per_frame(sw_ref, frames, final_time);
  const auto fast = run_batched(sw_fast, frames, 64, final_time);
  expect_identical(ref, fast);
}

// Stateful rules: register updates are order-sensitive and feed back into
// classification (windowed average gating), so this catches any snapshot
// staleness in the batched path's cached register view.
TEST(ProcessBatch, DifferentialStatefulRules) {
  auto schema = spec::make_itch_schema();
  auto compiled = compiler::compile_source(schema, R"(
    stock == GOOGL and avg(price) > 1000 : fwd(1)
    stock == GOOGL : update(avg_price)
    stock == MSFT : fwd(2); update(my_counter)
    stock == AAPL and price > 500 : fwd(3)
  )");
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto& pipeline = compiled.value().pipeline;

  // Frames crossing window boundaries (windows are 100us wide), with
  // prices straddling the avg threshold.
  const char* names[] = {"GOOGL", "MSFT", "AAPL", "OTHER"};
  std::vector<workload::PackedFrame> frames;
  for (int i = 0; i < 400; ++i) {
    std::vector<proto::ItchAddOrder> msgs;
    for (int m = 0; m < 3; ++m) {
      proto::ItchAddOrder o;
      o.stock = names[(i + m) % 4];
      o.side = m % 2 ? 'S' : 'B';
      o.shares = static_cast<std::uint32_t>(1 + i);
      o.price = static_cast<std::uint32_t>(200 + 37 * ((i * 3 + m) % 60));
      msgs.push_back(std::move(o));
    }
    proto::MoldUdp64Header mold;
    mold.session = "CAMUS00001";
    mold.sequence = static_cast<std::uint64_t>(1 + i * 3);
    workload::PackedFrame pf;
    pf.t_us = static_cast<std::uint64_t>(i) * 13;  // rolls windows mid-run
    pf.bytes = proto::encode_market_data_packet(proto::EthernetHeader{}, 1,
                                                2, mold, msgs);
    frames.push_back(std::move(pf));
  }
  const std::uint64_t final_time = frames.back().t_us + 1;

  Switch sw_ref(schema, pipeline);
  Switch sw_fast(schema, pipeline);
  const auto ref = run_per_frame(sw_ref, frames, final_time);
  const auto fast = run_batched(sw_fast, frames, 32, final_time);
  ASSERT_GT(ref.counters.state_updates, 0u);
  expect_identical(ref, fast);
}

// Reprogramming mid-stream must invalidate the hot-key memo: cached
// prefix outcomes for the old tables would otherwise leak into the new
// program's classifications.
TEST(ProcessBatch, ReprogramInvalidatesMemo) {
  std::vector<std::string> symbols;
  auto pipe_a = itch_pipeline(3, 300, &symbols);
  auto pipe_b = itch_pipeline(4, 300, nullptr);  // different rules/ports
  const auto frames = mixed_frames(symbols, 10000);
  const std::uint64_t final_time = frames.back().t_us + 1;
  const std::size_t half = frames.size() / 2;
  const std::vector<workload::PackedFrame> first(frames.begin(),
                                                 frames.begin() + half);
  const std::vector<workload::PackedFrame> second(frames.begin() + half,
                                                  frames.end());

  Switch sw_ref(spec::make_itch_schema(), pipe_a);
  Switch sw_fast(spec::make_itch_schema(), pipe_a);

  RunResult ref = run_per_frame(sw_ref, first, final_time);
  RunResult fast = run_batched(sw_fast, first, 64, final_time);
  sw_ref.reprogram(pipe_b);
  sw_fast.reprogram(pipe_b);
  const RunResult ref2 = run_per_frame(sw_ref, second, final_time);
  const RunResult fast2 = run_batched(sw_fast, second, 64, final_time);

  for (const auto& tx : ref2.pkts) ref.pkts.push_back(tx);
  for (const auto& tx : fast2.pkts) fast.pkts.push_back(tx);
  ref.counters = ref2.counters;
  fast.counters = fast2.counters;
  ref.regs = ref2.regs;
  fast.regs = fast2.regs;
  expect_identical(ref, fast);
}

// A pipeline the flattener refuses (leaf state far beyond the dense-id
// cap) must push the batched path onto the Pipeline::evaluate fallback —
// still bit-identical.
TEST(ProcessBatch, FallbackWhenPipelineNotFlattenable) {
  auto schema = spec::make_itch_schema();
  // Field id of "stock" comes from the extractor order: shares=0, stock=1,
  // price=2 per the spec text; match GOOGL's 64-bit symbol key.
  proto::ItchAddOrder probe;
  probe.stock = "GOOGL";
  const std::uint64_t googl = probe.stock_key();
  const table::StateId huge = 1u << 25;  // > kMaxDenseStates

  table::Pipeline p;
  table::Table t("stock", lang::Subject::field(1), table::MatchKind::kExact,
                 64);
  t.add_entry({table::kInitialState, table::ValueMatch::exact(googl), huge});
  p.tables.push_back(std::move(t));
  table::LeafEntry e;
  e.state = huge;
  e.actions.add_port(5);
  p.leaf.add_entry(e);
  p.finalize();

  Switch sw_ref(schema, p);
  Switch sw_fast(schema, p);
  ASSERT_FALSE(sw_fast.compiled().valid());

  std::vector<workload::PackedFrame> frames;
  const char* names[] = {"GOOGL", "MSFT"};
  for (int i = 0; i < 200; ++i) {
    proto::ItchAddOrder o;
    o.stock = names[i % 2];
    o.price = 100;
    o.shares = 1;
    proto::MoldUdp64Header mold;
    mold.session = "CAMUS00001";
    mold.sequence = static_cast<std::uint64_t>(i + 1);
    workload::PackedFrame pf;
    pf.t_us = static_cast<std::uint64_t>(i);
    pf.bytes = proto::encode_market_data_packet(proto::EthernetHeader{}, 1,
                                                2, mold, {o});
    frames.push_back(std::move(pf));
  }
  const auto ref = run_per_frame(sw_ref, frames, 1000);
  const auto fast = run_batched(sw_fast, frames, 16, 1000);
  ASSERT_EQ(ref.pkts.size(), 100u);  // every GOOGL frame forwarded
  expect_identical(ref, fast);
}

// The hot-key memo keys on the prefix signature plus the raw prefix key
// words alone. When a prefix stage matches a REGISTER subject, soundness
// relies on prefix_key() copying the register's snapshot value into the
// key itself (see Switch::current_data_plane). This pipeline puts an
// exact-match my_counter stage FIRST — so it lands inside the memo
// prefix — has every matched message bump that counter, and replays
// traffic long enough that counter values repeat across many 100us
// window rollovers. A memo that ignored register state would replay
// stale post-prefix states here and diverge from the reference path.
TEST(ProcessBatch, StatefulPrefixMemoAcrossRegisterRollover) {
  auto schema = spec::make_itch_schema();
  const auto var = schema.resolve_state_var("my_counter");
  ASSERT_TRUE(var.has_value());

  // counter==0,1,2 -> distinct leaves (ports 1,2,3), each updating the
  // counter; counter>=3 misses the table, reaches no leaf, and drops
  // until the window rolls the counter back to 0.
  table::Pipeline p;
  table::Table t("count", lang::Subject::state(*var),
                 table::MatchKind::kExact, 64);
  for (std::uint64_t v = 0; v < 3; ++v)
    t.add_entry({table::kInitialState, table::ValueMatch::exact(v),
                 static_cast<table::StateId>(v + 1)});
  p.tables.push_back(std::move(t));
  for (std::uint32_t s = 1; s <= 3; ++s) {
    table::LeafEntry e;
    e.state = s;
    e.actions.add_port(static_cast<std::uint16_t>(s));
    e.actions.state_updates.push_back(*var);
    p.leaf.add_entry(std::move(e));
  }
  p.finalize();

  Switch sw_ref(schema, p);
  Switch sw_fast(schema, p);
  ASSERT_TRUE(sw_fast.compiled().valid());
  ASSERT_EQ(sw_fast.compiled().prefix_stages(), 1u);

  // One message per frame, 13us apart: the 100us counter window rolls
  // over every ~8 frames, so the prefix key cycles 0,1,2 continuously.
  std::vector<workload::PackedFrame> frames;
  for (int i = 0; i < 600; ++i) {
    proto::ItchAddOrder o;
    o.stock = i % 2 ? "GOOGL" : "MSFT";
    o.price = 100;
    o.shares = 1;
    proto::MoldUdp64Header mold;
    mold.session = "CAMUS00001";
    mold.sequence = static_cast<std::uint64_t>(i + 1);
    workload::PackedFrame pf;
    pf.t_us = static_cast<std::uint64_t>(i) * 13;
    pf.bytes = proto::encode_market_data_packet(proto::EthernetHeader{}, 1,
                                                2, mold, {o});
    frames.push_back(std::move(pf));
  }
  const std::uint64_t final_time = frames.back().t_us + 1;
  const auto ref = run_per_frame(sw_ref, frames, final_time);
  const auto fast = run_batched(sw_fast, frames, 32, final_time);
  ASSERT_GT(ref.counters.state_updates, 0u);
  ASSERT_GT(ref.counters.dropped, 0u);  // counter saturates inside windows
  expect_identical(ref, fast);
  // The memo must actually be exercised: keys repeat across rollovers.
  EXPECT_GT(sw_fast.batch_stats().memo_probes, 0u);
  EXPECT_GT(sw_fast.batch_stats().memo_hits, 0u);
}

}  // namespace
